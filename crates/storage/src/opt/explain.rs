//! `EXPLAIN`: a stable, deterministic rendering of a physical plan tree,
//! annotated with estimated cardinalities, the access path the executor
//! will pick (primary-key lookup, secondary-index probe, or scan), and
//! whether each operator pipelines rows or materializes its input under
//! the streaming executor ([`crate::exec::stream`]).
//!
//! Estimates are computed in **one bottom-up pass** shared with the
//! rendering ([`EstTree`]): every node — in particular every sampled
//! `Values` leaf — is estimated exactly once, so rendering is linear in
//! plan size instead of quadratic.

use super::stats::{combine, RelEstimate, StatsCatalog};
use crate::catalog::Database;
use crate::exec::{
    access_path_note, selection_kernel_label, spill_points, BATCH_SIZE, SPILL_PARTITIONS,
};
use crate::obs::profile::{ProfNode, Profile};
use crate::plan::{Agg, Plan};
use std::rc::Rc;

/// Render a plan as an indented tree. Deterministic: node order follows
/// the plan structure, estimates are integers, and no hash-map iteration
/// is involved.
pub fn render(db: &Database, catalog: &StatsCatalog, plan: &Plan) -> String {
    render_with_budget(db, catalog, plan, None)
}

/// [`render`] under a per-query memory budget: every materialization
/// point (sort, aggregate, distinct, hash-join build) additionally
/// carries a `[spill budget=… partitions=…]` tag showing its share of
/// the budget and the partition fan-out a spill would use. With `None`
/// the output is byte-identical to [`render`].
pub fn render_with_budget(
    db: &Database,
    catalog: &StatsCatalog,
    plan: &Plan,
    budget: Option<usize>,
) -> String {
    let est = EstTree::build(catalog, plan);
    let spill_tag = budget
        .map(|b| {
            let per_point = b / spill_points(plan).max(1);
            format!(" [spill budget={per_point} partitions={SPILL_PARTITIONS}]")
        })
        .unwrap_or_default();
    let mut out = String::new();
    render_node(db, plan, &est, 0, &spill_tag, &ProfCtx::Off, &mut out);
    out
}

/// Render with a fresh statistics snapshot.
pub fn render_with_snapshot(db: &Database, plan: &Plan) -> String {
    render(db, &StatsCatalog::snapshot(db), plan)
}

/// `EXPLAIN ANALYZE`: the [`render_with_budget`] tree with a ` | actual …`
/// suffix on every line reporting what the executor really did — rows and
/// chunks emitted, inclusive and exclusive wall time, kernel-vs-fallback
/// filter rows, spill bytes / run files / extra passes, and the peak bytes
/// a budgeted build held in memory. Estimates stay on the line (`est=` vs
/// `actual rows=` is the misestimation delta). Operators the executor
/// never opened (a selection fused into its scan, the probed side of an
/// index nested-loop join) render as `| actual fused`. Partial profiles
/// from error-path executions render whatever was counted before the
/// error surfaced.
pub fn render_analyze(
    db: &Database,
    catalog: &StatsCatalog,
    plan: &Plan,
    profile: &Profile,
    budget: Option<usize>,
) -> String {
    let est = EstTree::build(catalog, plan);
    let spill_tag = budget
        .map(|b| {
            let per_point = b / spill_points(plan).max(1);
            format!(" [spill budget={per_point} partitions={SPILL_PARTITIONS}]")
        })
        .unwrap_or_default();
    let mut out = String::new();
    let prof = ProfCtx::On(Some(Rc::clone(profile.root())));
    render_node(db, plan, &est, 0, &spill_tag, &prof, &mut out);
    out
}

/// Profile context threaded through the render walk: `Off` for plain
/// `EXPLAIN`, `On(node)` for `EXPLAIN ANALYZE` where the node mirrors the
/// current plan position (`None` = the executor never opened it).
enum ProfCtx {
    Off,
    On(Option<Rc<ProfNode>>),
}

impl ProfCtx {
    fn child(&self, slot: usize) -> ProfCtx {
        match self {
            ProfCtx::Off => ProfCtx::Off,
            ProfCtx::On(n) => ProfCtx::On(n.as_ref().and_then(|n| n.child_at(slot))),
        }
    }
}

fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// The ` | actual …` suffix for one opened operator. Zero-valued optional
/// counters are omitted so lines stay short on the common path.
fn actual_note(node: &ProfNode) -> String {
    let mut s = format!(
        " | actual rows={} chunks={} time={} self={}",
        node.rows_out.get(),
        node.chunks_out.get(),
        fmt_nanos(node.nanos.get()),
        fmt_nanos(node.self_nanos()),
    );
    if node.rows_in.get() > 0 {
        s.push_str(&format!(" rows_in={}", node.rows_in.get()));
    }
    if node.kernel_rows.get() > 0 {
        s.push_str(&format!(" kernel_rows={}", node.kernel_rows.get()));
    }
    if node.fallback_rows.get() > 0 {
        s.push_str(&format!(" fallback_rows={}", node.fallback_rows.get()));
    }
    if node.spill_bytes.get() > 0 || node.spill_partitions.get() > 0 {
        s.push_str(&format!(
            " spill_bytes={} spill_partitions={} spill_passes={}",
            node.spill_bytes.get(),
            node.spill_partitions.get(),
            node.spill_passes.get(),
        ));
    }
    if node.peak_bytes.get() > 0 {
        s.push_str(&format!(" peak_bytes={}", node.peak_bytes.get()));
    }
    s
}

/// Per-node estimates memoized in plan shape: children mirror
/// [`Plan::children`] order.
struct EstTree {
    est: RelEstimate,
    children: Vec<EstTree>,
}

impl EstTree {
    fn build(catalog: &StatsCatalog, plan: &Plan) -> EstTree {
        let children: Vec<EstTree> = plan
            .children()
            .into_iter()
            .map(|c| EstTree::build(catalog, c))
            .collect();
        let child_ests: Vec<RelEstimate> = children.iter().map(|c| c.est.clone()).collect();
        EstTree {
            est: combine(catalog, plan, &child_ests),
            children,
        }
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn est_note(est: &EstTree) -> String {
    format!(" (est={})", est.est.rows.round().max(0.0) as u64)
}

/// How the streaming executor evaluates this operator: forwarding rows
/// one at a time, or consuming its whole input first. Joins and
/// anti-joins pipeline their probe (left) side while the build (right)
/// side is materialized into the hash table.
fn exec_note(plan: &Plan) -> &'static str {
    match plan {
        Plan::Scan { .. }
        | Plan::Values { .. }
        | Plan::Selection { .. }
        | Plan::Projection { .. }
        | Plan::Union { .. }
        | Plan::Distinct { .. }
        | Plan::Limit { .. } => " [pipeline]",
        Plan::Join { .. } | Plan::AntiJoin { .. } => " [pipeline; build=right]",
        Plan::Aggregate { .. } | Plan::Sort { .. } => " [materialize]",
    }
}

/// The vectorization annotation: pipelined operators exchange chunks of
/// up to [`BATCH_SIZE`] rows. Scans additionally report the columnar
/// layout — they emit zero-copy windows over the table's column cache
/// rather than cloned row batches. Aggregate and Sort consume chunks
/// but emit materialized output, so they carry no tag of their own; the
/// `Selection` kernel annotation is handled in [`render_node`] because
/// it depends on the access path (an index-served selection runs no
/// filter kernel at all).
fn vectorized_note(plan: &Plan) -> String {
    match plan {
        Plan::Scan { .. } => format!(" [vectorized batch={BATCH_SIZE} layout=columnar]"),
        Plan::Values { .. }
        | Plan::Selection { .. }
        | Plan::Projection { .. }
        | Plan::Union { .. }
        | Plan::Distinct { .. }
        | Plan::Limit { .. }
        | Plan::Join { .. }
        | Plan::AntiJoin { .. } => format!(" [vectorized batch={BATCH_SIZE}]"),
        Plan::Aggregate { .. } | Plan::Sort { .. } => String::new(),
    }
}

fn on_note(on: &[(usize, usize)]) -> String {
    if on.is_empty() {
        return String::new();
    }
    let pairs: Vec<String> = on.iter().map(|(l, r)| format!("#{l}=#{r}")).collect();
    format!(" on [{}]", pairs.join(", "))
}

/// The `[spill …]` tag for this node, or empty when it is not a
/// materialization point (pipelined operators never spill). Every join
/// materializes its right side — keyed joins build a hash table, cross
/// joins buffer the right input — so every join and anti-join is a
/// spill point (the residual-only anti-join's buffered right side
/// overflows to a replayed run, like the cross join's).
fn spill_note<'s>(plan: &Plan, tag: &'s str) -> &'s str {
    match plan {
        Plan::Sort { .. }
        | Plan::Aggregate { .. }
        | Plan::Distinct { .. }
        | Plan::Join { .. }
        | Plan::AntiJoin { .. } => tag,
        _ => "",
    }
}

fn render_node(
    db: &Database,
    plan: &Plan,
    est: &EstTree,
    depth: usize,
    spill_tag: &str,
    prof: &ProfCtx,
    out: &mut String,
) {
    indent(depth, out);
    out.push_str(&node_line(db, plan, est, spill_tag));
    match prof {
        ProfCtx::Off => {}
        ProfCtx::On(Some(n)) => out.push_str(&actual_note(n)),
        ProfCtx::On(None) => out.push_str(" | actual fused"),
    }
    out.push('\n');
    for (slot, (child, child_est)) in plan.children().into_iter().zip(&est.children).enumerate() {
        render_node(
            db,
            child,
            child_est,
            depth + 1,
            spill_tag,
            &prof.child(slot),
            out,
        );
    }
}

/// One operator's line, without indentation, profile suffix, or newline.
fn node_line(db: &Database, plan: &Plan, est: &EstTree, spill_tag: &str) -> String {
    let exec = format!(
        "{}{}{}",
        exec_note(plan),
        vectorized_note(plan),
        spill_note(plan, spill_tag)
    );
    match plan {
        Plan::Scan { table } => {
            let rows = db.table(table).map(|t| t.len()).unwrap_or(0);
            format!("Scan {table} (rows={rows}){exec}")
        }
        Plan::Selection { input, predicate } => {
            let access = match input.as_ref() {
                Plan::Scan { table } => access_path_note(db, table, predicate),
                _ => None,
            };
            // The filter kernel only runs when no index serves the
            // selection — an access-path hit fetches pre-filtered rows
            // and never evaluates the kernel, so report one or the
            // other, not both.
            let exec = match &access {
                Some(_) => exec.clone(),
                None => {
                    // A compiled kernel fused directly over a scan runs
                    // its selection passes on the columnar windows (a
                    // selection vector over primitive column slices);
                    // the row-wise interpreter and non-scan inputs see
                    // row chunks.
                    let kernel = selection_kernel_label(predicate);
                    let layout = match (&kernel, input.as_ref()) {
                        (Some(_), Plan::Scan { .. }) => " layout=columnar",
                        _ => "",
                    };
                    let kernel = kernel.unwrap_or_else(|| "rowwise".to_string());
                    format!(
                        "{} [vectorized batch={BATCH_SIZE} kernel={kernel}{layout}]",
                        exec_note(plan)
                    )
                }
            };
            let access = access.map(|a| format!(" [{a}]")).unwrap_or_default();
            format!("Select {predicate}{access}{}{exec}", est_note(est))
        }
        Plan::Projection { input: _, exprs } => {
            let cols: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
            format!("Project [{}]{}{exec}", cols.join(", "), est_note(est))
        }
        Plan::Join {
            left: _,
            right,
            on,
            residual,
        } => {
            let res = residual
                .as_ref()
                .map(|r| format!(" where {r}"))
                .unwrap_or_default();
            let probe = join_probe_note(db, right, on);
            format!("Join{}{res}{probe}{}{exec}", on_note(on), est_note(est))
        }
        Plan::AntiJoin { on, residual, .. } => {
            let res = residual
                .as_ref()
                .map(|r| format!(" where {r}"))
                .unwrap_or_default();
            format!("AntiJoin{}{res}{}{exec}", on_note(on), est_note(est))
        }
        Plan::Distinct { .. } => format!("Distinct{}{exec}", est_note(est)),
        Plan::Union { .. } => format!("Union{}{exec}", est_note(est)),
        Plan::Aggregate {
            input: _,
            group_by,
            aggs,
        } => {
            let aggs: Vec<String> = aggs
                .iter()
                .map(|a| match a {
                    Agg::Count => "count".to_string(),
                    Agg::Max(c) => format!("max(#{c})"),
                    Agg::Min(c) => format!("min(#{c})"),
                })
                .collect();
            let groups: Vec<String> = group_by.iter().map(|g| format!("#{g}")).collect();
            format!(
                "Aggregate group=[{}] aggs=[{}]{}{exec}",
                groups.join(", "),
                aggs.join(", "),
                est_note(est)
            )
        }
        Plan::Values { arity, rows } => format!("Values {}x{arity}{exec}", rows.len()),
        Plan::Sort { input: _, by } => {
            // Ascending keys render exactly as before the direction flag
            // existed ("#0"), keeping pinned EXPLAIN output stable.
            let by: Vec<String> = by
                .iter()
                .map(|k| {
                    if k.desc {
                        format!("#{} desc", k.col)
                    } else {
                        format!("#{}", k.col)
                    }
                })
                .collect();
            format!("Sort by [{}]{exec}", by.join(", "))
        }
        Plan::Limit { input: _, n } => format!("Limit {n}{exec}"),
    }
}

/// Annotation when the executor's index-nested-loop join can probe the
/// right side of a join through an index instead of materializing it.
fn join_probe_note(db: &Database, right: &Plan, on: &[(usize, usize)]) -> String {
    if on.is_empty() {
        return String::new();
    }
    let table = match right {
        Plan::Scan { table } => table,
        Plan::Selection { input, .. } => match input.as_ref() {
            Plan::Scan { table } => table,
            _ => return String::new(),
        },
        _ => return String::new(),
    };
    let Ok(t) = db.table(table) else {
        return String::new();
    };
    let rcols: Vec<usize> = on.iter().map(|&(_, rc)| rc).collect();
    if t.schema().key_column() == Some(0) && rcols == [0] {
        return format!(" [probe {table}.pk]");
    }
    if let Some((name, _)) = t.find_index_for(&rcols) {
        return format!(" [probe {table}.{name}]");
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::row;
    use crate::schema::TableSchema;

    fn db() -> Database {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid", "s"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..50i64 {
            v.insert(row![i % 5, i, "+"]).unwrap();
        }
        let r = db
            .create_table(TableSchema::with_key("R", &["tid", "val"]))
            .unwrap();
        r.insert(row![1, "x"]).unwrap();
        db
    }

    #[test]
    fn renders_tree_with_estimates() {
        let db = db();
        let plan = Plan::scan("V")
            .select(Expr::col_eq_lit(0, 3i64))
            .join(Plan::scan("R"), vec![(1, 0)])
            .project_cols(&[1, 4]);
        let text = render_with_snapshot(&db, &plan);
        assert!(text.contains("Project"), "{text}");
        assert!(text.contains("Join on [#1=#0]"), "{text}");
        assert!(text.contains("Scan V (rows=50)"), "{text}");
        assert!(text.contains("est="), "{text}");
        // Indentation encodes the tree.
        assert!(text.lines().any(|l| l.starts_with("    ")), "{text}");
    }

    #[test]
    fn annotates_index_and_pk_access() {
        let db = db();
        // Selection pinning the indexed column.
        let sel = Plan::scan("V").select(Expr::col_eq_lit(0, 3i64));
        let text = render_with_snapshot(&db, &sel);
        assert!(text.contains("index"), "{text}");
        // Join probing the primary key.
        let join = Plan::scan("V").join(Plan::scan("R"), vec![(1, 0)]);
        let text = render_with_snapshot(&db, &join);
        assert!(text.contains("[probe R.pk]"), "{text}");
        // Join probing a secondary index.
        let join = Plan::Values {
            arity: 1,
            rows: vec![row![1]],
        }
        .join(Plan::scan("V"), vec![(0, 0)]);
        let text = render_with_snapshot(&db, &join);
        assert!(text.contains("[probe V.by_wid]"), "{text}");
    }

    #[test]
    fn annotates_pipeline_vs_materialization() {
        let db = db();
        let plan = Plan::scan("V")
            .select(Expr::col_eq_lit(2, "+"))
            .join(Plan::scan("R"), vec![(1, 0)])
            .sort(vec![0])
            .limit(3);
        let text = render_with_snapshot(&db, &plan);
        assert!(text.contains("Limit 3 [pipeline]"), "{text}");
        assert!(text.contains("Sort by [#0] [materialize]"), "{text}");
        assert!(text.contains("[pipeline; build=right]"), "{text}");
        assert!(text.contains("Scan R (rows=1) [pipeline]"), "{text}");
        let agg = Plan::Aggregate {
            input: Box::new(Plan::scan("V")),
            group_by: vec![0],
            aggs: vec![Agg::Count],
        };
        let text = render_with_snapshot(&db, &agg);
        assert!(text.contains("[materialize]"), "{text}");
    }

    #[test]
    fn annotates_vectorized_operators_and_batch_size() {
        let db = db();
        let plan = Plan::scan("V")
            .select(Expr::col_eq_lit(1, 3i64))
            .project_cols(&[1])
            .sort(vec![0])
            .limit(3);
        let text = render_with_snapshot(&db, &plan);
        // Pipelined operators carry the batch size; the int-equality
        // selection reports its specialized kernel.
        assert!(
            text.contains("Limit 3 [pipeline] [vectorized batch=1024]"),
            "{text}"
        );
        assert!(text.contains("kernel=eq:int layout=columnar"), "{text}");
        // Scans report the zero-copy columnar window layout.
        assert!(
            text.contains("[vectorized batch=1024 layout=columnar]"),
            "{text}"
        );
        // Materialization points carry no vectorized tag.
        assert!(
            !text.contains("Sort by [#0] [materialize] [vectorized"),
            "{text}"
        );
        // An AND of col-op-lit comparisons fuses into a sequence of
        // kernel passes — and the tag lists them in conjunct order.
        // (Cols 1 and 2 are not covered by any index, so no access path
        // fires.)
        let fused = Plan::scan("V").select(Expr::and(vec![
            Expr::col_eq_lit(1, 2i64),
            Expr::col_eq_lit(2, "+"),
        ]));
        let text = render_with_snapshot(&db, &fused);
        assert!(text.contains("kernel=and[eq:int,eq:str]"), "{text}");
        // Deterministic.
        assert_eq!(text, render_with_snapshot(&db, &fused));
        // A predicate the kernel compiler rejects falls back to the
        // row-wise interpreter — and says so.
        let fallback = Plan::scan("V").select(Expr::or(vec![
            Expr::col_eq_lit(1, 2i64),
            Expr::col_eq_lit(2, "+"),
        ]));
        let text = render_with_snapshot(&db, &fallback);
        assert!(text.contains("kernel=rowwise"), "{text}");
        // An AND with a non-compilable conjunct also falls back.
        let mixed = Plan::scan("V").select(Expr::and(vec![
            Expr::col_eq_lit(1, 2i64),
            Expr::col_eq_col(1, 2),
        ]));
        let text = render_with_snapshot(&db, &mixed);
        assert!(text.contains("kernel=rowwise"), "{text}");
        // An index-served selection runs no filter kernel: the access
        // note and the kernel note are mutually exclusive.
        let indexed = Plan::scan("V").select(Expr::col_eq_lit(0, 3i64));
        let text = render_with_snapshot(&db, &indexed);
        assert!(text.contains("[access=index:by_wid]"), "{text}");
        assert!(!text.contains("kernel="), "{text}");
        assert!(text.contains("[vectorized batch=1024]"), "{text}");
    }

    #[test]
    fn estimates_match_the_recursive_estimator() {
        // The memoized bottom-up pass must agree with `stats::estimate`
        // node-for-node (same formulas, evaluated once each).
        let db = db();
        let catalog = StatsCatalog::snapshot(&db);
        let plan = Plan::scan("V")
            .select(Expr::col_eq_lit(0, 3i64))
            .join(Plan::scan("R"), vec![(1, 0)])
            .distinct();
        let tree = EstTree::build(&catalog, &plan);
        fn walk(catalog: &StatsCatalog, plan: &Plan, tree: &EstTree) {
            assert_eq!(tree.est, super::super::stats::estimate(catalog, plan));
            for (c, t) in plan.children().into_iter().zip(&tree.children) {
                walk(catalog, c, t);
            }
        }
        walk(&catalog, &plan, &tree);
    }

    #[test]
    fn budget_tags_materialization_points_only() {
        let db = db();
        let plan = Plan::scan("V")
            .join(Plan::scan("R"), vec![(1, 0)])
            .distinct()
            .sort(vec![0])
            .limit(3);
        let catalog = StatsCatalog::snapshot(&db);
        // Three spill points (join build, distinct, sort): each gets a
        // third of the budget, and the fan-out is reported.
        let text = render_with_budget(&db, &catalog, &plan, Some(3 * 4096));
        assert_eq!(text.matches("[spill budget=4096 partitions=16]").count(), 3);
        assert!(
            !text
                .lines()
                .any(|l| l.contains("Limit") && l.contains("spill")),
            "{text}"
        );
        assert!(
            !text
                .lines()
                .any(|l| l.contains("Scan") && l.contains("spill")),
            "{text}"
        );
        // No budget: byte-identical to the plain rendering.
        assert_eq!(
            render_with_budget(&db, &catalog, &plan, None),
            render(&db, &catalog, &plan)
        );
    }

    #[test]
    fn cross_join_build_is_a_budgeted_spill_point() {
        // A cross join buffers its whole right side, so it counts
        // against the budget and carries the spill tag like the keyed
        // joins do — and so does every anti-join, the residual-only
        // form included (its buffered right side overflows to a
        // replayed run).
        let db = db();
        let catalog = StatsCatalog::snapshot(&db);
        let cross = Plan::scan("V").join(Plan::scan("R"), vec![]);
        let text = render_with_budget(&db, &catalog, &cross, Some(4096));
        assert!(
            text.lines()
                .any(|l| l.contains("Join") && l.contains("[spill budget=4096")),
            "{text}"
        );
        let anti = Plan::AntiJoin {
            left: Box::new(Plan::scan("V")),
            right: Box::new(Plan::scan("R")),
            on: vec![],
            residual: None,
        };
        let text = render_with_budget(&db, &catalog, &anti, Some(4096));
        assert!(
            text.lines()
                .any(|l| l.contains("AntiJoin") && l.contains("[spill budget=")),
            "{text}"
        );
    }

    #[test]
    fn output_is_deterministic() {
        let db = db();
        let plan = Plan::scan("V")
            .join(Plan::scan("R"), vec![(1, 0)])
            .distinct();
        let a = render_with_snapshot(&db, &plan);
        let b = render_with_snapshot(&db, &plan);
        assert_eq!(a, b);
    }

    fn profiled(db: &Database, plan: &Plan) -> Profile {
        let exec = crate::exec::Executor::new(db);
        let (stream, profile) = exec.open_chunks_profiled(plan).unwrap();
        stream.collect_rows().unwrap();
        profile
    }

    #[test]
    fn analyze_appends_actuals_per_line() {
        let db = db();
        let plan = Plan::scan("V")
            .select(Expr::col_eq_lit(2, "+"))
            .project_cols(&[1]);
        let profile = profiled(&db, &plan);
        let catalog = StatsCatalog::snapshot(&db);
        let text = render_analyze(&db, &catalog, &plan, &profile, None);
        // Every line carries an actual note.
        assert!(text.lines().all(|l| l.contains("| actual ")), "{text}");
        // The root emitted all 50 rows; the plan structure is unchanged.
        assert!(text.contains("Project [#1]"), "{text}");
        assert!(
            text.lines().next().unwrap().contains("actual rows=50"),
            "{text}"
        );
        assert!(text.contains("time="), "{text}");
        // The string-equality kernel fused the selection into its scan:
        // the scan child was never opened separately.
        assert!(text.contains("| actual fused"), "{text}");
        assert!(text.contains("kernel_rows=50"), "{text}");
    }

    #[test]
    fn analyze_reports_spills_under_budget() {
        let db = db();
        let plan = Plan::scan("V").join(Plan::scan("R").distinct(), vec![(1, 0)]);
        let exec = crate::exec::Executor::with_spill(
            &db,
            crate::exec::SpillOptions {
                budget: Some(1),
                dir: None,
            },
        );
        let (stream, profile) = exec.open_chunks_profiled(&plan).unwrap();
        stream.collect_rows().unwrap();
        let catalog = StatsCatalog::snapshot(&db);
        let text = render_analyze(&db, &catalog, &plan, &profile, Some(1));
        let join_line = text.lines().next().unwrap();
        assert!(join_line.contains("spill_bytes="), "{text}");
        assert!(join_line.contains("spill_partitions="), "{text}");
        assert!(
            join_line.contains("[spill budget=0 partitions=16]"),
            "{text}"
        );
    }

    #[test]
    fn analyze_marks_unopened_probe_side_fused() {
        let db = db();
        // A small left side over indexed V takes the index-nested-loop
        // path: the right child is never opened as an operator, so it
        // renders as fused.
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![1]],
        }
        .join(Plan::scan("V"), vec![(0, 0)]);
        let profile = profiled(&db, &plan);
        let catalog = StatsCatalog::snapshot(&db);
        let text = render_analyze(&db, &catalog, &plan, &profile, None);
        let scan_v = text
            .lines()
            .find(|l| l.contains("Scan V"))
            .unwrap_or_else(|| panic!("{text}"));
        assert!(scan_v.contains("| actual fused"), "{text}");
    }

    #[test]
    fn analyze_without_budget_matches_plain_structure() {
        let db = db();
        let plan = Plan::scan("V").select(Expr::col_eq_lit(0, 3i64));
        let profile = profiled(&db, &plan);
        let catalog = StatsCatalog::snapshot(&db);
        let analyzed = render_analyze(&db, &catalog, &plan, &profile, None);
        let plain = render(&db, &catalog, &plan);
        // Stripping the actual notes recovers the plain rendering.
        let stripped: String = analyzed
            .lines()
            .map(|l| l.split(" | actual ").next().unwrap())
            .collect::<Vec<_>>()
            .join("\n")
            + "\n";
        assert_eq!(stripped, plain);
    }
}
