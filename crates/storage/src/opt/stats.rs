//! The statistics catalog: row counts and per-column distinct-value
//! estimates, plus the cardinality model the rewrite rules and the join
//! reorderer consume.
//!
//! Row counts and index distinct-key counts are maintained incrementally
//! by [`Table`](crate::table::Table) on insert/delete; a snapshot records
//! each table's mutation [`version`](crate::table::Table::version) so
//! callers can detect staleness in O(#tables). Distinct estimates for
//! non-indexed columns come from a bounded deterministic sample of the
//! heap (first `SAMPLE_CAP` live rows) with the classic "every sampled
//! value repeated ⇒ domain saturated" extrapolation.

use crate::catalog::Database;
use crate::expr::{CmpOp, Expr};
use crate::plan::{Agg, Plan};
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Rows sampled per column when no index covers it.
const SAMPLE_CAP: usize = 512;

/// Most-common values kept per column.
const MCV_CAP: usize = 8;

/// Default selectivity of a range predicate (`<`, `<=`, `>`, `>=`)
/// when no histogram covers the column.
const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;

/// Buckets per equi-depth histogram (the 512-row sample puts ~32 rows
/// in each).
const HIST_BUCKETS: usize = 16;

/// An equi-depth histogram over one column: `bounds` holds the sampled
/// values at the [`HIST_BUCKETS`] + 1 equally-spaced rank positions of
/// the sorted sample (natural [`Value`] order, so NULLs sort first and
/// mixed-type columns still work). Each adjacent pair of bounds brackets
/// an equal share of the sampled rows, so heavy values simply repeat as
/// bounds — skew costs resolution only around itself.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<Value>,
}

impl Histogram {
    /// Build from one column's sample; `None` when the sample is too
    /// small or constant (a histogram adds nothing over MCVs there).
    fn from_sample(mut vals: Vec<Value>) -> Option<Histogram> {
        let n = vals.len();
        if n < HIST_BUCKETS || vals.iter().min() == vals.iter().max() {
            return None;
        }
        vals.sort();
        let bounds = (0..=HIST_BUCKETS)
            .map(|i| vals[i * (n - 1) / HIST_BUCKETS].clone())
            .collect();
        Some(Histogram { bounds })
    }

    /// Estimated fraction of rows with value strictly below `k`.
    pub fn frac_lt(&self, k: &Value) -> f64 {
        self.frac(k, |b| b < k)
    }

    /// Estimated fraction of rows with value at most `k`.
    pub fn frac_le(&self, k: &Value) -> f64 {
        self.frac(k, |b| b <= k)
    }

    /// Shared rank lookup: `below` is the bound predicate (`< k` or
    /// `<= k`). `k` falls in the bucket between the last bound it is
    /// beyond and the next one; within that bucket, interpolate linearly
    /// for integer bounds and assume the midpoint otherwise.
    fn frac(&self, k: &Value, below: impl FnMut(&Value) -> bool) -> f64 {
        let pos = self.bounds.partition_point(below);
        if pos == 0 {
            return 0.0;
        }
        if pos == self.bounds.len() {
            return 1.0;
        }
        let within = match (&self.bounds[pos - 1], &self.bounds[pos], k) {
            (Value::Int(lo), Value::Int(hi), Value::Int(kv)) if hi > lo => {
                ((kv - lo) as f64 / (hi - lo) as f64).clamp(0.0, 1.0)
            }
            _ => 0.5,
        };
        (pos as f64 - 1.0 + within) / (self.bounds.len() - 1) as f64
    }
}

/// Build per-column histograms from a bounded row sample.
fn hist_lists<'a>(arity: usize, rows: impl Iterator<Item = &'a Row>) -> Vec<Option<Histogram>> {
    let mut cols: Vec<Vec<Value>> = vec![Vec::new(); arity];
    for row in rows {
        for (c, col) in cols.iter_mut().enumerate() {
            col.push(row[c].clone());
        }
    }
    cols.into_iter().map(Histogram::from_sample).collect()
}

/// Statistics for one table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Live row count (exact; maintained by insert/delete).
    pub rows: usize,
    /// Estimated number of distinct values per column.
    pub distinct: Vec<f64>,
    /// Per-column most-common-value list: up to [`MCV_CAP`] `(value,
    /// fraction-of-rows)` pairs, most frequent first. Only values seen
    /// at least twice in the sample qualify, so key-like columns carry
    /// empty lists and equality selectivity falls back to `1/distinct`.
    /// This is what fixes the skew error on Zipf-participation columns:
    /// a scalar distinct count prices every value at `1/d`, while the
    /// hot value of a Zipf column covers a large constant fraction.
    pub mcv: Vec<Vec<(Value, f64)>>,
    /// Per-column equi-depth histogram from the same sample prefix
    /// (`None` for tiny or constant columns). Prices range predicates:
    /// without it every `<`/`<=`/`>`/`>=` is a flat
    /// [`RANGE_SELECTIVITY`] regardless of the constant.
    pub hist: Vec<Option<Histogram>>,
    /// The table's mutation version at snapshot time.
    pub version: u64,
}

impl TableStats {
    /// Compute statistics for a table.
    pub fn of_table(table: &Table) -> TableStats {
        let rows = table.len();
        let arity = table.schema().arity();
        let mut distinct = vec![0.0f64; arity];

        // Exact count for the primary key; index distinct-key counts for
        // single-column secondary indexes (both maintained incrementally).
        let mut resolved = vec![false; arity];
        if let Some(kc) = table.schema().key_column() {
            if kc < arity {
                distinct[kc] = rows as f64;
                resolved[kc] = true;
            }
        }
        for (_, cols, keys) in table.index_stats() {
            if let [c] = cols {
                if !resolved[*c] {
                    distinct[*c] = keys as f64;
                    resolved[*c] = true;
                }
            }
        }

        // Deterministic bounded sample for the rest.
        let unresolved: Vec<usize> = (0..arity).filter(|&c| !resolved[c]).collect();
        if !unresolved.is_empty() && rows > 0 {
            let mut seen: Vec<HashSet<&crate::value::Value>> =
                unresolved.iter().map(|_| HashSet::new()).collect();
            let mut sampled = 0usize;
            for (_, row) in table.iter().take(SAMPLE_CAP) {
                sampled += 1;
                for (slot, &c) in unresolved.iter().enumerate() {
                    seen[slot].insert(&row[c]);
                }
            }
            for (slot, &c) in unresolved.iter().enumerate() {
                distinct[c] = extrapolate_distinct(seen[slot].len(), sampled, rows);
            }
        }

        // Most-common values and histograms from the same deterministic
        // sample prefix.
        let (mcv, hist) = if rows > 0 {
            (
                mcv_lists(arity, table.iter().map(|(_, r)| r).take(SAMPLE_CAP)),
                hist_lists(arity, table.iter().map(|(_, r)| r).take(SAMPLE_CAP)),
            )
        } else {
            (vec![Vec::new(); arity], vec![None; arity])
        };
        TableStats {
            rows,
            distinct,
            mcv,
            hist,
            version: table.version(),
        }
    }
}

/// Count a bounded row sample into per-column most-common-value lists:
/// top [`MCV_CAP`] values seen at least twice, as fractions of the
/// sample, most frequent first (ties broken by value for determinism).
fn mcv_lists<'a>(arity: usize, rows: impl Iterator<Item = &'a Row>) -> Vec<Vec<(Value, f64)>> {
    let mut counts: Vec<HashMap<&Value, usize>> = vec![HashMap::new(); arity];
    let mut sampled = 0usize;
    for row in rows {
        sampled += 1;
        for (c, col_counts) in counts.iter_mut().enumerate() {
            *col_counts.entry(&row[c]).or_insert(0) += 1;
        }
    }
    if sampled == 0 {
        return vec![Vec::new(); arity];
    }
    counts
        .into_iter()
        .map(|col_counts| {
            let mut common: Vec<(&Value, usize)> =
                col_counts.into_iter().filter(|&(_, n)| n >= 2).collect();
            common.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
            common.truncate(MCV_CAP);
            common
                .into_iter()
                .map(|(v, n)| (v.clone(), n as f64 / sampled as f64))
                .collect()
        })
        .collect()
}

/// Scale a sampled distinct count up to the full table: if nearly every
/// sampled row introduced a new value, assume the column is key-like and
/// scale linearly; if values repeat heavily, assume the sample saw the
/// whole domain.
fn extrapolate_distinct(observed: usize, sampled: usize, rows: usize) -> f64 {
    if sampled == 0 {
        return 0.0;
    }
    let ratio = observed as f64 / sampled as f64;
    let estimate = if ratio > 0.9 {
        // Key-like: distinct grows with the table.
        rows as f64 * ratio
    } else {
        // Repetitive: the sample likely saturated the domain.
        observed as f64
    };
    estimate.clamp(1.0, rows as f64)
}

/// A point-in-time statistics snapshot over a whole database.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    tables: BTreeMap<String, TableStats>,
}

impl StatsCatalog {
    /// Snapshot every table in the database.
    pub fn snapshot(db: &Database) -> StatsCatalog {
        let mut tables = BTreeMap::new();
        for name in db.table_names() {
            let t = db.table(name).expect("name from catalog");
            tables.insert(name.to_string(), TableStats::of_table(t));
        }
        StatsCatalog { tables }
    }

    pub fn table(&self, name: &str) -> Option<&TableStats> {
        self.tables.get(name)
    }

    /// Bring the snapshot up to date, recomputing only tables whose
    /// mutation version changed (and adding/removing tables as needed).
    /// O(#tables) when nothing changed.
    pub fn refresh(&mut self, db: &Database) {
        let names = db.table_names();
        self.tables.retain(|n, _| names.contains(&n.as_str()));
        for name in names {
            let t = db.table(name).expect("name from catalog");
            let fresh = !matches!(self.tables.get(name), Some(s) if s.version == t.version());
            if fresh {
                self.tables
                    .insert(name.to_string(), TableStats::of_table(t));
            }
        }
    }

    /// True iff any table mutated (or appeared/disappeared) since the
    /// snapshot was taken.
    pub fn is_stale(&self, db: &Database) -> bool {
        let names = db.table_names();
        if names.len() != self.tables.len() {
            return true;
        }
        names.iter().any(|n| match self.tables.get(*n) {
            Some(s) => db
                .table(n)
                .map(|t| t.version() != s.version)
                .unwrap_or(true),
            None => true,
        })
    }
}

/// Cardinality estimate of a plan node: row count plus per-output-column
/// distinct-value estimates (propagated so join selectivities compose).
#[derive(Debug, Clone, PartialEq)]
pub struct RelEstimate {
    pub rows: f64,
    pub distinct: Vec<f64>,
    /// Per-column most-common-value fractions, propagated from base
    /// tables through column-preserving operators (selection,
    /// projection-of-columns, join concatenation, sort, limit). May be
    /// shorter than `distinct` — columns past the end simply have no
    /// list. Operators that reshape frequencies (distinct, union,
    /// aggregate) drop the lists.
    pub mcv: Vec<Vec<(Value, f64)>>,
    /// Per-column equi-depth histograms, propagated exactly like `mcv`.
    pub hist: Vec<Option<Histogram>>,
}

impl RelEstimate {
    fn capped(mut self) -> RelEstimate {
        for d in &mut self.distinct {
            *d = d.max(1.0).min(self.rows.max(1.0));
        }
        self
    }
}

/// Estimate the output cardinality of `plan`, recursing into children.
///
/// Unknown tables (derived relations registered elsewhere) get a small
/// default so estimation never fails: the optimizer must behave on any
/// plan the executor accepts.
pub fn estimate(catalog: &StatsCatalog, plan: &Plan) -> RelEstimate {
    let children: Vec<RelEstimate> = plan
        .children()
        .into_iter()
        .map(|c| estimate(catalog, c))
        .collect();
    combine(catalog, plan, &children)
}

/// Combine pre-computed child estimates (in [`Plan::children`] order) into
/// this node's estimate — the non-recursive core of [`estimate`].
///
/// `EXPLAIN` uses this to annotate a whole plan tree in one bottom-up
/// pass: each node (in particular each sampled `Values` leaf) is
/// estimated exactly once instead of once per ancestor.
pub fn combine(catalog: &StatsCatalog, plan: &Plan, children: &[RelEstimate]) -> RelEstimate {
    match plan {
        Plan::Scan { table } => match catalog.table(table) {
            Some(s) => RelEstimate {
                rows: s.rows as f64,
                distinct: s.distinct.clone(),
                mcv: s.mcv.clone(),
                hist: s.hist.clone(),
            }
            .capped(),
            None => RelEstimate {
                rows: 100.0,
                distinct: Vec::new(),
                mcv: Vec::new(),
                hist: Vec::new(),
            },
        },
        Plan::Values { arity, rows } => values_estimate(*arity, rows),
        Plan::Selection { predicate, .. } => {
            let mut est = children[0].clone();
            let sel = selectivity(predicate, &est);
            est.rows *= sel;
            est.capped()
        }
        Plan::Projection { exprs, .. } => {
            let inner = &children[0];
            let distinct = exprs
                .iter()
                .map(|e| match e {
                    Expr::Col(c) => inner.distinct.get(*c).copied().unwrap_or(inner.rows),
                    Expr::Lit(_) => 1.0,
                    _ => inner.rows,
                })
                .collect();
            let mcv = exprs
                .iter()
                .map(|e| match e {
                    Expr::Col(c) => inner.mcv.get(*c).cloned().unwrap_or_default(),
                    _ => Vec::new(),
                })
                .collect();
            let hist = exprs
                .iter()
                .map(|e| match e {
                    Expr::Col(c) => inner.hist.get(*c).cloned().flatten(),
                    _ => None,
                })
                .collect();
            RelEstimate {
                rows: inner.rows,
                distinct,
                mcv,
                hist,
            }
            .capped()
        }
        Plan::Join { on, residual, .. } => {
            let (l, r) = (&children[0], &children[1]);
            let mut rows = l.rows * r.rows;
            for &(lc, rc) in on {
                let dl = l.distinct.get(lc).copied().unwrap_or(l.rows);
                let dr = r.distinct.get(rc).copied().unwrap_or(r.rows);
                rows /= dl.max(dr).max(1.0);
            }
            let mut distinct = l.distinct.clone();
            distinct.extend(r.distinct.iter().copied());
            // Joined rows keep both sides' columns; pad the left lists to
            // its full arity so right-side lists line up positionally.
            let mut mcv = l.mcv.clone();
            mcv.resize(l.distinct.len(), Vec::new());
            mcv.extend(r.mcv.iter().cloned());
            let mut hist = l.hist.clone();
            hist.resize(l.distinct.len(), None);
            hist.extend(r.hist.iter().cloned());
            let mut est = RelEstimate {
                rows,
                distinct,
                mcv,
                hist,
            };
            if let Some(pred) = residual {
                est.rows *= selectivity(pred, &est);
            }
            est.capped()
        }
        Plan::AntiJoin { on, .. } => {
            let (l, r) = (&children[0], &children[1]);
            // Fraction of left rows with no partner; crude but monotone in
            // the right side's coverage of the key domain.
            let survive = if on.is_empty() || r.rows <= 0.0 {
                if r.rows > 0.0 {
                    0.1
                } else {
                    1.0
                }
            } else {
                let covered: f64 = on
                    .iter()
                    .map(|&(lc, rc)| {
                        let dl = l.distinct.get(lc).copied().unwrap_or(l.rows).max(1.0);
                        let dr = r.distinct.get(rc).copied().unwrap_or(r.rows);
                        (dr / dl).min(1.0)
                    })
                    .fold(1.0, f64::min);
                (1.0 - covered).max(0.05)
            };
            RelEstimate {
                rows: l.rows * survive,
                distinct: l.distinct.clone(),
                mcv: l.mcv.clone(),
                hist: l.hist.clone(),
            }
            .capped()
        }
        Plan::Distinct { .. } => {
            let inner = &children[0];
            let combos: f64 = inner
                .distinct
                .iter()
                .fold(1.0f64, |acc, d| (acc * d.max(1.0)).min(inner.rows.max(1.0)));
            let rows = if inner.distinct.is_empty() {
                inner.rows.min(1.0)
            } else {
                inner.rows.min(combos)
            };
            RelEstimate {
                rows,
                distinct: inner.distinct.clone(),
                mcv: Vec::new(),
                hist: Vec::new(),
            }
            .capped()
        }
        Plan::Union { .. } => {
            let mut rows = 0.0;
            let mut distinct: Vec<f64> = Vec::new();
            for e in children {
                rows += e.rows;
                if distinct.is_empty() {
                    distinct = e.distinct.clone();
                } else {
                    for (a, b) in distinct.iter_mut().zip(&e.distinct) {
                        *a += b;
                    }
                }
            }
            RelEstimate {
                rows,
                distinct,
                mcv: Vec::new(),
                hist: Vec::new(),
            }
            .capped()
        }
        Plan::Aggregate { group_by, aggs, .. } => {
            let inner = &children[0];
            let groups: f64 = group_by
                .iter()
                .map(|&g| inner.distinct.get(g).copied().unwrap_or(inner.rows))
                .fold(1.0f64, |acc, d| (acc * d.max(1.0)).min(inner.rows.max(1.0)));
            let rows = if group_by.is_empty() { 1.0 } else { groups };
            let mut distinct: Vec<f64> = group_by
                .iter()
                .map(|&g| inner.distinct.get(g).copied().unwrap_or(rows))
                .collect();
            distinct.extend(aggs.iter().map(|a| match a {
                Agg::Count => rows,
                Agg::Max(c) | Agg::Min(c) => inner.distinct.get(*c).copied().unwrap_or(rows),
            }));
            RelEstimate {
                rows,
                distinct,
                mcv: Vec::new(),
                hist: Vec::new(),
            }
            .capped()
        }
        Plan::Sort { .. } => children[0].clone(),
        Plan::Limit { n, .. } => {
            let inner = &children[0];
            RelEstimate {
                rows: inner.rows.min(*n as f64),
                distinct: inner.distinct.clone(),
                mcv: inner.mcv.clone(),
                hist: inner.hist.clone(),
            }
            .capped()
        }
    }
}

/// Sampled statistics for a literal relation (bounded work per call —
/// temp tables can hold thousands of materialized rows and `estimate`
/// runs on the query path).
fn values_estimate(arity: usize, rows: &[Row]) -> RelEstimate {
    let mut distinct = vec![0.0f64; arity];
    let mut mcv = vec![Vec::new(); arity];
    let mut hist = vec![None; arity];
    if !rows.is_empty() {
        let cap = rows.len().min(SAMPLE_CAP);
        for (c, d) in distinct.iter_mut().enumerate() {
            let seen: HashSet<_> = rows[..cap].iter().map(|r| &r[c]).collect();
            *d = extrapolate_distinct(seen.len(), cap, rows.len());
        }
        mcv = mcv_lists(arity, rows[..cap].iter());
        hist = hist_lists(arity, rows[..cap].iter());
    }
    RelEstimate {
        rows: rows.len() as f64,
        distinct,
        mcv,
        hist,
    }
    .capped()
}

/// Estimated fraction of rows satisfying `pred`, given the input estimate.
pub fn selectivity(pred: &Expr, input: &RelEstimate) -> f64 {
    match pred {
        Expr::Lit(v) => match v {
            crate::value::Value::Bool(true) => 1.0,
            crate::value::Value::Bool(false) => 0.0,
            _ => 1.0,
        },
        Expr::Col(_) => 0.5,
        Expr::Cmp(op, a, b) => {
            let eq = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(c)) => {
                    eq_lit_selectivity(*c, v, input)
                }
                (Expr::Col(c1), Expr::Col(c2)) => {
                    let d1 = input.distinct.get(*c1).copied().unwrap_or(10.0);
                    let d2 = input.distinct.get(*c2).copied().unwrap_or(10.0);
                    1.0 / d1.max(d2).max(1.0)
                }
                _ => 0.1,
            };
            match op {
                CmpOp::Eq => eq,
                CmpOp::Ne => (1.0 - eq).max(0.0),
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                    range_lit_selectivity(*op, a, b, input)
                }
            }
        }
        Expr::And(parts) => parts.iter().map(|p| selectivity(p, input)).product(),
        Expr::Or(parts) => {
            let miss: f64 = parts.iter().map(|p| 1.0 - selectivity(p, input)).product();
            (1.0 - miss).clamp(0.0, 1.0)
        }
        Expr::Not(inner) => (1.0 - selectivity(inner, input)).clamp(0.0, 1.0),
    }
}

/// Selectivity of `col = literal`: consult the column's most-common-value
/// list first — on skewed (Zipf) columns the hot value covers a large
/// constant fraction that `1/distinct` misses by the skew factor. A value
/// absent from the list gets the residual probability mass spread over
/// the remaining distinct values; columns without a list fall back to the
/// scalar `1/distinct`.
/// Selectivity of a range comparison: when one side is a column with an
/// equi-depth histogram and the other a literal, read the fraction off
/// the histogram's rank function (flipping the operator when the
/// literal is on the left). Anything else — no histogram, column-column,
/// computed operands — keeps the flat [`RANGE_SELECTIVITY`] guess.
fn range_lit_selectivity(op: CmpOp, a: &Expr, b: &Expr, input: &RelEstimate) -> f64 {
    let (c, v, op) = match (a, b) {
        (Expr::Col(c), Expr::Lit(v)) => (*c, v, op),
        // `lit op col` reads as `col flipped-op lit`.
        (Expr::Lit(v), Expr::Col(c)) => {
            let flipped = match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                CmpOp::Eq | CmpOp::Ne => op,
            };
            (*c, v, flipped)
        }
        _ => return RANGE_SELECTIVITY,
    };
    let Some(Some(h)) = input.hist.get(c) else {
        return RANGE_SELECTIVITY;
    };
    let frac = match op {
        CmpOp::Lt => h.frac_lt(v),
        CmpOp::Le => h.frac_le(v),
        CmpOp::Gt => 1.0 - h.frac_le(v),
        CmpOp::Ge => 1.0 - h.frac_lt(v),
        CmpOp::Eq | CmpOp::Ne => return RANGE_SELECTIVITY,
    };
    frac.clamp(0.0, 1.0)
}

fn eq_lit_selectivity(c: usize, v: &Value, input: &RelEstimate) -> f64 {
    let d = input.distinct.get(c).copied().unwrap_or(10.0).max(1.0);
    let Some(list) = input.mcv.get(c).filter(|l| !l.is_empty()) else {
        return 1.0 / d;
    };
    if let Some((_, frac)) = list.iter().find(|(val, _)| val == v) {
        return frac.clamp(0.0, 1.0);
    }
    let mass: f64 = list.iter().map(|(_, f)| f).sum();
    let rest = (d - list.len() as f64).max(1.0);
    ((1.0 - mass).max(0.0) / rest).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::TableSchema;

    fn sample_db() -> Database {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid", "s"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..200i64 {
            v.insert(row![i % 10, i, if i % 2 == 0 { "+" } else { "-" }])
                .unwrap();
        }
        let r = db
            .create_table(TableSchema::with_key("R", &["tid", "val"]))
            .unwrap();
        for i in 0..50i64 {
            r.insert(row![i, format!("v{}", i % 5).as_str()]).unwrap();
        }
        db
    }

    #[test]
    fn snapshot_uses_incremental_counters() {
        let db = sample_db();
        let cat = StatsCatalog::snapshot(&db);
        let v = cat.table("V").unwrap();
        assert_eq!(v.rows, 200);
        // wid is covered by a single-column index: exact distinct count.
        assert_eq!(v.distinct[0], 10.0);
        // tid is key-like: sampled estimate should be near the row count.
        assert!(v.distinct[1] > 100.0, "tid distinct {}", v.distinct[1]);
        // s has two values: the sample saturates the domain.
        assert!(v.distinct[2] <= 4.0, "s distinct {}", v.distinct[2]);
        let r = cat.table("R").unwrap();
        // Primary key: exact.
        assert_eq!(r.distinct[0], 50.0);
    }

    #[test]
    fn staleness_tracks_table_versions() {
        let mut db = sample_db();
        let cat = StatsCatalog::snapshot(&db);
        assert!(!cat.is_stale(&db));
        db.table_mut("R").unwrap().insert(row![99i64, "x"]).unwrap();
        assert!(cat.is_stale(&db));
    }

    #[test]
    fn create_index_invalidates_snapshot() {
        let mut db = sample_db();
        let mut cat = StatsCatalog::snapshot(&db);
        // Column 2 of R ("val") has 5 distinct values but is estimated by
        // sampling; creating an index makes the count exact — the snapshot
        // must notice.
        db.table_mut("R")
            .unwrap()
            .create_index("by_val", &["val"])
            .unwrap();
        assert!(cat.is_stale(&db));
        cat.refresh(&db);
        assert_eq!(cat.table("R").unwrap().distinct[1], 5.0);
    }

    #[test]
    fn selection_estimate_shrinks_by_selectivity() {
        let db = sample_db();
        let cat = StatsCatalog::snapshot(&db);
        let scan = Plan::scan("V");
        let full = estimate(&cat, &scan);
        assert_eq!(full.rows, 200.0);
        let sel = scan.select(Expr::col_eq_lit(0, 3i64));
        let est = estimate(&cat, &sel);
        assert!((est.rows - 20.0).abs() < 1.0, "estimated {}", est.rows);
    }

    #[test]
    fn join_estimate_uses_distinct_counts() {
        let db = sample_db();
        let cat = StatsCatalog::snapshot(&db);
        // V ⋈ R on tid = R.tid: tid is key-like on both sides, so the join
        // should estimate ≈ |V| matches at most.
        let plan = Plan::scan("V").join(Plan::scan("R"), vec![(1, 0)]);
        let est = estimate(&cat, &plan);
        assert!(est.rows <= 210.0, "estimated {}", est.rows);
        assert!(est.rows >= 10.0, "estimated {}", est.rows);
        assert_eq!(est.distinct.len(), 5);
    }

    #[test]
    fn union_and_limit_estimates() {
        let db = sample_db();
        let cat = StatsCatalog::snapshot(&db);
        let u = Plan::Union {
            inputs: vec![Plan::scan("R"), Plan::scan("R")],
        };
        assert_eq!(estimate(&cat, &u).rows, 100.0);
        let l = Plan::scan("R").limit(7);
        assert_eq!(estimate(&cat, &l).rows, 7.0);
    }

    #[test]
    fn unknown_relation_gets_default() {
        let cat = StatsCatalog::default();
        let est = estimate(&cat, &Plan::scan("Ghost"));
        assert!(est.rows > 0.0);
    }

    #[test]
    fn mcv_lists_capture_skew_and_skip_key_like_columns() {
        let mut db = Database::new();
        let t = db
            .create_table(TableSchema::keyless("Z", &["k", "u"]))
            .unwrap();
        // Zipf-ish participation: value 0 takes ~60% of the rows, the
        // rest spread over 40 values. Column u is key-like.
        for i in 0..400i64 {
            let k = if i % 5 < 3 { 0 } else { i % 40 };
            t.insert(row![k, i]).unwrap();
        }
        let cat = StatsCatalog::snapshot(&db);
        let stats = cat.table("Z").unwrap();
        let hot = &stats.mcv[0][0];
        assert_eq!(hot.0, Value::int(0));
        assert!(hot.1 > 0.5, "hot-value fraction {} not captured", hot.1);
        assert!(stats.mcv[0].len() <= 8);
        // Key-like column: nothing repeats in the sample, list stays empty.
        assert!(stats.mcv[1].is_empty(), "{:?}", stats.mcv[1]);
    }

    #[test]
    fn equality_selectivity_uses_mcv_on_zipf_columns() {
        let mut db = Database::new();
        let t = db.create_table(TableSchema::keyless("Z", &["k"])).unwrap();
        for i in 0..400i64 {
            let k = if i % 5 < 3 { 0 } else { i % 40 };
            t.insert(row![k]).unwrap();
        }
        let cat = StatsCatalog::snapshot(&db);
        // Hot value: the scalar 1/distinct estimate would price this at
        // ~400/40 = 10 rows; the true answer is 240. The MCV estimate
        // must land near the truth, not off by the skew factor.
        let hot = Plan::scan("Z").select(Expr::col_eq_lit(0, 0i64));
        let est = estimate(&cat, &hot);
        assert!(
            est.rows > 150.0,
            "hot-value estimate {} still off by the skew factor",
            est.rows
        );
        // Uncommon value: stays near the residual-mass estimate, far
        // below the hot value.
        let cold = Plan::scan("Z").select(Expr::col_eq_lit(0, 7i64));
        let cold_est = estimate(&cat, &cold);
        assert!(
            cold_est.rows < est.rows / 5.0,
            "cold {} vs hot {}",
            cold_est.rows,
            est.rows
        );
        // A column with no MCV list falls back to 1/distinct: build the
        // same shape without repetitions in the sample.
        let input = RelEstimate {
            rows: 400.0,
            distinct: vec![40.0],
            mcv: vec![Vec::new()],
            hist: vec![None],
        };
        let sel = selectivity(&Expr::col_eq_lit(0, 3i64), &input);
        assert!((sel - 1.0 / 40.0).abs() < 1e-9);
    }

    #[test]
    fn histograms_price_range_predicates() {
        let mut db = Database::new();
        let t = db.create_table(TableSchema::keyless("U", &["a"])).unwrap();
        // Uniform 0..400: `a < 100` is truly 25% — the flat 1/3 guess
        // the histogram replaces would put it at ~133 rows.
        for i in 0..400i64 {
            t.insert(row![i]).unwrap();
        }
        let cat = StatsCatalog::snapshot(&db);
        let est = |plan: &Plan| estimate(&cat, plan);
        let lt =
            est(&Plan::scan("U").select(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(100i64))));
        // The sample covers the first 512 rows — here the whole table —
        // so the estimate should land near the truth, not at 133.
        assert!(
            (est(&Plan::scan("U")).rows - 400.0).abs() < 1e-9,
            "scan estimate moved"
        );
        assert!(
            lt.rows > 60.0 && lt.rows < 140.0,
            "a<100 estimated {} rows, want ~100",
            lt.rows
        );
        // Complements: Ge is the histogram complement of Lt.
        let ge =
            est(&Plan::scan("U").select(Expr::cmp(CmpOp::Ge, Expr::Col(0), Expr::lit(100i64))));
        assert!(
            (lt.rows + ge.rows - 400.0).abs() < 1.0,
            "lt {} + ge {} should cover the table",
            lt.rows,
            ge.rows
        );
        // Out-of-range constants price at (near) zero and the full table.
        let none =
            est(&Plan::scan("U").select(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(-5i64))));
        assert!(none.rows < 5.0, "a<-5 estimated {} rows", none.rows);
        let all =
            est(&Plan::scan("U").select(Expr::cmp(CmpOp::Le, Expr::Col(0), Expr::lit(10_000i64))));
        assert!((all.rows - 400.0).abs() < 1.0, "a<=10000 {} rows", all.rows);
        // A literal on the left flips the operator: 100 > a ⇔ a < 100.
        let flipped =
            est(&Plan::scan("U").select(Expr::cmp(CmpOp::Gt, Expr::lit(100i64), Expr::Col(0))));
        assert!((flipped.rows - lt.rows).abs() < 1e-9);
        // No histogram (constant column) keeps the flat fallback.
        let c = db.create_table(TableSchema::keyless("C", &["a"])).unwrap();
        for _ in 0..100 {
            c.insert(row![7i64]).unwrap();
        }
        let cat = StatsCatalog::snapshot(&db);
        assert!(cat.table("C").unwrap().hist[0].is_none());
        let flat = estimate(
            &cat,
            &Plan::scan("C").select(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(3i64))),
        );
        assert!(
            (flat.rows - 100.0 * RANGE_SELECTIVITY).abs() < 1e-6,
            "fallback moved: {}",
            flat.rows
        );
    }

    #[test]
    fn histograms_survive_column_preserving_operators() {
        let db = sample_db();
        let cat = StatsCatalog::snapshot(&db);
        // V has 200 rows with tid = 0..200 uniform; project then range.
        let plan = Plan::scan("V").project_cols(&[1]).select(Expr::cmp(
            CmpOp::Lt,
            Expr::Col(0),
            Expr::lit(50i64),
        ));
        let est = estimate(&cat, &plan);
        assert!(
            est.rows > 25.0 && est.rows < 80.0,
            "projected tid<50 estimated {} rows, want ~50",
            est.rows
        );
        // Join concatenation keeps right-side histograms aligned.
        let join = Plan::scan("V").join(Plan::scan("R"), vec![(1, 0)]);
        let est = estimate(&cat, &join);
        assert_eq!(est.hist.len(), 5);
        assert!(est.hist[3].is_some(), "right-side histogram lost");
    }

    #[test]
    fn range_estimates_keep_optimizer_equivalent() {
        // The histogram changes cardinalities, not semantics: an
        // optimized plan with range predicates must return exactly what
        // the unoptimized plan returns.
        let db = sample_db();
        let plan = Plan::scan("V")
            .select(Expr::cmp(CmpOp::Lt, Expr::Col(1), Expr::lit(120i64)))
            .join(
                Plan::scan("R").select(Expr::cmp(CmpOp::Ge, Expr::Col(0), Expr::lit(10i64))),
                vec![(1, 0)],
            )
            .sort(vec![0]);
        let optimized = crate::opt::optimize(&db, plan.clone()).unwrap();
        let a = crate::exec::stream(&db, &plan)
            .unwrap()
            .collect::<crate::error::Result<Vec<_>>>()
            .unwrap();
        let b = crate::exec::stream(&db, &optimized)
            .unwrap()
            .collect::<crate::error::Result<Vec<_>>>()
            .unwrap();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "workload degenerated to empty");
    }

    #[test]
    fn selectivity_composes() {
        let input = RelEstimate {
            rows: 100.0,
            distinct: vec![10.0, 2.0],
            mcv: Vec::new(),
            hist: Vec::new(),
        };
        let eq = Expr::col_eq_lit(0, 1i64);
        assert!((selectivity(&eq, &input) - 0.1).abs() < 1e-9);
        let both = Expr::and(vec![eq.clone(), Expr::col_eq_lit(1, "x")]);
        assert!((selectivity(&both, &input) - 0.05).abs() < 1e-9);
        let either = Expr::or(vec![eq, Expr::col_eq_lit(1, "x")]);
        assert!(selectivity(&either, &input) > 0.5);
    }
}
