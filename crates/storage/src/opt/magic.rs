//! Magic-sets / sideways-information-passing rewrite for Datalog
//! programs.
//!
//! The translated rule stacks of Algorithm 1 materialize every temp
//! relation in full, rule at a time, even when the final (answer) rule
//! probes a handful of keys. Belief workloads are overwhelmingly *bound*
//! — "what does **this** user believe about **this** tuple" — so almost
//! all of that work is wasted. This pass makes evaluation demand-driven:
//!
//! 1. **Adornment.** Walking each answer rule left to right, every
//!    argument position of a derived subgoal is classified *bound* (`b`)
//!    or *free* (`f`). A position is bound when the caller has a value
//!    for it: a constant, a variable bound by an earlier positive atom
//!    (the sideways-information-passing order), or a variable pinned to
//!    a constant by an equality comparison anywhere in the body.
//! 2. **Magic seeds.** For each adorned use `R^a` a demand rule is
//!    emitted deriving `__magic__R__a(bound args) :- <earlier positive
//!    atoms>` — the exact set of keys with which the rewritten rule will
//!    probe `R`. Comparison/negation literals are *not* copied into the
//!    seed (dropping filters can only enlarge the demand set, which is
//!    always safe).
//! 3. **Restricted copies.** Each rule defining `R` is copied to derive
//!    `R__a` instead, with the magic atom prepended so derivation starts
//!    from the demanded keys; the copy's body is rewritten recursively
//!    under the bindings the adornment provides, propagating demand
//!    further down the rule stack. When every use of a relation is
//!    adorned its original (unrestricted) rules are dropped — that is
//!    the payoff.
//!
//! The rewrite is answer-preserving: evaluation deduplicates rule heads
//! (set semantics), every magic relation over-approximates the true
//! demand, and relations appearing under negation or in the answer head
//! are never restricted. Output ordering is deterministic (definitions
//! before uses, stable across runs) so the rewritten program is a valid
//! plan-cache key and `EXPLAIN` stays reproducible.

use crate::datalog::{Atom, BodyLit, Program, Rule, Term};
use crate::expr::CmpOp;
use crate::value::Value;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};

/// Name prefix of generated demand ("magic") relations.
pub const MAGIC_PREFIX: &str = "__magic__";

/// The restricted copy of `rel` under adornment `adorn` (e.g. `T__bf`).
fn adorned_name(rel: &str, adorn: &str) -> String {
    format!("{rel}__{adorn}")
}

/// The demand relation seeding [`adorned_name`] (e.g. `__magic__T__bf`).
fn magic_name(rel: &str, adorn: &str) -> String {
    format!("{MAGIC_PREFIX}{rel}__{adorn}")
}

/// The deterministic `EXPLAIN` annotation for a rule produced by
/// [`rewrite`]: `[magic seed adorn=…]` on demand rules, `[magic
/// adorn=…]` on restricted rule copies (recognized by their prepended
/// magic guard), `None` on untouched rules.
pub fn rule_tag(rule: &Rule) -> Option<String> {
    fn adorn_of(name: &str) -> &str {
        name.rsplit("__").next().unwrap_or("")
    }
    if rule.head.relation.starts_with(MAGIC_PREFIX) {
        return Some(format!(
            " [magic seed adorn={}]",
            adorn_of(&rule.head.relation)
        ));
    }
    match rule.body.first() {
        Some(BodyLit::Pos(a)) if a.relation.starts_with(MAGIC_PREFIX) => {
            Some(format!(" [magic adorn={}]", adorn_of(&a.relation)))
        }
        _ => None,
    }
}

/// [`rewrite`] with a guard for the `sys.` namespace: virtual system
/// relations are scan-time snapshots with no stored rows, so seeding
/// magic predicates from (or deriving into) them is meaningless — a
/// program touching them is rejected with a clean error instead of
/// being silently rewritten. The production translation path
/// (`beliefdb-core`'s BCQ lowering) calls this variant.
pub fn rewrite_checked(program: &Program) -> crate::error::Result<Program> {
    for rule in &program.rules {
        let mut names = vec![&rule.head.relation];
        for lit in &rule.body {
            if let BodyLit::Pos(a) | BodyLit::Neg(a) = lit {
                names.push(&a.relation);
            }
        }
        if let Some(name) = names
            .into_iter()
            .find(|n| n.starts_with(crate::catalog::SYS_PREFIX))
        {
            return Err(crate::error::StorageError::ReservedName(
                crate::sema::Diagnostic::error(
                    crate::sema::codes::RESERVED_NAME,
                    format!(
                        "relation `{name}`: system tables cannot participate in the \
                         magic-sets rewrite"
                    ),
                )
                .code_message(),
            ));
        }
    }
    let rewritten = rewrite(program);
    // With the verifier armed, check guard well-formedness at the
    // rewrite boundary — a malformed guard surfaces here, not as a
    // wrong answer after evaluation.
    crate::sema::verify_magic_if_enabled(&rewritten)?;
    Ok(rewritten)
}

/// Rewrite `program` demand-driven. Programs with nothing to restrict
/// (no derived subgoal receives a binding) are returned unchanged, as
/// are empty and already-rewritten programs — the pass is idempotent.
pub fn rewrite(program: &Program) -> Program {
    let Some(answer) = program.rules.last().map(|r| r.head.relation.clone()) else {
        return program.clone();
    };
    // Defining rules per derived relation, in program order.
    let mut defs: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, r) in program.rules.iter().enumerate() {
        if r.head.relation.starts_with(MAGIC_PREFIX) {
            // Already rewritten (or squatting on our namespace): leave it.
            return program.clone();
        }
        defs.entry(r.head.relation.clone()).or_default().push(i);
    }
    // Relations that must never be restricted: the answer itself (its
    // rules are the demand seeds) and anything read under negation —
    // shrinking a negated relation would grow its complement and change
    // answers.
    let mut blocked: HashSet<String> = HashSet::new();
    blocked.insert(answer.clone());
    for r in &program.rules {
        for lit in &r.body {
            if let BodyLit::Neg(a) = lit {
                blocked.insert(a.relation.clone());
            }
        }
    }

    let mut rw = Rewriter {
        program,
        defs,
        blocked,
        done: HashSet::new(),
        queue: VecDeque::new(),
        generated: Vec::new(),
        plain_used: BTreeSet::new(),
        changed: false,
    };

    // The answer rules drive the demand: rewriting their bodies emits a
    // magic seed for every bound subgoal and redirects those atoms to
    // the restricted copies. Heads stay untouched.
    let mut answers: Vec<Rule> = Vec::new();
    for rule in program.rules.iter().filter(|r| r.head.relation == answer) {
        let body = rw.process_body(&rule.body, HashSet::new(), Vec::new());
        answers.push(Rule {
            head: rule.head.clone(),
            body,
        });
    }

    // Restricted copies, breadth-first over demanded (relation,
    // adornment) pairs; each copy's body may demand further relations.
    while let Some((rel, adorn)) = rw.queue.pop_front() {
        let idxs = rw.defs.get(&rel).cloned().unwrap_or_default();
        for i in idxs {
            let rule = &rw.program.rules[i];
            let mut bound: HashSet<String> = HashSet::new();
            let mut magic_terms: Vec<Term> = Vec::new();
            for (j, ch) in adorn.chars().enumerate() {
                if ch != 'b' {
                    continue;
                }
                let t = rule.head.terms.get(j).cloned().unwrap_or(Term::Any);
                if let Term::Var(n) = &t {
                    bound.insert(n.clone());
                }
                magic_terms.push(t);
            }
            let magic_atom = Atom::new(magic_name(&rel, &adorn), magic_terms);
            let tail = rw.process_body(&rule.body, bound, vec![magic_atom.clone()]);
            let mut body = Vec::with_capacity(tail.len() + 1);
            body.push(BodyLit::Pos(magic_atom));
            body.extend(tail);
            rw.generated.push(Rule {
                head: Atom::new(adorned_name(&rel, &adorn), rule.head.terms.clone()),
                body,
            });
        }
    }

    if !rw.changed {
        return program.clone();
    }

    // Original rules survive only where a surviving rule still reads the
    // unrestricted relation (negated uses, uses with nothing bound) —
    // transitively, since kept originals read their own dependencies
    // unrewritten.
    let mut keep: HashSet<String> = HashSet::new();
    let mut stack: Vec<String> = rw.plain_used.iter().cloned().collect();
    while let Some(rel) = stack.pop() {
        if !keep.insert(rel.clone()) {
            continue;
        }
        for &i in rw.defs.get(&rel).map(|v| v.as_slice()).unwrap_or(&[]) {
            for lit in &rw.program.rules[i].body {
                if let BodyLit::Pos(a) | BodyLit::Neg(a) = lit {
                    if rw.defs.contains_key(&a.relation) && !keep.contains(&a.relation) {
                        stack.push(a.relation.clone());
                    }
                }
            }
        }
    }
    let mut rules: Vec<Rule> = program
        .rules
        .iter()
        .filter(|r| r.head.relation != answer && keep.contains(&r.head.relation))
        .cloned()
        .collect();
    rules.extend(rw.generated);
    let mut ordered = order_rules(rules);
    ordered.extend(answers);
    Program { rules: ordered }
}

struct Rewriter<'p> {
    program: &'p Program,
    /// Rule indices defining each derived relation, in program order.
    defs: HashMap<String, Vec<usize>>,
    /// Relations that must stay unrestricted.
    blocked: HashSet<String>,
    /// `(relation, adornment)` pairs already expanded (or queued).
    done: HashSet<(String, String)>,
    queue: VecDeque<(String, String)>,
    /// Magic seeds and restricted copies, in generation order.
    generated: Vec<Rule>,
    /// Derived relations still read unrestricted somewhere.
    plain_used: BTreeSet<String>,
    changed: bool,
}

impl Rewriter<'_> {
    /// Rewrite a rule body left to right under `bound` (the variables
    /// the rule's own magic guard provides, empty for answer rules).
    /// `prefix` accumulates the positive atoms already emitted — the SIP
    /// context every magic seed derives its demand from.
    fn process_body(
        &mut self,
        body: &[BodyLit],
        mut bound: HashSet<String>,
        mut prefix: Vec<Atom>,
    ) -> Vec<BodyLit> {
        let subst = const_subst(body);
        let mut out = Vec::with_capacity(body.len());
        for lit in body {
            match lit {
                BodyLit::Pos(atom) => {
                    let rewritten = self.adorn_atom(atom, &bound, &subst, &prefix);
                    for t in &rewritten.terms {
                        if let Term::Var(n) = t {
                            bound.insert(n.clone());
                        }
                    }
                    prefix.push(rewritten.clone());
                    out.push(BodyLit::Pos(rewritten));
                }
                BodyLit::Neg(a) => {
                    self.note_plain_use(&a.relation);
                    out.push(lit.clone());
                }
                other => out.push(other.clone()),
            }
        }
        out
    }

    /// Adorn one positive atom: emit its magic seed, queue the restricted
    /// copy, and return the renamed atom — or the atom unchanged when
    /// nothing useful is bound (base tables, blocked relations, fully
    /// free uses).
    fn adorn_atom(
        &mut self,
        atom: &Atom,
        bound: &HashSet<String>,
        subst: &HashMap<String, Value>,
        prefix: &[Atom],
    ) -> Atom {
        if self.blocked.contains(&atom.relation) || !self.defs.contains_key(&atom.relation) {
            self.note_plain_use(&atom.relation);
            return atom.clone();
        }
        let var_heads = self.var_head_positions(&atom.relation);
        let mut adorn = String::with_capacity(atom.terms.len());
        let mut magic_terms: Vec<Term> = Vec::new();
        for (pos, t) in atom.terms.iter().enumerate() {
            // A position carries demand only when the caller has a value
            // for it *and* some defining rule has a variable there to
            // receive it (all-constant head positions filter by
            // themselves; passing them would seed useless magic).
            let passed = var_heads.get(pos).copied().unwrap_or(false)
                && match t {
                    Term::Const(_) => true,
                    Term::Var(n) => bound.contains(n) || subst.contains_key(n),
                    Term::Any => false,
                };
            if passed {
                adorn.push('b');
                magic_terms.push(match t {
                    // Bound only through an `x = c` comparison: the seed
                    // carries the constant directly (the variable has no
                    // positional binding in the prefix).
                    Term::Var(n) if !bound.contains(n) => Term::Const(subst[n].clone()),
                    other => other.clone(),
                });
            } else {
                adorn.push('f');
            }
        }
        if !adorn.contains('b') {
            self.note_plain_use(&atom.relation);
            return atom.clone();
        }
        self.changed = true;
        self.generated.push(Rule {
            head: Atom::new(magic_name(&atom.relation, &adorn), magic_terms),
            body: prefix.iter().cloned().map(BodyLit::Pos).collect(),
        });
        let key = (atom.relation.clone(), adorn.clone());
        if self.done.insert(key.clone()) {
            self.queue.push_back(key);
        }
        Atom::new(adorned_name(&atom.relation, &adorn), atom.terms.clone())
    }

    /// Per position: does *some* defining rule of `rel` have a variable
    /// head term there (i.e. can a binding restrict the derivation)?
    fn var_head_positions(&self, rel: &str) -> Vec<bool> {
        let mut flags: Vec<bool> = Vec::new();
        for &i in self.defs.get(rel).map(|v| v.as_slice()).unwrap_or(&[]) {
            for (j, t) in self.program.rules[i].head.terms.iter().enumerate() {
                if flags.len() <= j {
                    flags.resize(j + 1, false);
                }
                if matches!(t, Term::Var(_)) {
                    flags[j] = true;
                }
            }
        }
        flags
    }

    fn note_plain_use(&mut self, rel: &str) {
        if self.defs.contains_key(rel) {
            self.plain_used.insert(rel.to_string());
        }
    }
}

/// Variables pinned to a constant by a top-level `x = c` comparison
/// (conjunctive context only — disjuncts of `Or` don't pin anything).
fn const_subst(body: &[BodyLit]) -> HashMap<String, Value> {
    let mut subst = HashMap::new();
    for lit in body {
        if let BodyLit::Cmp(c) = lit {
            if c.op != CmpOp::Eq {
                continue;
            }
            match (&c.left, &c.right) {
                (Term::Var(n), Term::Const(v)) | (Term::Const(v), Term::Var(n)) => {
                    subst.entry(n.clone()).or_insert_with(|| v.clone());
                }
                _ => {}
            }
        }
    }
    subst
}

/// Order rules definitions-before-uses, deterministically: Kahn's
/// algorithm over the head-relation dependency graph with
/// first-definition-order tie-breaking; rules keep their relative order
/// within a relation. Relations left over by cycles (recursive
/// programs) are appended in first-definition order — the recursive
/// evaluator stratifies by strongly connected component itself, so
/// within-cycle order only needs to be stable.
fn order_rules(rules: Vec<Rule>) -> Vec<Rule> {
    let mut rels: Vec<String> = Vec::new();
    let mut idx: HashMap<String, usize> = HashMap::new();
    for r in &rules {
        if !idx.contains_key(&r.head.relation) {
            idx.insert(r.head.relation.clone(), rels.len());
            rels.push(r.head.relation.clone());
        }
    }
    let n = rels.len();
    let mut deps: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for r in &rules {
        let h = idx[&r.head.relation];
        for lit in &r.body {
            if let BodyLit::Pos(a) | BodyLit::Neg(a) = lit {
                if let Some(&d) = idx.get(&a.relation) {
                    if d != h {
                        deps[h].insert(d);
                    }
                }
            }
        }
    }
    let mut rdeps: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indeg: Vec<usize> = vec![0; n];
    for (h, ds) in deps.iter().enumerate() {
        indeg[h] = ds.len();
        for &d in ds {
            rdeps[d].push(h);
        }
    }
    let mut ready: BTreeSet<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    while let Some(&i) = ready.iter().next() {
        ready.remove(&i);
        placed[i] = true;
        order.push(i);
        for &h in &rdeps[i] {
            indeg[h] -= 1;
            if indeg[h] == 0 {
                ready.insert(h);
            }
        }
    }
    order.extend((0..n).filter(|&i| !placed[i]));
    let mut by_rel: HashMap<usize, Vec<Rule>> = HashMap::new();
    for r in rules {
        by_rel.entry(idx[&r.head.relation]).or_default().push(r);
    }
    order
        .into_iter()
        .flat_map(|i| by_rel.remove(&i).unwrap_or_default())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::datalog::dsl::*;
    use crate::datalog::Evaluator;
    use crate::row;
    use crate::schema::TableSchema;

    /// A small edge/user database for end-to-end checks.
    fn db() -> Database {
        let mut db = Database::new();
        let e = db
            .create_table(TableSchema::keyless("e", &["src", "dst"]))
            .unwrap();
        for (s, d) in [(0, 1), (1, 2), (2, 3), (1, 4), (4, 5), (7, 8)] {
            e.insert(row![s, d]).unwrap();
        }
        let lbl = db
            .create_table(TableSchema::keyless("lbl", &["id", "tag"]))
            .unwrap();
        for (i, t) in [(1, "a"), (2, "b"), (3, "a"), (5, "b"), (8, "a")] {
            lbl.insert(row![i, t]).unwrap();
        }
        db
    }

    fn hop_program(bound_src: Option<i64>) -> Program {
        // hop(x, y) :- e(x, z), e(z, y).   ans(y) :- hop(C, y).
        let src = match bound_src {
            Some(cst) => c(cst),
            None => v("x0"),
        };
        Program {
            rules: vec![
                rule(
                    "hop",
                    vec![v("x"), v("y")],
                    vec![
                        pos("e", vec![v("x"), v("z")]),
                        pos("e", vec![v("z"), v("y")]),
                    ],
                ),
                rule("ans", vec![v("y")], vec![pos("hop", vec![src, v("y")])]),
            ],
        }
    }

    #[test]
    fn bound_probe_generates_seed_and_restricted_copy() {
        let rewritten = rewrite(&hop_program(Some(0)));
        let text = rewritten.to_string();
        // Demand seeded from the constant, with an empty body.
        assert!(text.contains("__magic__hop__bf(0) :- ."), "{text}");
        // The defining rule is copied, guarded by its magic relation.
        assert!(
            text.contains("hop__bf(x, y) :- __magic__hop__bf(x)"),
            "{text}"
        );
        // The answer probes the restricted copy...
        assert!(text.contains("ans(y) :- hop__bf(0, y)."), "{text}");
        // ...and the unrestricted original is gone.
        assert!(!text.contains("hop(x, y) :- e(x, z)"), "{text}");
        // Answer rule stays last.
        assert_eq!(rewritten.rules.last().unwrap().head.relation, "ans");
    }

    #[test]
    fn unbound_program_is_returned_unchanged() {
        let prog = hop_program(None);
        assert_eq!(rewrite(&prog), prog);
        assert_eq!(rewrite(&Program::default()), Program::default());
    }

    #[test]
    fn rewrite_is_idempotent() {
        let once = rewrite(&hop_program(Some(0)));
        assert_eq!(rewrite(&once), once);
    }

    #[test]
    fn sip_passes_bindings_from_earlier_subgoals() {
        // tagged(x, t) :- e(x, y), lbl(y, t) as a derived relation probed
        // with a variable bound sideways by an earlier atom.
        let prog = Program {
            rules: vec![
                rule(
                    "tagged",
                    vec![v("x"), v("t")],
                    vec![
                        pos("e", vec![v("x"), v("y")]),
                        pos("lbl", vec![v("y"), v("t")]),
                    ],
                ),
                rule(
                    "ans",
                    vec![v("w"), v("t")],
                    vec![
                        pos("e", vec![c(0), v("w")]),
                        pos("tagged", vec![v("w"), v("t")]),
                    ],
                ),
            ],
        };
        let text = rewrite(&prog).to_string();
        // The seed derives the demanded keys from the earlier atom.
        assert!(
            text.contains("__magic__tagged__bf(w) :- e(0, w)."),
            "{text}"
        );
        assert!(text.contains("tagged__bf"), "{text}");
    }

    #[test]
    fn eq_const_comparison_counts_as_binding() {
        let prog = Program {
            rules: vec![
                rule(
                    "hop",
                    vec![v("x"), v("y")],
                    vec![
                        pos("e", vec![v("x"), v("z")]),
                        pos("e", vec![v("z"), v("y")]),
                    ],
                ),
                rule(
                    "ans",
                    vec![v("y")],
                    vec![
                        pos("hop", vec![v("x0"), v("y")]),
                        cmp(v("x0"), CmpOp::Eq, c(1)),
                    ],
                ),
            ],
        };
        let text = rewrite(&prog).to_string();
        // The seed carries the pinned constant; the comparison literal
        // itself stays in the answer body.
        assert!(text.contains("__magic__hop__bf(1) :- ."), "{text}");
        assert!(text.contains("x0 = 1"), "{text}");
    }

    #[test]
    fn negated_relations_are_never_restricted() {
        // bad(y) is read under negation: restricting it would grow its
        // complement, so it (and its positive use) must stay original.
        let prog = Program {
            rules: vec![
                rule("bad", vec![v("y")], vec![pos("e", vec![c(7), v("y")])]),
                rule(
                    "ans",
                    vec![v("y")],
                    vec![pos("e", vec![c(0), v("y")]), neg("bad", vec![v("y")])],
                ),
            ],
        };
        let rewritten = rewrite(&prog);
        assert_eq!(rewritten, prog, "negated relation must not be adorned");
    }

    #[test]
    fn rewritten_programs_preserve_answers() {
        let db = db();
        for prog in [
            hop_program(Some(0)),
            hop_program(Some(1)),
            hop_program(Some(9)), // no matching demand at all
            hop_program(None),
        ] {
            let mut plain = Evaluator::new(&db);
            plain.run(&prog).unwrap();
            let mut want = plain.relation("ans").unwrap().to_vec();
            want.sort();
            let rewritten = rewrite(&prog);
            let mut ev = Evaluator::new(&db);
            ev.run(&rewritten).unwrap();
            let mut got = ev.relation("ans").unwrap().to_vec();
            got.sort();
            assert_eq!(got, want, "rewrite changed answers of {prog}");
        }
    }

    #[test]
    fn restricted_copy_derives_only_demanded_rows() {
        let db = db();
        let prog = hop_program(Some(0));
        let rewritten = rewrite(&prog);
        let mut ev = Evaluator::new(&db);
        ev.run(&rewritten).unwrap();
        // Full hop has rows from sources 0, 1, and 2; the
        // demand-restricted copy derives only those reachable from 0.
        let mut restricted = ev.relation("hop__bf").unwrap().to_vec();
        restricted.sort();
        assert_eq!(restricted, vec![row![0, 2], row![0, 4]]);
        assert!(
            ev.relation("hop").is_none(),
            "original rules must be dropped"
        );
    }

    #[test]
    fn recursive_closure_is_rewritten_with_recursive_magic() {
        // tc(x, y) :- e(x, y).  tc(x, y) :- e(x, z), tc(z, y).
        // ans(y) :- tc(1, y).
        let prog = Program {
            rules: vec![
                rule(
                    "tc",
                    vec![v("x"), v("y")],
                    vec![pos("e", vec![v("x"), v("y")])],
                ),
                rule(
                    "tc",
                    vec![v("x"), v("y")],
                    vec![
                        pos("e", vec![v("x"), v("z")]),
                        pos("tc", vec![v("z"), v("y")]),
                    ],
                ),
                rule("ans", vec![v("y")], vec![pos("tc", vec![c(1), v("y")])]),
            ],
        };
        let rewritten = rewrite(&prog);
        let text = rewritten.to_string();
        // The textbook recursive demand rule: a new source is demanded
        // for every edge out of an already-demanded one.
        assert!(
            text.contains("__magic__tc__bf(z) :- __magic__tc__bf(x), e(x, z)."),
            "{text}"
        );
        let db = db();
        let mut ev = Evaluator::new(&db);
        ev.run(&rewritten).unwrap();
        let mut got = ev.relation("ans").unwrap().to_vec();
        got.sort();
        assert_eq!(got, vec![row![2], row![3], row![4], row![5]]);
        // Demand never reaches the 7→8 component.
        let restricted = ev.relation("tc__bf").unwrap();
        assert!(
            !restricted
                .iter()
                .any(|r| r[0] == crate::value::Value::int(7)),
            "{restricted:?}"
        );
    }

    #[test]
    fn rule_tags_label_seeds_and_restricted_copies() {
        let rewritten = rewrite(&hop_program(Some(0)));
        let tags: Vec<Option<String>> = rewritten.rules.iter().map(rule_tag).collect();
        assert!(tags
            .iter()
            .any(|t| t.as_deref() == Some(" [magic seed adorn=bf]")));
        assert!(tags
            .iter()
            .any(|t| t.as_deref() == Some(" [magic adorn=bf]")));
        // The answer rule carries no tag.
        assert_eq!(tags.last().unwrap(), &None);
        // Untouched programs never get tags.
        assert!(hop_program(None)
            .rules
            .iter()
            .all(|r| rule_tag(r).is_none()));
    }

    #[test]
    fn rewrite_checked_rejects_sys_relations() {
        // Reading a system relation in a rule body...
        let program = Program {
            rules: vec![rule(
                "Out",
                vec![v("x")],
                vec![pos("sys.metrics", vec![v("x"), any()])],
            )],
        };
        let err = rewrite_checked(&program).unwrap_err();
        assert!(matches!(err, crate::error::StorageError::ReservedName(_)));
        assert!(err.to_string().contains("sys.metrics"));
        // ...or deriving into one is rejected; plain programs pass through.
        let program = Program {
            rules: vec![rule("sys.out", vec![v("x")], vec![pos("E", vec![v("x")])])],
        };
        assert!(rewrite_checked(&program).is_err());
        let ok = Program {
            rules: vec![rule("Out", vec![v("x")], vec![pos("E", vec![v("x")])])],
        };
        assert_eq!(rewrite_checked(&ok).unwrap(), rewrite(&ok));
    }

    #[test]
    fn rewrite_output_is_deterministic() {
        let a = rewrite(&hop_program(Some(0))).to_string();
        let b = rewrite(&hop_program(Some(0))).to_string();
        assert_eq!(a, b);
    }
}
