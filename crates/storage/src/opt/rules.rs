//! Semantics-preserving rewrite rules over [`Plan`]s.
//!
//! Every rule preserves the output *multiset* (the engine has bag
//! semantics: `Union` is bag union, `Scan` yields duplicates from keyless
//! tables). The rules:
//!
//! * **constant folding** ([`fold_plan`]): comparisons of literals, AND/OR
//!   flattening with identity/absorbing elements, double negation;
//! * **selection pushdown + filter fusion** ([`push_selections`]):
//!   conjuncts sink through projections (by substitution), unions,
//!   distinct, sort, anti-join left inputs, and into join sides; equality
//!   conjuncts that span a join become hash-join keys;
//! * **plan simplification** ([`simplify`]): always-false selections,
//!   empty inputs, singleton-union collapse, nested-union flattening,
//!   duplicate `Distinct`;
//! * **projection fusion and pruning** ([`fuse_projections`],
//!   [`prune_columns`]): adjacent projections compose, and columns that
//!   no later operator reads are dropped before joins materialize them.

use crate::catalog::Database;
use crate::error::Result;
use crate::expr::Expr;
use crate::plan::Plan;
use crate::row::Row;
use crate::value::Value;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Expression helpers
// ---------------------------------------------------------------------------

/// Constant-fold an expression.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Col(_) | Expr::Lit(_) => e.clone(),
        Expr::Cmp(op, a, b) => {
            let a = fold_expr(a);
            let b = fold_expr(b);
            if let (Expr::Lit(va), Expr::Lit(vb)) = (&a, &b) {
                return Expr::Lit(Value::Bool(op.eval(va, vb)));
            }
            Expr::cmp(*op, a, b)
        }
        Expr::And(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                match fold_expr(p) {
                    Expr::Lit(Value::Bool(true)) => {}
                    Expr::Lit(Value::Bool(false)) => return Expr::Lit(Value::Bool(false)),
                    Expr::And(nested) => out.extend(nested),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Expr::Lit(Value::Bool(true)),
                1 => out.pop().expect("len checked"),
                _ => Expr::And(out),
            }
        }
        Expr::Or(parts) => {
            let mut out = Vec::with_capacity(parts.len());
            for p in parts {
                match fold_expr(p) {
                    Expr::Lit(Value::Bool(false)) => {}
                    Expr::Lit(Value::Bool(true)) => return Expr::Lit(Value::Bool(true)),
                    Expr::Or(nested) => out.extend(nested),
                    other => out.push(other),
                }
            }
            match out.len() {
                0 => Expr::Lit(Value::Bool(false)),
                1 => out.pop().expect("len checked"),
                _ => Expr::Or(out),
            }
        }
        Expr::Not(inner) => match fold_expr(inner) {
            Expr::Lit(Value::Bool(b)) => Expr::Lit(Value::Bool(!b)),
            Expr::Not(x) => *x,
            other => Expr::Not(Box::new(other)),
        },
    }
}

/// Flatten a conjunction into its top-level conjuncts.
pub fn split_and(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::And(parts) => parts.iter().flat_map(split_and).collect(),
        other => vec![other.clone()],
    }
}

/// Rebuild a predicate from conjuncts (`true` when empty).
pub fn join_and(mut conjuncts: Vec<Expr>) -> Expr {
    match conjuncts.len() {
        0 => Expr::Lit(Value::Bool(true)),
        1 => conjuncts.pop().expect("len checked"),
        _ => Expr::And(conjuncts),
    }
}

/// Columns referenced by an expression.
pub fn cols_of(e: &Expr) -> BTreeSet<usize> {
    let mut out = BTreeSet::new();
    collect_cols(e, &mut out);
    out
}

fn collect_cols(e: &Expr, out: &mut BTreeSet<usize>) {
    match e {
        Expr::Col(i) => {
            out.insert(*i);
        }
        Expr::Lit(_) => {}
        Expr::Cmp(_, a, b) => {
            collect_cols(a, out);
            collect_cols(b, out);
        }
        Expr::And(ps) | Expr::Or(ps) => {
            for p in ps {
                collect_cols(p, out);
            }
        }
        Expr::Not(inner) => collect_cols(inner, out),
    }
}

/// Substitute column references by the projection expressions that produce
/// them (pushing a predicate below `Projection { exprs }`).
pub fn subst_expr(e: &Expr, exprs: &[Expr]) -> Expr {
    match e {
        Expr::Col(i) => exprs[*i].clone(),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Cmp(op, a, b) => Expr::cmp(*op, subst_expr(a, exprs), subst_expr(b, exprs)),
        Expr::And(ps) => Expr::And(ps.iter().map(|p| subst_expr(p, exprs)).collect()),
        Expr::Or(ps) => Expr::Or(ps.iter().map(|p| subst_expr(p, exprs)).collect()),
        Expr::Not(inner) => Expr::Not(Box::new(subst_expr(inner, exprs))),
    }
}

fn is_true(e: &Expr) -> bool {
    matches!(e, Expr::Lit(Value::Bool(true)))
}

/// Conservatively true when evaluating `e` as a predicate can never raise
/// a `TypeError` on rows of a validated arity: comparisons always yield
/// booleans, and AND/OR/NOT of boolean-shaped parts stay boolean. A bare
/// column (or non-boolean literal) may fail `eval_bool` at runtime, and
/// moving such a predicate to a different position would surface errors
/// the unoptimized plan never evaluates — so the rules leave those where
/// they are.
pub(crate) fn is_boolean_shaped(e: &Expr) -> bool {
    match e {
        Expr::Cmp(..) => true,
        Expr::Lit(Value::Bool(_)) => true,
        Expr::And(ps) | Expr::Or(ps) => ps.iter().all(is_boolean_shaped),
        Expr::Not(inner) => is_boolean_shaped(inner),
        Expr::Col(_) | Expr::Lit(_) => false,
    }
}

// ---------------------------------------------------------------------------
// Constant folding over plans
// ---------------------------------------------------------------------------

/// Apply [`fold_expr`] to every predicate and projection expression.
///
/// Takes the plan by value (as do all rules in this module): unchanged
/// subtrees — in particular materialized `Values` relations, which hold
/// real rows — move instead of being cloned, keeping optimization cost
/// independent of intermediate-result sizes.
pub fn fold_plan(plan: Plan) -> Plan {
    match plan {
        Plan::Scan { .. } | Plan::Values { .. } => plan,
        Plan::Selection { input, predicate } => Plan::Selection {
            input: Box::new(fold_plan(*input)),
            predicate: fold_expr(&predicate),
        },
        Plan::Projection { input, exprs } => Plan::Projection {
            input: Box::new(fold_plan(*input)),
            exprs: exprs.iter().map(fold_expr).collect(),
        },
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => Plan::Join {
            left: Box::new(fold_plan(*left)),
            right: Box::new(fold_plan(*right)),
            on,
            residual: residual.as_ref().map(fold_expr).filter(|e| !is_true(e)),
        },
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => Plan::AntiJoin {
            left: Box::new(fold_plan(*left)),
            right: Box::new(fold_plan(*right)),
            on,
            residual: residual.as_ref().map(fold_expr).filter(|e| !is_true(e)),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(fold_plan(*input)),
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs.into_iter().map(fold_plan).collect(),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(fold_plan(*input)),
            group_by,
            aggs,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(fold_plan(*input)),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(fold_plan(*input)),
            n,
        },
    }
}

// ---------------------------------------------------------------------------
// Selection pushdown
// ---------------------------------------------------------------------------

/// Push selections as close to the leaves as bag semantics allow, fusing
/// adjacent filters and promoting spanning equality conjuncts to join keys.
pub fn push_selections(db: &Database, plan: Plan) -> Result<Plan> {
    match plan {
        Plan::Selection { input, predicate } => {
            let input = push_selections(db, *input)?;
            sink(db, input, split_and(&predicate))
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let left = push_selections(db, *left)?;
            let right = push_selections(db, *right)?;
            let shell = Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
                residual: None,
            };
            let conjuncts = match residual {
                Some(r) => split_and(&r),
                None => Vec::new(),
            };
            sink(db, shell, conjuncts)
        }
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => Ok(Plan::AntiJoin {
            left: Box::new(push_selections(db, *left)?),
            right: Box::new(push_selections(db, *right)?),
            on,
            residual,
        }),
        Plan::Projection { input, exprs } => Ok(Plan::Projection {
            input: Box::new(push_selections(db, *input)?),
            exprs,
        }),
        Plan::Distinct { input } => Ok(Plan::Distinct {
            input: Box::new(push_selections(db, *input)?),
        }),
        Plan::Union { inputs } => Ok(Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| push_selections(db, p))
                .collect::<Result<_>>()?,
        }),
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Ok(Plan::Aggregate {
            input: Box::new(push_selections(db, *input)?),
            group_by,
            aggs,
        }),
        Plan::Sort { input, by } => Ok(Plan::Sort {
            input: Box::new(push_selections(db, *input)?),
            by,
        }),
        Plan::Limit { input, n } => Ok(Plan::Limit {
            input: Box::new(push_selections(db, *input)?),
            n,
        }),
        Plan::Scan { .. } | Plan::Values { .. } => Ok(plan),
    }
}

/// Sink `conjuncts` into `input` as deep as possible. `input` has already
/// been rewritten by [`push_selections`].
///
/// Only boolean-shaped conjuncts move ([`is_boolean_shaped`]); anything
/// that could raise a `TypeError` at evaluation time stays exactly where
/// the original plan evaluated it, so pushdown never surfaces an error
/// the unoptimized plan would not have hit.
fn sink(db: &Database, input: Plan, mut conjuncts: Vec<Expr>) -> Result<Plan> {
    conjuncts.retain(|c| !is_true(c));
    let kept: Vec<Expr> = conjuncts
        .iter()
        .filter(|c| !is_boolean_shaped(c))
        .cloned()
        .collect();
    if !kept.is_empty() {
        conjuncts.retain(is_boolean_shaped);
        let pushed = sink(db, input, conjuncts)?;
        return Ok(Plan::Selection {
            input: Box::new(pushed),
            predicate: join_and(kept),
        });
    }
    if conjuncts.is_empty() {
        return Ok(input);
    }
    match input {
        // Filter fusion: merge into the lower selection and keep sinking.
        Plan::Selection {
            input: inner,
            predicate,
        } => {
            conjuncts.extend(split_and(&predicate));
            sink(db, *inner, conjuncts)
        }
        // σ over ∪ distributes into every branch.
        Plan::Union { inputs } => Ok(Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| sink(db, p, conjuncts.clone()))
                .collect::<Result<_>>()?,
        }),
        // σ and δ commute under bag semantics.
        Plan::Distinct { input: inner } => Ok(Plan::Distinct {
            input: Box::new(sink(db, *inner, conjuncts)?),
        }),
        // Filtering before a sort preserves the sorted order of survivors.
        Plan::Sort { input: inner, by } => Ok(Plan::Sort {
            input: Box::new(sink(db, *inner, conjuncts)?),
            by,
        }),
        // σ over π: substitute the projection expressions into the
        // predicate and push the rewritten predicate below.
        Plan::Projection {
            input: inner,
            exprs,
        } => {
            let rewritten: Vec<Expr> = conjuncts
                .iter()
                .map(|c| fold_expr(&subst_expr(c, &exprs)))
                .collect();
            Ok(Plan::Projection {
                input: Box::new(sink(db, *inner, rewritten)?),
                exprs,
            })
        }
        // An anti-join emits a subset of its left rows, so every conjunct
        // refers to left columns and can filter the left input first.
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => Ok(Plan::AntiJoin {
            left: Box::new(sink(db, *left, conjuncts)?),
            right,
            on,
            residual,
        }),
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let la = left.arity(db)?;
            let mut on = on;
            let mut to_left: Vec<Expr> = Vec::new();
            let mut to_right: Vec<Expr> = Vec::new();
            let mut residuals: Vec<Expr> = match residual {
                Some(r) => split_and(&r),
                None => Vec::new(),
            };
            for c in conjuncts {
                let cols = cols_of(&c);
                if let Some(pair) = spanning_eq_key(&c, la) {
                    if !on.contains(&pair) {
                        on.push(pair);
                    }
                    continue;
                }
                if cols.iter().all(|&i| i < la) {
                    to_left.push(c);
                } else if cols.iter().all(|&i| i >= la) {
                    to_right.push(c.remap_cols(&|i| i - la));
                } else {
                    residuals.push(c);
                }
            }
            let left = if to_left.is_empty() {
                *left
            } else {
                sink(db, *left, to_left)?
            };
            let right = if to_right.is_empty() {
                *right
            } else {
                sink(db, *right, to_right)?
            };
            residuals.retain(|c| !is_true(c));
            Ok(Plan::Join {
                left: Box::new(left),
                right: Box::new(right),
                on,
                residual: if residuals.is_empty() {
                    None
                } else {
                    Some(join_and(residuals))
                },
            })
        }
        // Literal relations can be filtered right now — unless evaluation
        // errors (a predicate the executor would also reject), in which
        // case keep the selection for the executor to report.
        Plan::Values { arity, rows } => {
            let pred = join_and(conjuncts);
            let mut kept = Vec::with_capacity(rows.len());
            for r in &rows {
                match pred.eval_bool(r) {
                    Ok(true) => kept.push(r.clone()),
                    Ok(false) => {}
                    Err(_) => {
                        return Ok(Plan::Selection {
                            input: Box::new(Plan::Values { arity, rows }),
                            predicate: pred,
                        })
                    }
                }
            }
            Ok(Plan::Values { arity, rows: kept })
        }
        // σ over γ: a conjunct that reads only group-by *output* columns
        // filters whole groups, and filtering the input rows by the same
        // key predicate (remapped through `group_by`) removes exactly
        // those groups — multiset-safe. Conjuncts touching aggregate
        // outputs stay above, and a global aggregate (empty `group_by`)
        // is a hard barrier: it emits one row even over empty input, so
        // nothing may move below it (not even a constant-false filter).
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let key_arity = group_by.len();
            let (push, keep): (Vec<Expr>, Vec<Expr>) = conjuncts
                .into_iter()
                .partition(|c| key_arity > 0 && cols_of(c).iter().all(|&i| i < key_arity));
            let input = if push.is_empty() {
                input
            } else {
                let rewritten: Vec<Expr> = push
                    .iter()
                    .map(|c| c.remap_cols(&|i| group_by[i]))
                    .collect();
                Box::new(sink(db, *input, rewritten)?)
            };
            let agg = Plan::Aggregate {
                input,
                group_by,
                aggs,
            };
            Ok(if keep.is_empty() {
                agg
            } else {
                Plan::Selection {
                    input: Box::new(agg),
                    predicate: join_and(keep),
                }
            })
        }
        // Scans keep their selection on top: the executor turns it into an
        // index lookup when the predicate pins indexed columns. Limits are
        // barriers — filtering before a limit changes which rows survive.
        other @ (Plan::Scan { .. } | Plan::Limit { .. }) => Ok(Plan::Selection {
            input: Box::new(other),
            predicate: join_and(conjuncts),
        }),
    }
}

/// `col_a = col_b` with the columns on opposite sides of a join at split
/// point `la` becomes a hash-join key `(left_col, right_col)`.
fn spanning_eq_key(e: &Expr, la: usize) -> Option<(usize, usize)> {
    if let Expr::Cmp(crate::expr::CmpOp::Eq, a, b) = e {
        if let (Expr::Col(x), Expr::Col(y)) = (a.as_ref(), b.as_ref()) {
            if *x < la && *y >= la {
                return Some((*x, *y - la));
            }
            if *y < la && *x >= la {
                return Some((*y, *x - la));
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Simplification: empties, always-false, unions
// ---------------------------------------------------------------------------

fn is_empty_values(p: &Plan) -> bool {
    matches!(p, Plan::Values { rows, .. } if rows.is_empty())
}

/// The 0-column, 1-row unit relation ([`Plan::unit`]) — the identity of
/// cross joins.
fn is_unit_values(p: &Plan) -> bool {
    matches!(p, Plan::Values { arity: 0, rows } if rows.len() == 1)
}

fn empty_of(arity: usize) -> Plan {
    Plan::Values {
        arity,
        rows: Vec::new(),
    }
}

/// Structural simplification, applied bottom-up.
pub fn simplify(db: &Database, plan: Plan) -> Result<Plan> {
    let plan = match plan {
        Plan::Scan { .. } | Plan::Values { .. } => plan,
        Plan::Selection { input, predicate } => Plan::Selection {
            input: Box::new(simplify(db, *input)?),
            predicate,
        },
        Plan::Projection { input, exprs } => Plan::Projection {
            input: Box::new(simplify(db, *input)?),
            exprs,
        },
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => Plan::Join {
            left: Box::new(simplify(db, *left)?),
            right: Box::new(simplify(db, *right)?),
            on,
            residual,
        },
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => Plan::AntiJoin {
            left: Box::new(simplify(db, *left)?),
            right: Box::new(simplify(db, *right)?),
            on,
            residual,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(simplify(db, *input)?),
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| simplify(db, p))
                .collect::<Result<_>>()?,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(simplify(db, *input)?),
            group_by,
            aggs,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(simplify(db, *input)?),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(simplify(db, *input)?),
            n,
        },
    };

    Ok(match plan {
        // Always-false elimination / no-op selection removal. Beyond the
        // literal `false`, `sema`'s constraint analysis proves
        // conjunctive contradictions (`x = 1 AND x = 2`, empty ranges)
        // empty — those selections fold to an empty relation and the
        // emptiness propagates upward like any other.
        Plan::Selection { input, predicate } => {
            if matches!(predicate, Expr::Lit(Value::Bool(false)))
                || crate::sema::expr_contradictory(&predicate)
            {
                empty_of(input.arity(db)?)
            } else if is_true(&predicate) || is_empty_values(&input) {
                *input
            } else {
                Plan::Selection { input, predicate }
            }
        }
        Plan::Projection { input, exprs } => {
            if is_empty_values(&input) {
                empty_of(exprs.len())
            } else {
                Plan::Projection { input, exprs }
            }
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => {
            if is_empty_values(&left) || is_empty_values(&right) {
                empty_of(left.arity(db)? + right.arity(db)?)
            } else if is_unit_values(&left) && on.is_empty() {
                // unit ⨯ R = R (join chains start from the 0-column unit
                // relation); a residual becomes a plain selection since the
                // unit side contributes no columns.
                match residual {
                    Some(pred) => Plan::Selection {
                        input: right,
                        predicate: pred,
                    },
                    None => *right,
                }
            } else if is_unit_values(&right) && on.is_empty() {
                match residual {
                    Some(pred) => Plan::Selection {
                        input: left,
                        predicate: pred,
                    },
                    None => *left,
                }
            } else {
                Plan::Join {
                    left,
                    right,
                    on,
                    residual,
                }
            }
        }
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => {
            // An empty left side *is* the result; an empty right side (with
            // no residual) filters nothing, so the left side passes through.
            if is_empty_values(&left) || (is_empty_values(&right) && residual.is_none()) {
                *left
            } else {
                Plan::AntiJoin {
                    left,
                    right,
                    on,
                    residual,
                }
            }
        }
        Plan::Distinct { input } => match *input {
            // δδ = δ
            inner @ Plan::Distinct { .. } => inner,
            inner if is_empty_values(&inner) => inner,
            inner => Plan::Distinct {
                input: Box::new(inner),
            },
        },
        Plan::Union { inputs } => {
            // Flatten nested unions, drop empty branches, collapse
            // singletons.
            let mut flat: Vec<Plan> = Vec::with_capacity(inputs.len());
            let mut arity = None;
            for p in inputs {
                if arity.is_none() {
                    arity = Some(p.arity(db)?);
                }
                match p {
                    Plan::Union { inputs: nested } => {
                        flat.extend(nested.into_iter().filter(|q| !is_empty_values(q)))
                    }
                    q if is_empty_values(&q) => {}
                    q => flat.push(q),
                }
            }
            match flat.len() {
                0 => empty_of(arity.unwrap_or(0)),
                1 => flat.pop().expect("len checked"),
                _ => Plan::Union { inputs: flat },
            }
        }
        Plan::Sort { input, by } => {
            if is_empty_values(&input) {
                *input
            } else {
                Plan::Sort { input, by }
            }
        }
        Plan::Limit { input, n } => {
            if n == 0 {
                empty_of(input.arity(db)?)
            } else if is_empty_values(&input) {
                *input
            } else {
                Plan::Limit { input, n }
            }
        }
        other => other,
    })
}

// ---------------------------------------------------------------------------
// Projection fusion and column pruning
// ---------------------------------------------------------------------------

/// Compose adjacent projections (`π_f ∘ π_g = π_{f∘g}`) and evaluate
/// projections of literal relations eagerly.
pub fn fuse_projections(plan: Plan) -> Plan {
    let rebuilt = match plan {
        Plan::Scan { .. } | Plan::Values { .. } => plan,
        Plan::Selection { input, predicate } => Plan::Selection {
            input: Box::new(fuse_projections(*input)),
            predicate,
        },
        Plan::Projection { input, exprs } => Plan::Projection {
            input: Box::new(fuse_projections(*input)),
            exprs,
        },
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => Plan::Join {
            left: Box::new(fuse_projections(*left)),
            right: Box::new(fuse_projections(*right)),
            on,
            residual,
        },
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => Plan::AntiJoin {
            left: Box::new(fuse_projections(*left)),
            right: Box::new(fuse_projections(*right)),
            on,
            residual,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(fuse_projections(*input)),
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs.into_iter().map(fuse_projections).collect(),
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(fuse_projections(*input)),
            group_by,
            aggs,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(fuse_projections(*input)),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(fuse_projections(*input)),
            n,
        },
    };
    match rebuilt {
        Plan::Projection { input, exprs } => match *input {
            Plan::Projection {
                input: inner,
                exprs: inner_exprs,
            } => Plan::Projection {
                input: inner,
                exprs: exprs
                    .iter()
                    .map(|e| fold_expr(&subst_expr(e, &inner_exprs)))
                    .collect(),
            },
            Plan::Values { arity, rows } => {
                // Evaluate eagerly when every expression evaluates cleanly.
                let mut out = Vec::with_capacity(rows.len());
                for r in &rows {
                    let vals: std::result::Result<Vec<Value>, _> =
                        exprs.iter().map(|e| e.eval(r)).collect();
                    match vals {
                        Ok(vals) => out.push(Row::new(vals)),
                        Err(_) => {
                            return Plan::Projection {
                                input: Box::new(Plan::Values { arity, rows }),
                                exprs,
                            }
                        }
                    }
                }
                Plan::Values {
                    arity: exprs.len(),
                    rows: out,
                }
            }
            inner => Plan::Projection {
                input: Box::new(inner),
                exprs,
            },
        },
        other => other,
    }
}

/// Drop columns nothing above reads: for every projection, narrow the
/// subtree underneath to the columns the projection (and the operators
/// inside the subtree) actually use.
pub fn prune_columns(db: &Database, plan: Plan) -> Result<Plan> {
    let rebuilt = match plan {
        Plan::Scan { .. } | Plan::Values { .. } => plan,
        Plan::Selection { input, predicate } => Plan::Selection {
            input: Box::new(prune_columns(db, *input)?),
            predicate,
        },
        Plan::Projection { input, exprs } => {
            let input = prune_columns(db, *input)?;
            let input_arity = input.arity(db)?;
            let mut needed = BTreeSet::new();
            for e in &exprs {
                needed.extend(cols_of(e));
            }
            if needed.len() < input_arity {
                let (pruned, kept) = prune(db, input, &needed)?;
                let pos = |old: usize| -> usize {
                    kept.iter()
                        .position(|&k| k == old)
                        .expect("needed col kept")
                };
                let exprs = exprs.iter().map(|e| e.remap_cols(&pos)).collect();
                Plan::Projection {
                    input: Box::new(pruned),
                    exprs,
                }
            } else {
                Plan::Projection {
                    input: Box::new(input),
                    exprs,
                }
            }
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => Plan::Join {
            left: Box::new(prune_columns(db, *left)?),
            right: Box::new(prune_columns(db, *right)?),
            on,
            residual,
        },
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => Plan::AntiJoin {
            left: Box::new(prune_columns(db, *left)?),
            right: Box::new(prune_columns(db, *right)?),
            on,
            residual,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(prune_columns(db, *input)?),
        },
        Plan::Union { inputs } => Plan::Union {
            inputs: inputs
                .into_iter()
                .map(|p| prune_columns(db, p))
                .collect::<Result<_>>()?,
        },
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(prune_columns(db, *input)?),
            group_by,
            aggs,
        },
        Plan::Sort { input, by } => Plan::Sort {
            input: Box::new(prune_columns(db, *input)?),
            by,
        },
        Plan::Limit { input, n } => Plan::Limit {
            input: Box::new(prune_columns(db, *input)?),
            n,
        },
    };
    Ok(rebuilt)
}

/// Narrow `plan` to (at least) the columns in `needed`. Returns the new
/// plan and the ascending list of *original* column indices it retains.
/// Nodes that cannot be narrowed safely (scans — narrowing would hide the
/// executor's index access paths — plus distinct/aggregate/anti-join/sort
/// barriers) are returned unchanged with the identity retention list.
fn prune(db: &Database, plan: Plan, needed: &BTreeSet<usize>) -> Result<(Plan, Vec<usize>)> {
    let identity = |p: Plan| -> Result<(Plan, Vec<usize>)> {
        let keep = (0..p.arity(db)?).collect();
        Ok((p, keep))
    };
    match plan {
        Plan::Values { arity, rows } => {
            let keep: Vec<usize> = needed.iter().copied().filter(|&c| c < arity).collect();
            if keep.len() == arity {
                return identity(Plan::Values { arity, rows });
            }
            let rows = rows
                .iter()
                .map(|r| r.project(&keep))
                .collect::<Result<Vec<_>>>()?;
            Ok((
                Plan::Values {
                    arity: keep.len(),
                    rows,
                },
                keep,
            ))
        }
        Plan::Projection { input, exprs } => {
            let keep: Vec<usize> = needed
                .iter()
                .copied()
                .filter(|&c| c < exprs.len())
                .collect();
            if keep.len() == exprs.len() {
                return identity(Plan::Projection { input, exprs });
            }
            let kept_exprs: Vec<Expr> = keep.iter().map(|&c| exprs[c].clone()).collect();
            let mut inner_needed = BTreeSet::new();
            for e in &kept_exprs {
                inner_needed.extend(cols_of(e));
            }
            let (inner, inner_keep) = prune(db, *input, &inner_needed)?;
            let pos = |old: usize| -> usize {
                inner_keep
                    .iter()
                    .position(|&k| k == old)
                    .expect("needed col kept")
            };
            let kept_exprs = kept_exprs.iter().map(|e| e.remap_cols(&pos)).collect();
            Ok((
                Plan::Projection {
                    input: Box::new(inner),
                    exprs: kept_exprs,
                },
                keep,
            ))
        }
        Plan::Selection { input, predicate } => {
            let mut inner_needed = needed.clone();
            inner_needed.extend(cols_of(&predicate));
            let (inner, keep) = prune(db, *input, &inner_needed)?;
            let pos = |old: usize| -> usize {
                keep.iter()
                    .position(|&k| k == old)
                    .expect("needed col kept")
            };
            let predicate = predicate.remap_cols(&pos);
            Ok((
                Plan::Selection {
                    input: Box::new(inner),
                    predicate,
                },
                keep,
            ))
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let la = left.arity(db)?;
            let mut needed_left: BTreeSet<usize> =
                needed.iter().copied().filter(|&c| c < la).collect();
            let mut needed_right: BTreeSet<usize> = needed
                .iter()
                .filter(|&&c| c >= la)
                .map(|&c| c - la)
                .collect();
            for &(lc, rc) in &on {
                needed_left.insert(lc);
                needed_right.insert(rc);
            }
            if let Some(r) = &residual {
                for c in cols_of(r) {
                    if c < la {
                        needed_left.insert(c);
                    } else {
                        needed_right.insert(c - la);
                    }
                }
            }
            let (lp, lkeep) = prune(db, *left, &needed_left)?;
            let (rp, rkeep) = prune(db, *right, &needed_right)?;
            let new_la = lkeep.len();
            let lpos = |old: usize| -> usize {
                lkeep
                    .iter()
                    .position(|&k| k == old)
                    .expect("needed col kept")
            };
            let rpos = |old: usize| -> usize {
                rkeep
                    .iter()
                    .position(|&k| k == old)
                    .expect("needed col kept")
            };
            let on = on.iter().map(|&(lc, rc)| (lpos(lc), rpos(rc))).collect();
            let residual = residual.as_ref().map(|r| {
                r.remap_cols(&|c| {
                    if c < la {
                        lpos(c)
                    } else {
                        new_la + rpos(c - la)
                    }
                })
            });
            let mut keep = lkeep;
            keep.extend(rkeep.into_iter().map(|c| c + la));
            Ok((
                Plan::Join {
                    left: Box::new(lp),
                    right: Box::new(rp),
                    on,
                    residual,
                },
                keep,
            ))
        }
        Plan::Union { inputs } => {
            // All branches share an arity (validated before optimization).
            let arity = match inputs.first() {
                Some(p) => p.arity(db)?,
                None => 0,
            };
            let keep: Vec<usize> = needed.iter().copied().filter(|&c| c < arity).collect();
            if keep.len() == arity {
                return identity(Plan::Union { inputs });
            }
            let mut branches = Vec::with_capacity(inputs.len());
            for p in inputs {
                let (bp, bkeep) = prune(db, p, needed)?;
                if bkeep == keep {
                    branches.push(bp);
                } else {
                    // The branch retained extra columns: align it with an
                    // explicit projection.
                    let pos = |old: usize| -> usize {
                        bkeep
                            .iter()
                            .position(|&k| k == old)
                            .expect("needed col kept")
                    };
                    branches.push(Plan::Projection {
                        input: Box::new(bp),
                        exprs: keep.iter().map(|&c| Expr::Col(pos(c))).collect(),
                    });
                }
            }
            Ok((Plan::Union { inputs: branches }, keep))
        }
        // Barriers and scans: left untouched.
        other => identity(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::expr::CmpOp;
    use crate::row;
    use crate::schema::TableSchema;

    fn db() -> Database {
        let mut db = Database::new();
        let users = db
            .create_table(TableSchema::with_key("Users", &["uid", "name"]))
            .unwrap();
        users.insert(row![1, "Alice"]).unwrap();
        users.insert(row![2, "Bob"]).unwrap();
        users.insert(row![3, "Carol"]).unwrap();
        let e = db
            .create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
            .unwrap();
        e.insert(row![0, 1, 1]).unwrap();
        e.insert(row![0, 2, 2]).unwrap();
        e.insert(row![1, 2, 2]).unwrap();
        e.insert(row![2, 1, 3]).unwrap();
        db
    }

    fn assert_equivalent(db: &Database, original: &Plan, rewritten: &Plan) {
        let mut a = execute(db, original).unwrap();
        let mut b = execute(db, rewritten).unwrap();
        a.sort();
        b.sort();
        assert_eq!(
            a, b,
            "rewrite changed semantics\n  orig: {original:?}\n  new: {rewritten:?}"
        );
    }

    #[test]
    fn constant_folding_collapses_literals() {
        let e = Expr::and(vec![
            Expr::cmp(CmpOp::Eq, Expr::lit(1), Expr::lit(1)),
            Expr::col_eq_lit(0, 2),
            Expr::Or(vec![]),
        ]);
        // true AND (#0 = 2) AND false => false
        assert_eq!(fold_expr(&e), Expr::Lit(Value::Bool(false)));

        let e = Expr::and(vec![
            Expr::cmp(CmpOp::Lt, Expr::lit(1), Expr::lit(2)),
            Expr::col_eq_lit(0, 2),
        ]);
        assert_eq!(fold_expr(&e), Expr::col_eq_lit(0, 2));

        let e = Expr::Not(Box::new(Expr::Not(Box::new(Expr::col_eq_lit(1, "x")))));
        assert_eq!(fold_expr(&e), Expr::col_eq_lit(1, "x"));
    }

    #[test]
    fn selection_pushes_through_join() {
        let db = db();
        let original = Plan::scan("Users")
            .join(Plan::scan("E"), vec![(0, 1)])
            .select(Expr::and(vec![
                Expr::col_eq_lit(1, "Bob"),
                Expr::col_eq_lit(2, 0i64),
            ]));
        let pushed = push_selections(&db, original.clone()).unwrap();
        // Both conjuncts moved below the join.
        if let Plan::Join {
            left,
            right,
            residual,
            ..
        } = &pushed
        {
            assert!(residual.is_none());
            assert!(matches!(left.as_ref(), Plan::Selection { .. }));
            assert!(matches!(right.as_ref(), Plan::Selection { .. }));
        } else {
            panic!("expected a join at the top, got {pushed:?}");
        }
        assert_equivalent(&db, &original, &pushed);
    }

    #[test]
    fn spanning_equality_becomes_join_key() {
        let db = db();
        let original = Plan::scan("Users")
            .join(Plan::scan("E"), vec![])
            .select(Expr::col_eq_col(0, 3));
        let pushed = push_selections(&db, original.clone()).unwrap();
        if let Plan::Join { on, residual, .. } = &pushed {
            assert_eq!(on, &vec![(0, 1)]);
            assert!(residual.is_none());
        } else {
            panic!("expected a join, got {pushed:?}");
        }
        assert_equivalent(&db, &original, &pushed);
    }

    #[test]
    fn selection_distributes_over_union_and_fuses() {
        let db = db();
        let original = Plan::Union {
            inputs: vec![
                Plan::scan("E"),
                Plan::scan("E").select(Expr::col_eq_lit(0, 0)),
            ],
        }
        .select(Expr::col_eq_lit(1, 2))
        .select(Expr::col_eq_lit(2, 2));
        let pushed = push_selections(&db, original.clone()).unwrap();
        if let Plan::Union { inputs } = &pushed {
            for branch in inputs {
                // Every branch is a single fused selection over the scan.
                let Plan::Selection { input, predicate } = branch else {
                    panic!("expected selection, got {branch:?}");
                };
                assert!(matches!(input.as_ref(), Plan::Scan { .. }));
                assert!(matches!(predicate, Expr::And(_)));
            }
        } else {
            panic!("expected union, got {pushed:?}");
        }
        assert_equivalent(&db, &original, &pushed);
    }

    #[test]
    fn selection_pushes_below_projection_by_substitution() {
        let db = db();
        let original = Plan::scan("Users")
            .project(vec![Expr::Col(1), Expr::Col(0)])
            .select(Expr::col_eq_lit(0, "Bob"));
        let pushed = push_selections(&db, original.clone()).unwrap();
        if let Plan::Projection { input, .. } = &pushed {
            let Plan::Selection { predicate, .. } = input.as_ref() else {
                panic!("selection did not sink below projection: {pushed:?}");
            };
            assert_eq!(predicate, &Expr::col_eq_lit(1, "Bob"));
        } else {
            panic!("expected projection on top, got {pushed:?}");
        }
        assert_equivalent(&db, &original, &pushed);
    }

    #[test]
    fn selection_filters_literal_relations_eagerly() {
        let db = db();
        let original = Plan::Values {
            arity: 2,
            rows: vec![row![1, "a"], row![2, "b"], row![1, "c"]],
        }
        .select(Expr::col_eq_lit(0, 1));
        let pushed = push_selections(&db, original.clone()).unwrap();
        assert_eq!(
            pushed,
            Plan::Values {
                arity: 2,
                rows: vec![row![1, "a"], row![1, "c"]]
            }
        );
    }

    #[test]
    fn always_false_selection_becomes_empty() {
        let db = db();
        let original = Plan::scan("E").select(Expr::Lit(Value::Bool(false)));
        let simplified = simplify(&db, fold_plan(original.clone())).unwrap();
        assert_eq!(
            simplified,
            Plan::Values {
                arity: 3,
                rows: vec![]
            }
        );
        assert_equivalent(&db, &original, &simplified);
    }

    #[test]
    fn empty_inputs_propagate() {
        let db = db();
        let empty = Plan::Values {
            arity: 3,
            rows: vec![],
        };
        let join = Plan::scan("Users").join(empty.clone(), vec![(0, 1)]);
        let s = simplify(&db, join).unwrap();
        assert_eq!(
            s,
            Plan::Values {
                arity: 5,
                rows: vec![]
            }
        );

        // Anti-join against a provably empty right side is the left side.
        let aj = Plan::scan("Users").anti_join(empty, vec![(0, 1)]);
        let s = simplify(&db, aj).unwrap();
        assert_eq!(s, Plan::scan("Users"));
    }

    #[test]
    fn singleton_union_collapses_and_nested_unions_flatten() {
        let db = db();
        let u = Plan::Union {
            inputs: vec![
                Plan::Union {
                    inputs: vec![
                        Plan::scan("E"),
                        Plan::Values {
                            arity: 3,
                            rows: vec![],
                        },
                    ],
                },
                Plan::Values {
                    arity: 3,
                    rows: vec![],
                },
            ],
        };
        let s = simplify(&db, u).unwrap();
        assert_eq!(s, Plan::scan("E"));
    }

    #[test]
    fn non_boolean_predicates_stay_put() {
        // A bare-column predicate over an empty join: the unoptimized plan
        // never evaluates it (no rows reach the selection), so pushdown
        // must not move it somewhere it would see rows and raise a
        // TypeError.
        let db = db();
        let empty = Plan::Values {
            arity: 3,
            rows: vec![],
        };
        let original = Plan::scan("Users").join(empty, vec![]).select(Expr::Col(0));
        assert_eq!(execute(&db, &original).unwrap(), vec![]);
        let optimized = crate::opt::optimize(&db, original.clone()).unwrap();
        assert_eq!(
            execute(&db, &optimized).unwrap(),
            vec![],
            "optimizer moved a fallible predicate: {optimized:?}"
        );
        // Boolean-shaped conjuncts still sink while the fallible one stays.
        let mixed = Plan::scan("Users")
            .join(Plan::scan("E"), vec![(0, 1)])
            .select(Expr::and(vec![Expr::col_eq_lit(1, "Bob"), Expr::Col(0)]));
        let pushed = push_selections(&db, mixed).unwrap();
        let Plan::Selection { predicate, input } = &pushed else {
            panic!("fallible conjunct must stay on top: {pushed:?}");
        };
        assert_eq!(predicate, &Expr::Col(0));
        assert!(matches!(input.as_ref(), Plan::Join { .. }));
    }

    #[test]
    fn unit_cross_join_is_identity() {
        let db = db();
        let j = Plan::unit().join(Plan::scan("E"), vec![]);
        assert_eq!(simplify(&db, j).unwrap(), Plan::scan("E"));
        let j = Plan::scan("E").join(Plan::unit(), vec![]);
        assert_eq!(simplify(&db, j).unwrap(), Plan::scan("E"));
        // With a residual the unit join becomes a plain selection.
        let j = Plan::unit().join_where(Plan::scan("E"), vec![], Expr::col_eq_lit(0, 0));
        let s = simplify(&db, j.clone()).unwrap();
        assert_eq!(s, Plan::scan("E").select(Expr::col_eq_lit(0, 0)));
        assert_equivalent(&db, &j, &s);
    }

    #[test]
    fn double_distinct_collapses() {
        let db = db();
        let d = Plan::scan("E").distinct().distinct();
        let s = simplify(&db, d).unwrap();
        assert_eq!(s, Plan::scan("E").distinct());
    }

    #[test]
    fn adjacent_projections_fuse() {
        let db = db();
        let original = Plan::scan("E")
            .project(vec![Expr::Col(2), Expr::Col(1), Expr::Col(0)])
            .project(vec![Expr::Col(2), Expr::Col(0)]);
        let fused = fuse_projections(original.clone());
        if let Plan::Projection { input, exprs } = &fused {
            assert!(matches!(input.as_ref(), Plan::Scan { .. }));
            assert_eq!(exprs, &vec![Expr::Col(0), Expr::Col(2)]);
        } else {
            panic!("expected fused projection, got {fused:?}");
        }
        assert_equivalent(&db, &original, &fused);
    }

    #[test]
    fn projection_of_values_evaluates() {
        let fused = fuse_projections(
            Plan::Values {
                arity: 2,
                rows: vec![row![1, "a"], row![2, "b"]],
            }
            .project(vec![Expr::Col(1)]),
        );
        assert_eq!(
            fused,
            Plan::Values {
                arity: 1,
                rows: vec![row!["a"], row!["b"]]
            }
        );
    }

    #[test]
    fn pruning_narrows_values_under_joins() {
        let db = db();
        // T has a wide literal relation; only column 0 feeds the join and
        // only Users.name survives the projection.
        let t = Plan::Values {
            arity: 4,
            rows: vec![row![1, "x", "pad1", 10], row![2, "y", "pad2", 20]],
        };
        let original = t.join(Plan::scan("Users"), vec![(0, 0)]).project_cols(&[5]);
        let pruned = prune_columns(&db, original.clone()).unwrap();
        // The literal relation inside must have shrunk to one column.
        fn find_values_arity(p: &Plan) -> Option<usize> {
            match p {
                Plan::Values { arity, .. } => Some(*arity),
                Plan::Projection { input, .. }
                | Plan::Selection { input, .. }
                | Plan::Distinct { input }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. } => find_values_arity(input),
                Plan::Join { left, right, .. } | Plan::AntiJoin { left, right, .. } => {
                    find_values_arity(left).or_else(|| find_values_arity(right))
                }
                Plan::Union { inputs } => inputs.iter().find_map(find_values_arity),
                _ => None,
            }
        }
        assert_eq!(find_values_arity(&pruned), Some(1));
        assert_equivalent(&db, &original, &pruned);
    }

    #[test]
    fn group_key_selection_pushes_through_aggregate() {
        let db = db();
        // γ_{#0; count, max(#2)}(E) filtered on the group key (#0 = 0):
        // the predicate must sink below the aggregate, remapped to the
        // input column the key comes from.
        let agg = Plan::Aggregate {
            input: Box::new(Plan::scan("E")),
            group_by: vec![0],
            aggs: vec![crate::plan::Agg::Count, crate::plan::Agg::Max(2)],
        };
        let original = agg.select(Expr::col_eq_lit(0, 0i64));
        let pushed = push_selections(&db, original.clone()).unwrap();
        let Plan::Aggregate { input, .. } = &pushed else {
            panic!("selection did not sink below the aggregate: {pushed:?}");
        };
        let Plan::Selection { predicate, .. } = input.as_ref() else {
            panic!("expected the pushed selection over the scan: {pushed:?}");
        };
        assert_eq!(predicate, &Expr::col_eq_lit(0, 0i64));
        assert_equivalent(&db, &original, &pushed);

        // Key taken from a non-leading input column: remap must follow
        // `group_by`, not the output position.
        let agg = Plan::Aggregate {
            input: Box::new(Plan::scan("E")),
            group_by: vec![2, 1],
            aggs: vec![crate::plan::Agg::Count],
        };
        let original = agg.select(Expr::col_eq_lit(1, 2i64));
        let pushed = push_selections(&db, original.clone()).unwrap();
        let Plan::Aggregate { input, .. } = &pushed else {
            panic!("expected aggregate on top: {pushed:?}");
        };
        let Plan::Selection { predicate, .. } = input.as_ref() else {
            panic!("expected pushed selection: {pushed:?}");
        };
        assert_eq!(predicate, &Expr::col_eq_lit(1, 2i64));
        assert_equivalent(&db, &original, &pushed);
    }

    #[test]
    fn aggregate_value_selection_stays_above() {
        let db = db();
        let agg = Plan::Aggregate {
            input: Box::new(Plan::scan("E")),
            group_by: vec![0],
            aggs: vec![crate::plan::Agg::Count],
        };
        // #1 is the count output — not a group key; must not move.
        let original = agg.select(Expr::and(vec![
            Expr::col_eq_lit(1, 2i64),
            Expr::col_eq_lit(0, 0i64),
        ]));
        let pushed = push_selections(&db, original.clone()).unwrap();
        let Plan::Selection { predicate, input } = &pushed else {
            panic!("count conjunct must stay above the aggregate: {pushed:?}");
        };
        assert_eq!(predicate, &Expr::col_eq_lit(1, 2i64));
        let Plan::Aggregate { input: below, .. } = input.as_ref() else {
            panic!("expected aggregate under the kept selection: {pushed:?}");
        };
        assert!(matches!(below.as_ref(), Plan::Selection { .. }));
        assert_equivalent(&db, &original, &pushed);
    }

    #[test]
    fn global_aggregate_is_a_hard_barrier() {
        let db = db();
        // A global count emits one row even over an empty input; pushing
        // the (constant-false after folding) filter below would turn
        // "empty result" into "count of zero rows".
        let agg = Plan::Aggregate {
            input: Box::new(Plan::scan("E")),
            group_by: vec![],
            aggs: vec![crate::plan::Agg::Count],
        };
        let original = agg.select(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(0i64)));
        let pushed = push_selections(&db, original.clone()).unwrap();
        assert!(
            matches!(&pushed, Plan::Selection { input, .. }
                if matches!(input.as_ref(), Plan::Aggregate { .. })),
            "global aggregate must stay a barrier: {pushed:?}"
        );
        assert_equivalent(&db, &original, &pushed);
        assert_eq!(execute(&db, &pushed).unwrap().len(), 0);
    }

    #[test]
    fn pruning_keeps_scans_intact() {
        let db = db();
        let original = Plan::scan("E")
            .join(Plan::scan("Users"), vec![(1, 0)])
            .project_cols(&[4]);
        let pruned = prune_columns(&db, original.clone()).unwrap();
        // Both scans survive unwrapped (so the executor's index paths keep
        // applying); the plan is unchanged.
        assert_eq!(pruned, original);
    }
}
