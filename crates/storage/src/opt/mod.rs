//! # The query optimizer
//!
//! A cost-based optimizer sitting between plan construction (hand-built
//! plans, or the Datalog compiler in [`crate::datalog`]) and execution
//! ([`crate::exec`]). The paper's prototype leans on SQL Server's
//! optimizer for the plans Algorithm 1 emits; this module is the
//! from-scratch counterpart.
//!
//! The pipeline:
//!
//! 1. **constant folding** — literal comparisons collapse, AND/OR
//!    normalize ([`rules::fold_plan`]);
//! 2. **selection pushdown & filter fusion** — predicates sink toward
//!    leaves, spanning equalities become hash-join keys
//!    ([`rules::push_selections`]);
//! 3. **simplification** — always-false selections, empty inputs,
//!    singleton unions ([`rules::simplify`]);
//! 4. **join reordering** — greedy cardinality ordering driven by the
//!    [`stats::StatsCatalog`], index-aware ([`join_order::reorder_joins`]);
//! 5. **projection fusion & column pruning** ([`rules::fuse_projections`],
//!    [`rules::prune_columns`]);
//!
//! then pushdown and simplification run once more to clean up what the
//! reorder exposed. Every rewrite preserves the output multiset, so
//! optimized and unoptimized execution agree row-for-row (the
//! `optimizer_equivalence` differential suite asserts exactly this).
//!
//! [`explain::render`] produces the deterministic plan tree used by
//! BeliefSQL's `EXPLAIN`.
//!
//! One pass operates a level above plans: [`magic::rewrite`] makes whole
//! Datalog programs demand-driven (adornment, sideways information
//! passing, magic seed relations) before their rules are compiled, so
//! bound queries derive only the tuples they can reach.

pub mod explain;
pub mod join_order;
pub mod magic;
pub mod rules;
pub mod stats;

pub use explain::{render, render_analyze, render_with_budget, render_with_snapshot};
pub use stats::{combine, estimate, selectivity, Histogram, RelEstimate, StatsCatalog, TableStats};

use crate::catalog::Database;
use crate::error::Result;
use crate::plan::Plan;

/// Which rewrites to run. All on by default; the flags exist for the
/// differential tests and the optimizer-ablation benches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptimizerOptions {
    pub fold: bool,
    pub pushdown: bool,
    pub simplify: bool,
    pub reorder_joins: bool,
    pub prune: bool,
}

impl Default for OptimizerOptions {
    fn default() -> Self {
        OptimizerOptions {
            fold: true,
            pushdown: true,
            simplify: true,
            reorder_joins: true,
            prune: true,
        }
    }
}

impl OptimizerOptions {
    /// Everything off — `optimize_with` becomes the identity.
    pub fn disabled() -> Self {
        OptimizerOptions {
            fold: false,
            pushdown: false,
            simplify: false,
            reorder_joins: false,
            prune: false,
        }
    }
}

/// Optimize a plan with the default pipeline.
///
/// Plans are taken by value: the pipeline moves unchanged subtrees (in
/// particular materialized `Values` relations) instead of cloning them,
/// so optimization cost does not scale with intermediate-result sizes.
pub fn optimize(db: &Database, plan: Plan) -> Result<Plan> {
    optimize_with(db, plan, &OptimizerOptions::default())
}

/// Optimize a plan with an explicit statistics snapshot (callers issuing
/// many queries against an unchanged database can reuse one snapshot; see
/// [`StatsCatalog::is_stale`] and [`StatsCatalog::refresh`]).
pub fn optimize_with_stats(
    db: &Database,
    catalog: &StatsCatalog,
    plan: Plan,
    opts: &OptimizerOptions,
) -> Result<Plan> {
    // Validate before rewriting: the rules assume a well-formed plan.
    plan.arity(db)?;
    let mut p = plan;
    // With the verifier armed (always under `debug_assertions`, or via
    // `\set verify on` in release), every rewrite pass is followed by a
    // full invariant check — a rule bug surfaces as a `BD10x` violation
    // naming the pass that introduced it, not as a wrong answer
    // downstream. Each call is a single atomic load when disabled.
    if opts.fold {
        p = rules::fold_plan(p);
        crate::sema::verify_plan_if_enabled(db, &p, "fold")?;
    }
    if opts.pushdown {
        p = rules::push_selections(db, p)?;
        crate::sema::verify_plan_if_enabled(db, &p, "pushdown")?;
    }
    if opts.simplify {
        p = rules::simplify(db, p)?;
        crate::sema::verify_plan_if_enabled(db, &p, "simplify")?;
    }
    if opts.reorder_joins {
        p = join_order::reorder_joins(db, catalog, p)?;
        crate::sema::verify_plan_if_enabled(db, &p, "reorder_joins")?;
    }
    if opts.pushdown {
        // The reorder introduces selections for residual predicates; push
        // them toward the new leaf positions.
        p = rules::push_selections(db, p)?;
        crate::sema::verify_plan_if_enabled(db, &p, "pushdown_after_reorder")?;
    }
    if opts.prune {
        p = rules::fuse_projections(p);
        p = rules::prune_columns(db, p)?;
        p = rules::fuse_projections(p);
        crate::sema::verify_plan_if_enabled(db, &p, "prune_columns")?;
    }
    if opts.simplify {
        p = rules::simplify(db, p)?;
        crate::sema::verify_plan_if_enabled(db, &p, "final_simplify")?;
    }
    // The rewritten plan must still validate — a cheap guard against rule
    // bugs corrupting arities.
    p.arity(db)?;
    Ok(p)
}

/// Optimize a plan with explicit options and a fresh statistics snapshot.
pub fn optimize_with(db: &Database, plan: Plan, opts: &OptimizerOptions) -> Result<Plan> {
    let catalog = StatsCatalog::snapshot(db);
    optimize_with_stats(db, &catalog, plan, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::expr::Expr;
    use crate::row;
    use crate::schema::TableSchema;

    fn db() -> Database {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid", "s"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..300i64 {
            v.insert(row![i % 15, i % 60, if i % 3 == 0 { "+" } else { "-" }])
                .unwrap();
        }
        let r = db
            .create_table(TableSchema::with_key("R", &["tid", "val"]))
            .unwrap();
        for i in 0..60i64 {
            r.insert(row![i, format!("v{i}").as_str()]).unwrap();
        }
        let probe = db
            .create_table(TableSchema::keyless("Probe", &["w"]))
            .unwrap();
        probe.insert(row![3]).unwrap();
        probe.insert(row![14]).unwrap();
        db
    }

    #[test]
    fn full_pipeline_preserves_semantics() {
        let db = db();
        let plan = Plan::scan("V")
            .join(Plan::scan("R"), vec![(1, 0)])
            .join(Plan::scan("Probe"), vec![(0, 0)])
            .select(Expr::and(vec![
                Expr::col_eq_lit(2, "+"),
                Expr::cmp(crate::expr::CmpOp::Ne, Expr::Col(4), Expr::lit("v0")),
            ]))
            .project_cols(&[0, 1, 4])
            .distinct();
        let optimized = optimize(&db, plan.clone()).unwrap();
        let mut a = execute(&db, &plan).unwrap();
        let mut b = execute(&db, &optimized).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn disabled_options_are_identity() {
        let db = db();
        let plan = Plan::scan("V")
            .join(Plan::scan("Probe"), vec![(0, 0)])
            .select(Expr::col_eq_lit(2, "+"));
        let same = optimize_with(&db, plan.clone(), &OptimizerOptions::disabled()).unwrap();
        assert_eq!(same, plan);
    }

    #[test]
    fn optimize_rejects_malformed_plans() {
        let db = db();
        let bad = Plan::scan("V").select(Expr::col_eq_lit(9, 1));
        assert!(optimize(&db, bad).is_err());
        assert!(optimize(&db, Plan::scan("Ghost")).is_err());
    }

    #[test]
    fn optimized_plans_validate() {
        let db = db();
        let plan = Plan::scan("V")
            .join(Plan::scan("R"), vec![(1, 0)])
            .select(Expr::col_eq_lit(0, 3i64))
            .project_cols(&[3, 4]);
        let optimized = optimize(&db, plan.clone()).unwrap();
        assert!(optimized.arity(&db).is_ok());
        assert_eq!(optimized.arity(&db).unwrap(), 2);
    }

    #[test]
    fn optimization_is_deterministic() {
        let db = db();
        let plan = Plan::scan("V")
            .join(Plan::scan("R"), vec![(1, 0)])
            .join(Plan::scan("Probe"), vec![(0, 0)]);
        assert_eq!(
            optimize(&db, plan.clone()).unwrap(),
            optimize(&db, plan).unwrap()
        );
    }
}
