//! Columnar chunk storage: typed column vectors with validity bitmaps
//! and dictionary-encoded strings.
//!
//! A [`ColumnSet`] is the column-per-vector transpose of a row batch:
//! integers and booleans live in unboxed vectors (`Vec<i64>` /
//! `Vec<bool>`), strings are interned into a **sorted dictionary** with
//! one `u32` code per cell, and NULLs are carried out-of-band in a
//! validity [`Bitmap`] (bit set = value present). A column whose cells
//! are all NULL collapses to [`Column::Null`]; a column mixing value
//! types keeps boxed [`Value`]s ([`Column::Mixed`]) so the executor's
//! cross-type total order (`Null < Bool < Int < Str`) is never
//! approximated.
//!
//! The sorted dictionary is what makes string kernels branch-free:
//! `= lit` becomes one binary search plus a code-equality loop, and
//! `< lit` / `<= lit` become a `partition_point` bound plus a
//! code-compare loop — no per-row string comparison, no `Value`
//! materialization.
//!
//! Tables cache one `ColumnSet` per mutation version
//! ([`crate::table::Table::columnar`]); the executor's `Scan` slices it
//! into chunks by `(start, len)` windows without cloning a single row,
//! and the spill layer reuses the same classification for its columnar
//! block encoding.

use crate::row::Row;
use crate::value::Value;
use std::sync::Arc;

/// A fixed-length bitmap (one bit per row position). Used as a validity
/// mask: bit set means the cell holds a value, cleared means NULL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap; grow it with [`Bitmap::push`].
    pub fn new() -> Bitmap {
        Bitmap {
            words: Vec::new(),
            len: 0,
        }
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// The bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pack into bytes, LSB-first within each byte (the spill-block
    /// encoding).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.len.div_ceil(8)];
        for i in 0..self.len {
            if self.get(i) {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }

    /// Inverse of [`Bitmap::to_bytes`]. `bytes` must hold at least
    /// `ceil(len / 8)` bytes.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Bitmap {
        let mut b = Bitmap::new();
        for i in 0..len {
            b.push(bytes[i / 8] >> (i % 8) & 1 != 0);
        }
        b
    }
}

impl Default for Bitmap {
    fn default() -> Self {
        Bitmap::new()
    }
}

/// One typed column vector. `validity: None` means every cell is valid
/// (the common case pays no mask check); `Some(bitmap)` marks NULL cells
/// with a cleared bit, and the corresponding slot in the data vector is
/// a don't-care placeholder (`0`, `false`, code `0`).
#[derive(Debug, Clone)]
pub enum Column {
    /// Unboxed 64-bit integers.
    Int {
        vals: Vec<i64>,
        validity: Option<Bitmap>,
    },
    /// Unboxed booleans.
    Bool {
        vals: Vec<bool>,
        validity: Option<Bitmap>,
    },
    /// Dictionary-encoded strings: `dict` is sorted ascending and
    /// deduplicated, `codes[i]` indexes into it. Code order therefore
    /// *is* string order, which the `<`/`<=` kernels exploit.
    Str {
        dict: Vec<Arc<str>>,
        codes: Vec<u32>,
        validity: Option<Bitmap>,
    },
    /// Every cell NULL (no data vector at all).
    Null(usize),
    /// A column mixing value types: boxed values, cell per cell.
    Mixed(Vec<Value>),
}

impl Column {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Int { vals, .. } => vals.len(),
            Column::Bool { vals, .. } => vals.len(),
            Column::Str { codes, .. } => codes.len(),
            Column::Null(n) => *n,
            Column::Mixed(vals) => vals.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize cell `i` as a boxed [`Value`].
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            Column::Int { vals, validity } => match validity {
                Some(v) if !v.get(i) => Value::Null,
                _ => Value::Int(vals[i]),
            },
            Column::Bool { vals, validity } => match validity {
                Some(v) if !v.get(i) => Value::Null,
                _ => Value::Bool(vals[i]),
            },
            Column::Str {
                dict,
                codes,
                validity,
            } => match validity {
                Some(v) if !v.get(i) => Value::Null,
                _ => Value::Str(Arc::clone(&dict[codes[i] as usize])),
            },
            Column::Null(_) => Value::Null,
            Column::Mixed(vals) => vals[i].clone(),
        }
    }
}

/// The dictionary code of exactly `s`, if present.
pub fn dict_code(dict: &[Arc<str>], s: &str) -> Option<u32> {
    dict.binary_search_by(|d| d.as_ref().cmp(s))
        .ok()
        .map(|i| i as u32)
}

/// Number of dictionary entries strictly below `s` — codes `< bound`
/// are exactly the strings `< s`.
pub fn dict_lower_bound(dict: &[Arc<str>], s: &str) -> u32 {
    dict.partition_point(|d| d.as_ref() < s) as u32
}

/// Number of dictionary entries at or below `s` — codes `< bound` are
/// exactly the strings `<= s`.
pub fn dict_upper_bound(dict: &[Arc<str>], s: &str) -> u32 {
    dict.partition_point(|d| d.as_ref() <= s) as u32
}

/// A columnar batch: one [`Column`] per schema position, all the same
/// length. Built once per table version and shared by `Arc`, so scan
/// chunks are `(Arc, start, len)` windows — zero row clones.
#[derive(Debug, Clone)]
pub struct ColumnSet {
    cols: Vec<Column>,
    len: usize,
}

impl ColumnSet {
    /// Transpose `rows` (all of arity `arity`) into typed columns. Each
    /// column is classified in one pass: all-NULL collapses, a single
    /// non-null type gets an unboxed vector (with a validity bitmap only
    /// if NULLs occur), mixed types keep boxed values.
    pub fn from_rows(arity: usize, rows: &[&Row]) -> ColumnSet {
        let n = rows.len();
        let cols = (0..arity).map(|c| build_column(rows, c)).collect();
        ColumnSet { cols, len: n }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    pub fn col(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// Materialize the cell at column `c`, row `i`.
    pub fn value_at(&self, c: usize, i: usize) -> Value {
        self.cols[c].value_at(i)
    }

    /// Materialize row `i` (the row-boundary adapter: join build keys,
    /// sort inputs, the row codec).
    pub fn row_at(&self, i: usize) -> Row {
        Row::new(self.cols.iter().map(|c| c.value_at(i)))
    }
}

fn build_column(rows: &[&Row], c: usize) -> Column {
    let n = rows.len();
    let (mut nulls, mut ints, mut bools, mut strs) = (0usize, 0usize, 0usize, 0usize);
    for r in rows {
        match &r[c] {
            Value::Null => nulls += 1,
            Value::Int(_) => ints += 1,
            Value::Bool(_) => bools += 1,
            Value::Str(_) => strs += 1,
        }
    }
    if nulls == n {
        return Column::Null(n);
    }
    let validity = |rows: &[&Row]| -> Option<Bitmap> {
        if nulls == 0 {
            return None;
        }
        let mut b = Bitmap::new();
        for r in rows {
            b.push(!matches!(r[c], Value::Null));
        }
        Some(b)
    };
    if ints + nulls == n {
        let vals = rows
            .iter()
            .map(|r| match r[c] {
                Value::Int(x) => x,
                _ => 0,
            })
            .collect();
        return Column::Int {
            vals,
            validity: validity(rows),
        };
    }
    if bools + nulls == n {
        let vals = rows
            .iter()
            .map(|r| match r[c] {
                Value::Bool(x) => x,
                _ => false,
            })
            .collect();
        return Column::Bool {
            vals,
            validity: validity(rows),
        };
    }
    if strs + nulls == n {
        let mut dict: Vec<Arc<str>> = rows
            .iter()
            .filter_map(|r| match &r[c] {
                Value::Str(s) => Some(Arc::clone(s)),
                _ => None,
            })
            .collect();
        dict.sort_unstable_by(|a, b| a.as_ref().cmp(b.as_ref()));
        dict.dedup();
        let codes = rows
            .iter()
            .map(|r| match &r[c] {
                Value::Str(s) => dict_code(&dict, s).expect("string is in its own dict"),
                _ => 0,
            })
            .collect();
        return Column::Str {
            dict,
            codes,
            validity: validity(rows),
        };
    }
    Column::Mixed(rows.iter().map(|r| r[c].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn bitmap_round_trips_through_bytes() {
        let mut b = Bitmap::new();
        for i in 0..77 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 77);
        assert!(b.get(0) && !b.get(1) && b.get(75));
        let back = Bitmap::from_bytes(&b.to_bytes(), 77);
        assert_eq!(back, b);
    }

    #[test]
    fn columns_classify_and_round_trip_values() {
        let rows = [
            row![1, "b", true, Value::Null, Value::Null],
            row![Value::Null, "a", Value::Null, Value::Null, 7],
            row![3, "b", false, Value::Null, "mix"],
        ];
        let refs: Vec<&Row> = rows.iter().collect();
        let set = ColumnSet::from_rows(5, &refs);
        assert_eq!(set.len(), 3);
        assert!(matches!(
            set.col(0),
            Column::Int {
                validity: Some(_),
                ..
            }
        ));
        assert!(matches!(set.col(1), Column::Str { validity: None, .. }));
        assert!(matches!(
            set.col(2),
            Column::Bool {
                validity: Some(_),
                ..
            }
        ));
        assert!(matches!(set.col(3), Column::Null(3)));
        assert!(matches!(set.col(4), Column::Mixed(_)));
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(set.row_at(i), *r, "row {i} must round-trip");
        }
    }

    #[test]
    fn string_dictionary_is_sorted_and_shared() {
        let rows = [row!["pear"], row!["apple"], row!["pear"], row!["fig"]];
        let refs: Vec<&Row> = rows.iter().collect();
        let set = ColumnSet::from_rows(1, &refs);
        let Column::Str { dict, codes, .. } = set.col(0) else {
            panic!("expected a string column");
        };
        let names: Vec<&str> = dict.iter().map(|s| s.as_ref()).collect();
        assert_eq!(names, vec!["apple", "fig", "pear"]);
        assert_eq!(codes, &vec![2, 0, 2, 1]);
        // Sorted codes mean order-preserving bounds.
        assert_eq!(dict_code(dict, "fig"), Some(1));
        assert_eq!(dict_code(dict, "grape"), None);
        assert_eq!(dict_lower_bound(dict, "fig"), 1);
        assert_eq!(dict_upper_bound(dict, "fig"), 2);
        assert_eq!(dict_lower_bound(dict, "zzz"), 3);
        assert_eq!(dict_upper_bound(dict, ""), 0);
    }
}
