//! Table schemas.
//!
//! Following the paper (Sect. 3, "each relation `Ri(atti1, ..., attili)` has
//! a distinguished primary key `atti1`"), the *first column* of a
//! key-enforced table is its primary key. Internal bookkeeping relations
//! (`V`, `E` in the paper's Fig. 5) are multisets and disable key
//! enforcement.

use crate::error::{Result, StorageError};

/// A named column. The engine is dynamically typed, so a column carries no
/// type — only a name used for resolution by the SQL front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
}

impl ColumnDef {
    pub fn new(name: impl Into<String>) -> Self {
        ColumnDef { name: name.into() }
    }
}

/// How a table treats duplicate keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyMode {
    /// First column is a primary key; duplicate inserts are rejected.
    PrimaryKey,
    /// No key; the table is a multiset of rows.
    None,
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    name: String,
    columns: Vec<ColumnDef>,
    key_mode: KeyMode,
}

impl TableSchema {
    /// Create a schema whose first column is the primary key.
    pub fn with_key(name: impl Into<String>, columns: &[&str]) -> Self {
        Self::build(name, columns, KeyMode::PrimaryKey)
    }

    /// Create a keyless (multiset) schema.
    pub fn keyless(name: impl Into<String>, columns: &[&str]) -> Self {
        Self::build(name, columns, KeyMode::None)
    }

    fn build(name: impl Into<String>, columns: &[&str], key_mode: KeyMode) -> Self {
        let name = name.into();
        assert!(
            !columns.is_empty(),
            "table `{name}` must have at least one column"
        );
        TableSchema {
            name,
            columns: columns.iter().map(|c| ColumnDef::new(*c)).collect(),
            key_mode,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    pub fn key_mode(&self) -> KeyMode {
        self.key_mode
    }

    /// Index of the primary key column (always 0 when key-enforced).
    pub fn key_column(&self) -> Option<usize> {
        match self.key_mode {
            KeyMode::PrimaryKey => Some(0),
            KeyMode::None => None,
        }
    }

    /// Resolve a column name to its position.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| StorageError::NoSuchColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// Names of all columns, in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_key_puts_key_first() {
        let s = TableSchema::with_key("Sightings", &["sid", "uid", "species", "date", "location"]);
        assert_eq!(s.name(), "Sightings");
        assert_eq!(s.arity(), 5);
        assert_eq!(s.key_mode(), KeyMode::PrimaryKey);
        assert_eq!(s.key_column(), Some(0));
        assert_eq!(s.columns()[0].name, "sid");
    }

    #[test]
    fn keyless_has_no_key() {
        let s = TableSchema::keyless("V_Sightings", &["wid", "tid", "key", "s", "e"]);
        assert_eq!(s.key_mode(), KeyMode::None);
        assert_eq!(s.key_column(), None);
    }

    #[test]
    fn column_resolution() {
        let s = TableSchema::with_key("Users", &["uid", "name"]);
        assert_eq!(s.column_index("uid").unwrap(), 0);
        assert_eq!(s.column_index("name").unwrap(), 1);
        assert!(matches!(
            s.column_index("email"),
            Err(StorageError::NoSuchColumn { .. })
        ));
        assert_eq!(s.column_names(), vec!["uid", "name"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_schema_panics() {
        let _ = TableSchema::with_key("T", &[]);
    }
}
