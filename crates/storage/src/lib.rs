//! # beliefdb-storage
//!
//! An embedded, in-memory relational engine: the substrate on which
//! `beliefdb-core` materializes the canonical Kripke representation of a
//! belief database.
//!
//! The paper ("Believe It or Not: Adding Belief Annotations to Databases",
//! VLDB 2009) runs its prototype on Microsoft SQL Server 2005; this crate is
//! the from-scratch substitute. It provides exactly the relational machinery
//! Sections 5.1–5.3 of the paper rely on:
//!
//! * **tables** with a distinguished first-column primary key (the paper's
//!   schema convention) or multiset semantics for the internal `V`/`E`
//!   relations, plus secondary hash indexes ("clustered indexes over the
//!   internal keys"),
//! * **logical plans** with selections, projections, equi/theta joins,
//!   anti-joins, distinct, union, and MAX/MIN/COUNT aggregation
//!   (Algorithm 3 needs a max-operator),
//! * a **non-recursive Datalog** layer ([`datalog`]) — the target language of
//!   the paper's query translation (Algorithm 1), including the "nested
//!   disjunctions with negation" required for negative subgoals.
//!
//! ## Quick tour
//!
//! ```
//! use beliefdb_storage::{Database, TableSchema, Plan, Expr, execute, row};
//!
//! let mut db = Database::new();
//! let t = db.create_table(TableSchema::with_key("Users", &["uid", "name"])).unwrap();
//! t.insert(row![1, "Alice"]).unwrap();
//! t.insert(row![2, "Bob"]).unwrap();
//!
//! let plan = Plan::scan("Users").select(Expr::col_eq_lit(1, "Bob")).project_cols(&[0]);
//! assert_eq!(execute(&db, &plan).unwrap(), vec![row![2]]);
//! ```

pub mod catalog;
pub mod column;
pub mod datalog;
pub mod error;
pub mod exec;
pub mod expr;
pub mod index;
pub mod obs;
pub mod opt;
pub mod persist;
pub mod plan;
pub mod row;
pub mod schema;
pub mod sema;
pub mod table;
pub mod value;

pub use catalog::{Database, VirtualTable, SYS_PREFIX};
pub use column::{Bitmap, Column, ColumnSet};
pub use error::{Result, StorageError};
pub use exec::{
    execute, execute_materialized, execute_optimized, execute_rows, spill_points, stream,
    stream_chunks, stream_rows, Chunk, ChunkLayout, ChunkStream, Executor, RowStream, SpillOptions,
    BATCH_SIZE, SPILL_PARTITIONS,
};
pub use expr::{CmpOp, Expr};
pub use index::RowId;
pub use obs::{
    metrics, Metric, MetricsSnapshot, Profile, QueryTrace, Recorder, SlowLog, SpanRecord,
    StatementObs, StatementStats,
};
pub use opt::{optimize, optimize_with, OptimizerOptions, StatsCatalog};
pub use persist::{PersistEngine, PersistOptions, WalStats};
pub use plan::{Agg, Plan, SortKey};
pub use row::{Projector, Row};
pub use schema::{ColumnDef, KeyMode, TableSchema};
pub use sema::{lint_program, set_verify, verify_enabled, verify_plan, Diagnostic, Severity};
pub use table::Table;
pub use value::Value;
