//! Heap tables with primary-key enforcement and secondary indexes.

use crate::column::ColumnSet;
use crate::error::{Result, StorageError};
use crate::index::{Index, RowId};
use crate::row::Row;
use crate::schema::{KeyMode, TableSchema};
use crate::value::Value;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cumulative access counters for one table, surfaced via `sys.tables`.
///
/// Held behind an `Arc` so clones of a [`Table`] (checkpoint snapshots,
/// `Database::clone`) keep feeding the *same* counters — access stats
/// describe the logical table, not one copy of it. All bumps are relaxed
/// atomics: monotone counters with no ordering requirements.
#[derive(Debug, Default)]
pub struct TableAccess {
    /// Sequential scans opened by the executor.
    pub seq_scans: AtomicU64,
    /// Rows made visible to sequential scans (live rows at scan open).
    pub rows_read: AtomicU64,
    /// Secondary-index point lookups.
    pub index_probes: AtomicU64,
    /// Rows inserted.
    pub inserts: AtomicU64,
    /// Rows deleted.
    pub deletes: AtomicU64,
    /// Rows updated (bumped by the update path, which internally
    /// deletes + reinserts; those bumps are counted separately).
    pub updates: AtomicU64,
    /// Columnar-transpose cache rebuilds (a proxy for mutation churn on
    /// scanned tables).
    pub transpose_rebuilds: AtomicU64,
}

impl TableAccess {
    #[inline]
    fn bump(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Snapshot all counters as `(seq_scans, rows_read, index_probes,
    /// inserts, deletes, updates, transpose_rebuilds)`.
    pub fn snapshot(&self) -> [u64; 7] {
        [
            Self::get(&self.seq_scans),
            Self::get(&self.rows_read),
            Self::get(&self.index_probes),
            Self::get(&self.inserts),
            Self::get(&self.deletes),
            Self::get(&self.updates),
            Self::get(&self.transpose_rebuilds),
        ]
    }
}

/// An in-memory table: a slotted heap of rows, an optional primary-key map
/// (over the first column, per the paper's schema convention), and any
/// number of secondary hash indexes.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Option<Row>>,
    live: usize,
    pk: HashMap<Value, RowId>,
    indexes: Vec<Index>,
    /// Bumped on every insert/delete; lets the optimizer's statistics
    /// catalog detect stale snapshots without rescanning.
    version: u64,
    /// Lazily built columnar transpose of the live rows, keyed by the
    /// version it was built at (see [`Table::columnar`]).
    columnar: RefCell<Option<(u64, Arc<ColumnSet>)>>,
    /// Cumulative access stats, shared across clones (see [`TableAccess`]).
    access: Arc<TableAccess>,
}

impl Table {
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            live: 0,
            pk: HashMap::new(),
            indexes: Vec::new(),
            version: 0,
            columnar: RefCell::new(None),
            access: Arc::new(TableAccess::default()),
        }
    }

    /// Cumulative access counters (shared across clones of this table).
    pub fn access(&self) -> &TableAccess {
        &self.access
    }

    /// Record one sequential scan making `rows` rows visible. Called by
    /// the executors when a `Scan` node opens.
    pub fn note_seq_scan(&self, rows: u64) {
        TableAccess::bump(&self.access.seq_scans, 1);
        TableAccess::bump(&self.access.rows_read, rows);
    }

    /// Record one logical row update (the DML layer's delete+reinsert).
    pub fn note_update(&self) {
        TableAccess::bump(&self.access.updates, 1);
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Create a secondary hash index over the named columns.
    pub fn create_index(&mut self, name: &str, columns: &[&str]) -> Result<()> {
        if self.indexes.iter().any(|i| i.name() == name) {
            return Err(StorageError::IndexExists {
                table: self.schema.name().to_string(),
                name: name.to_string(),
            });
        }
        let cols = columns
            .iter()
            .map(|c| self.schema.column_index(c))
            .collect::<Result<Vec<_>>>()?;
        let mut idx = Index::new(name, cols);
        for (rid, slot) in self.rows.iter().enumerate() {
            if let Some(row) = slot {
                idx.insert(row, rid)?;
            }
        }
        self.indexes.push(idx);
        // A new index changes the statistics surface (exact distinct-key
        // counts become available): invalidate cached stats snapshots.
        self.version += 1;
        Ok(())
    }

    fn check_arity(&self, row: &Row) -> Result<()> {
        if row.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                table: self.schema.name().to_string(),
                expected: self.schema.arity(),
                got: row.arity(),
            });
        }
        Ok(())
    }

    /// Insert a row, enforcing the primary-key constraint when the schema
    /// declares one. Returns the new row's id.
    pub fn insert(&mut self, row: Row) -> Result<RowId> {
        self.check_arity(&row)?;
        if self.schema.key_mode() == KeyMode::PrimaryKey {
            let key = row.get(0)?.clone();
            if self.pk.contains_key(&key) {
                return Err(StorageError::DuplicateKey {
                    table: self.schema.name().to_string(),
                    key: format!("{key}"),
                });
            }
            self.pk.insert(key, self.rows.len());
        }
        let rid = self.rows.len();
        for idx in &mut self.indexes {
            idx.insert(&row, rid)?;
        }
        self.rows.push(Some(row));
        self.live += 1;
        self.version += 1;
        TableAccess::bump(&self.access.inserts, 1);
        Ok(rid)
    }

    /// Fetch a live row by id.
    pub fn get(&self, rid: RowId) -> Result<&Row> {
        self.rows
            .get(rid)
            .and_then(|s| s.as_ref())
            .ok_or(StorageError::InvalidRowId {
                table: self.schema.name().to_string(),
                row_id: rid,
            })
    }

    /// Delete a row by id, returning it.
    pub fn delete(&mut self, rid: RowId) -> Result<Row> {
        let slot = self.rows.get_mut(rid).ok_or(StorageError::InvalidRowId {
            table: self.schema.name().to_string(),
            row_id: rid,
        })?;
        let row = slot.take().ok_or(StorageError::InvalidRowId {
            table: self.schema.name().to_string(),
            row_id: rid,
        })?;
        if self.schema.key_mode() == KeyMode::PrimaryKey {
            self.pk.remove(row.get(0)?);
        }
        for idx in &mut self.indexes {
            idx.remove(&row, rid)?;
        }
        self.live -= 1;
        self.version += 1;
        TableAccess::bump(&self.access.deletes, 1);
        Ok(row)
    }

    /// Delete every row matching `pred`; returns the number deleted.
    ///
    /// Scans the whole heap — prefer [`Table::delete_by_index_where`] on
    /// large tables when an index covers the selection.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&Row) -> bool) -> Result<usize> {
        let victims: Vec<RowId> = self
            .rows
            .iter()
            .enumerate()
            .filter_map(|(rid, s)| s.as_ref().filter(|r| pred(r)).map(|_| rid))
            .collect();
        for rid in &victims {
            self.delete(*rid)?;
        }
        Ok(victims.len())
    }

    /// Delete the rows matching `key` on the named index that also satisfy
    /// `pred`; returns the number deleted. O(matching rows), not O(table).
    pub fn delete_by_index_where(
        &mut self,
        index: &str,
        key: &[Value],
        mut pred: impl FnMut(&Row) -> bool,
    ) -> Result<usize> {
        let victims: Vec<RowId> = self
            .index_lookup(index, key)?
            .iter()
            .copied()
            .filter(|&rid| self.rows[rid].as_ref().is_some_and(&mut pred))
            .collect();
        for rid in &victims {
            self.delete(*rid)?;
        }
        Ok(victims.len())
    }

    /// Delete all rows with this index key.
    pub fn delete_by_index(&mut self, index: &str, key: &[Value]) -> Result<usize> {
        self.delete_by_index_where(index, key, |_| true)
    }

    /// Look up a row by primary key.
    pub fn get_by_key(&self, key: &Value) -> Option<&Row> {
        let rid = *self.pk.get(key)?;
        self.rows[rid].as_ref()
    }

    /// Row id for a primary key.
    pub fn rid_by_key(&self, key: &Value) -> Option<RowId> {
        self.pk.get(key).copied()
    }

    /// Row ids matching `key` on the named secondary index.
    pub fn index_lookup(&self, index: &str, key: &[Value]) -> Result<&[RowId]> {
        let idx = self
            .indexes
            .iter()
            .find(|i| i.name() == index)
            .ok_or_else(|| StorageError::NoSuchIndex {
                table: self.schema.name().to_string(),
                name: index.to_string(),
            })?;
        TableAccess::bump(&self.access.index_probes, 1);
        Ok(idx.get(key))
    }

    /// Rows matching `key` on the named secondary index.
    pub fn index_rows(&self, index: &str, key: &[Value]) -> Result<Vec<&Row>> {
        Ok(self
            .index_lookup(index, key)?
            .iter()
            .filter_map(|&rid| self.rows[rid].as_ref())
            .collect())
    }

    /// Iterate over live rows with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter_map(|(rid, s)| s.as_ref().map(|r| (rid, r)))
    }

    /// Clone all live rows (used by the materializing executor's `Scan`).
    pub fn scan(&self) -> Vec<Row> {
        self.iter().map(|(_, r)| r.clone()).collect()
    }

    /// The columnar transpose of the live rows, built lazily and cached
    /// per [`Table::version`]. The vectorized executor's `Scan` slices
    /// this shared set into chunk windows instead of cloning rows; a
    /// mutation invalidates the cache by bumping the version.
    pub fn columnar(&self) -> Arc<ColumnSet> {
        let mut cache = self.columnar.borrow_mut();
        if let Some((version, set)) = cache.as_ref() {
            if *version == self.version {
                return Arc::clone(set);
            }
        }
        let refs: Vec<&Row> = self.iter().map(|(_, r)| r).collect();
        let set = Arc::new(ColumnSet::from_rows(self.schema.arity(), &refs));
        *cache = Some((self.version, Arc::clone(&set)));
        TableAccess::bump(&self.access.transpose_rebuilds, 1);
        set
    }

    /// True iff the table has an index with this exact column list.
    pub fn has_index_on(&self, cols: &[usize]) -> Option<&str> {
        self.indexes
            .iter()
            .find(|i| i.columns() == cols)
            .map(|i| i.name())
    }

    /// Monotone mutation counter (insert/delete), used by the optimizer's
    /// statistics catalog to detect stale snapshots.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Per-index statistics: `(name, columns, distinct keys)`. Distinct-key
    /// counts are maintained incrementally by insert/delete, so this is
    /// O(#indexes).
    pub fn index_stats(&self) -> Vec<(&str, &[usize], usize)> {
        self.indexes
            .iter()
            .map(|i| (i.name(), i.columns(), i.distinct_keys()))
            .collect()
    }

    /// Find an index over exactly this *set* of columns (order-insensitive).
    /// Returns the index name and its column order, which callers must use
    /// when assembling lookup keys.
    pub fn find_index_for(&self, cols: &[usize]) -> Option<(&str, &[usize])> {
        let mut want: Vec<usize> = cols.to_vec();
        want.sort_unstable();
        self.indexes
            .iter()
            .find(|i| {
                let mut have: Vec<usize> = i.columns().to_vec();
                have.sort_unstable();
                have == want
            })
            .map(|i| (i.name(), i.columns()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn users() -> Table {
        let mut t = Table::new(TableSchema::with_key("Users", &["uid", "name"]));
        t.insert(row![1, "Alice"]).unwrap();
        t.insert(row![2, "Bob"]).unwrap();
        t.insert(row![3, "Carol"]).unwrap();
        t
    }

    #[test]
    fn insert_and_key_lookup() {
        let t = users();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get_by_key(&Value::int(2)).unwrap()[1], Value::str("Bob"));
        assert!(t.get_by_key(&Value::int(9)).is_none());
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = users();
        let err = t.insert(row![1, "Imposter"]).unwrap_err();
        assert!(matches!(err, StorageError::DuplicateKey { .. }));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn keyless_table_allows_duplicates() {
        let mut t = Table::new(TableSchema::keyless("E", &["wid1", "uid", "wid2"]));
        t.insert(row![0, 1, 1]).unwrap();
        t.insert(row![0, 1, 1]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn arity_enforced() {
        let mut t = users();
        assert!(matches!(
            t.insert(row![4]),
            Err(StorageError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            })
        ));
    }

    #[test]
    fn delete_frees_key_and_slot() {
        let mut t = users();
        let rid = t.rid_by_key(&Value::int(2)).unwrap();
        let row = t.delete(rid).unwrap();
        assert_eq!(row[1], Value::str("Bob"));
        assert_eq!(t.len(), 2);
        assert!(t.get(rid).is_err());
        assert!(t.get_by_key(&Value::int(2)).is_none());
        // key can be reused after delete
        t.insert(row![2, "Bobby"]).unwrap();
        assert_eq!(
            t.get_by_key(&Value::int(2)).unwrap()[1],
            Value::str("Bobby")
        );
    }

    #[test]
    fn delete_twice_fails() {
        let mut t = users();
        let rid = t.rid_by_key(&Value::int(1)).unwrap();
        t.delete(rid).unwrap();
        assert!(t.delete(rid).is_err());
    }

    #[test]
    fn secondary_index_tracks_mutations() {
        let mut t = Table::new(TableSchema::keyless("V", &["wid", "tid", "key", "s", "e"]));
        t.create_index("by_wid_key", &["wid", "key"]).unwrap();
        t.insert(row![1, "t1", "s1", "+", "y"]).unwrap();
        t.insert(row![1, "t2", "s1", "-", "n"]).unwrap();
        t.insert(row![2, "t1", "s1", "+", "n"]).unwrap();

        let key = [Value::int(1), Value::str("s1")];
        assert_eq!(t.index_rows("by_wid_key", &key).unwrap().len(), 2);

        t.delete_where(|r| r[3] == Value::str("-")).unwrap();
        assert_eq!(t.index_rows("by_wid_key", &key).unwrap().len(), 1);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn index_created_after_data_backfills() {
        let mut t = users();
        t.create_index("by_name", &["name"]).unwrap();
        let hits = t.index_rows("by_name", &[Value::str("Carol")]).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0][0], Value::int(3));
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut t = users();
        t.create_index("i", &["name"]).unwrap();
        assert!(matches!(
            t.create_index("i", &["uid"]),
            Err(StorageError::IndexExists { .. })
        ));
    }

    #[test]
    fn has_index_on_matches_exact_columns() {
        let mut t = users();
        t.create_index("by_name", &["name"]).unwrap();
        assert_eq!(t.has_index_on(&[1]), Some("by_name"));
        assert_eq!(t.has_index_on(&[0]), None);
        assert_eq!(t.has_index_on(&[1, 0]), None);
    }

    #[test]
    fn columnar_cache_tracks_versions_and_skips_dead_rows() {
        let mut t = users();
        let first = t.columnar();
        // Unchanged table: the same Arc comes back.
        assert!(Arc::ptr_eq(&first, &t.columnar()));
        assert_eq!(first.len(), 3);
        assert_eq!(first.row_at(1), row![2, "Bob"]);
        // A mutation invalidates the cache; dead rows are not windows.
        let rid = t.rid_by_key(&Value::int(2)).unwrap();
        t.delete(rid).unwrap();
        let second = t.columnar();
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(second.len(), 2);
        assert_eq!(second.row_at(1), row![3, "Carol"]);
    }

    #[test]
    fn access_counters_track_mutations_and_shared_across_clones() {
        let mut t = users();
        let clone = t.clone();
        let rid = t.rid_by_key(&Value::int(1)).unwrap();
        t.delete(rid).unwrap();
        t.note_seq_scan(2);
        t.note_update();
        t.create_index("by_name", &["name"]).unwrap();
        t.index_lookup("by_name", &[Value::str("Bob")]).unwrap();
        let _ = t.columnar();
        let [seq, read, probes, ins, del, upd, rebuilds] = t.access().snapshot();
        assert_eq!((seq, read), (1, 2));
        assert_eq!(probes, 1);
        assert_eq!(ins, 3);
        assert_eq!(del, 1);
        assert_eq!(upd, 1);
        assert_eq!(rebuilds, 1);
        // The clone observes the same counters (Arc-shared).
        assert_eq!(clone.access().snapshot(), t.access().snapshot());
    }

    #[test]
    fn scan_returns_live_rows_only() {
        let mut t = users();
        let rid = t.rid_by_key(&Value::int(1)).unwrap();
        t.delete(rid).unwrap();
        let rows = t.scan();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r[1] != Value::str("Alice")));
    }
}
