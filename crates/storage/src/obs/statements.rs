//! Cumulative per-statement statistics keyed by query fingerprint
//! (the `pg_stat_statements` idea, scoped to BeliefSQL).
//!
//! Every statement text is **normalized** — string and integer literals
//! become `?`, whitespace runs collapse to one space, ASCII letters
//! lowercase — and hashed (FNV-1a) into a stable 64-bit fingerprint, so
//! `select * from T where a = 1` and `SELECT * FROM T WHERE a = 2`
//! accumulate into one row. Stats live in a bounded sharded map; when a
//! shard fills, the entry with the fewest calls (ties broken by least
//! total time) is evicted, so hot statements survive churn.
//!
//! Discipline mirrors the metrics registry: the registry is
//! process-wide, and the **disabled path is allocation-free** — one
//! relaxed atomic load and out. The enabled steady state is also
//! allocation-free: [`fingerprint`] streams normalized bytes into the
//! hasher without building a string, and the normalized text is only
//! materialized the first time a fingerprint is seen.
//! `tests/obs_overhead.rs` guards both properties with a counting
//! allocator.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Shard count for the statement map (fingerprint-keyed).
const SHARDS: usize = 8;

/// Entries per shard before least-calls eviction (process-wide cap is
/// `SHARDS * SHARD_CAP` fingerprints).
const SHARD_CAP: usize = 64;

/// Cumulative statistics for one statement fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementStats {
    /// FNV-1a hash of the normalized statement text.
    pub fingerprint: u64,
    /// The normalized statement (literals replaced by `?`).
    pub statement: String,
    /// Executions observed (including failed ones).
    pub calls: u64,
    /// Executions that returned an error.
    pub errors: u64,
    /// Total wall time across calls, nanoseconds.
    pub total_ns: u64,
    /// Fastest call, nanoseconds.
    pub min_ns: u64,
    /// Slowest call, nanoseconds.
    pub max_ns: u64,
    /// Rows returned across calls (0 for DML).
    pub rows: u64,
    /// Plan-cache hits attributed to this statement's calls.
    pub cache_hits: u64,
    /// Plan-cache misses attributed to this statement's calls.
    pub cache_misses: u64,
    /// Spill bytes written during this statement's calls.
    pub spill_bytes: u64,
    /// Largest peak-buffered-bytes figure observed for a call (only
    /// populated when the call ran with profiling on, e.g. while the
    /// slow-query log is armed).
    pub peak_buffered: u64,
}

impl StatementStats {
    /// Mean wall time per call, nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// One observed execution, as recorded by [`record_statement`].
/// Counter fields are the *delta* attributed to this call (the session
/// computes them from metrics snapshots bracketing the execution, so
/// under concurrency the attribution is approximate — documented in
/// `docs/observability.md`).
#[derive(Debug, Clone, Copy, Default)]
pub struct StatementObs {
    pub wall_ns: u64,
    pub rows: u64,
    pub error: bool,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub spill_bytes: u64,
    pub peak_buffered: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(true);

fn registry() -> &'static [Mutex<HashMap<u64, StatementStats>>; SHARDS] {
    static REGISTRY: OnceLock<[Mutex<HashMap<u64, StatementStats>>; SHARDS]> = OnceLock::new();
    REGISTRY.get_or_init(|| std::array::from_fn(|_| Mutex::new(HashMap::new())))
}

/// Whether statement tracking is on (the default). One relaxed load.
#[inline]
pub fn statements_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Toggle statement tracking process-wide (`\set statements on|off`).
/// Existing stats are kept; disable + [`clear_statements`] to reset.
pub fn set_statements_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Stream the normalized form of `sql` into `emit`, byte by byte,
/// without allocating: string literals (`'...'`, with `''` escapes) and
/// integer literals become `?`, whitespace runs collapse to a single
/// space (leading/trailing trimmed), ASCII uppercase lowercases.
fn fold_normalized(sql: &str, mut emit: impl FnMut(u8)) {
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut pending_space = false;
    let mut emitted_any = false;
    // True when the previous source byte continued an identifier, so a
    // digit belongs to a name (`x1`), not a literal.
    let mut prev_ident = false;
    let space_then = |emitted_any: &mut bool, pending: &mut bool, emit: &mut dyn FnMut(u8)| {
        if *pending && *emitted_any {
            emit(b' ');
        }
        *pending = false;
    };
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\'' {
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        i += 2;
                        continue;
                    }
                    i += 1;
                    break;
                }
                i += 1;
            }
            space_then(&mut emitted_any, &mut pending_space, &mut emit);
            emit(b'?');
            emitted_any = true;
            prev_ident = false;
            continue;
        }
        if c.is_ascii_whitespace() {
            pending_space = true;
            prev_ident = false;
            i += 1;
            continue;
        }
        if c.is_ascii_digit() && !prev_ident {
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            space_then(&mut emitted_any, &mut pending_space, &mut emit);
            emit(b'?');
            emitted_any = true;
            prev_ident = true;
            continue;
        }
        space_then(&mut emitted_any, &mut pending_space, &mut emit);
        emit(c.to_ascii_lowercase());
        emitted_any = true;
        prev_ident = c.is_ascii_alphanumeric() || c == b'_';
        i += 1;
    }
}

/// The normalized statement text (allocates; used only on first sight
/// of a fingerprint and in tests).
pub fn normalize_statement(sql: &str) -> String {
    let mut out = Vec::with_capacity(sql.len());
    fold_normalized(sql, |b| out.push(b));
    String::from_utf8(out)
        .expect("normalization preserves UTF-8: multi-byte sequences pass through")
}

/// The stable fingerprint of `sql`: FNV-1a over the normalized bytes.
/// Allocation-free — bytes stream straight into the hasher.
pub fn fingerprint(sql: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fold_normalized(sql, |b| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    });
    h
}

/// Fold one execution into the registry. No-op (one atomic load) when
/// tracking is disabled; allocation-free for already-seen fingerprints.
pub fn record_statement(sql: &str, obs: StatementObs) {
    if !statements_enabled() {
        return;
    }
    let fp = fingerprint(sql);
    let shard = &registry()[(fp as usize) % SHARDS];
    let mut map = shard.lock().expect("statement shard poisoned");
    if let Some(entry) = map.get_mut(&fp) {
        merge(entry, &obs);
        return;
    }
    if map.len() >= SHARD_CAP {
        // Bounded map: drop the coldest entry (fewest calls, then least
        // total time) to admit the newcomer.
        let victim = map
            .values()
            .min_by_key(|e| (e.calls, e.total_ns))
            .map(|e| e.fingerprint)
            .expect("shard at cap is non-empty");
        map.remove(&victim);
    }
    let mut entry = StatementStats {
        fingerprint: fp,
        statement: normalize_statement(sql),
        calls: 0,
        errors: 0,
        total_ns: 0,
        min_ns: u64::MAX,
        max_ns: 0,
        rows: 0,
        cache_hits: 0,
        cache_misses: 0,
        spill_bytes: 0,
        peak_buffered: 0,
    };
    merge(&mut entry, &obs);
    map.insert(fp, entry);
}

fn merge(entry: &mut StatementStats, obs: &StatementObs) {
    entry.calls += 1;
    entry.errors += obs.error as u64;
    entry.total_ns += obs.wall_ns;
    entry.min_ns = entry.min_ns.min(obs.wall_ns);
    entry.max_ns = entry.max_ns.max(obs.wall_ns);
    entry.rows += obs.rows;
    entry.cache_hits += obs.cache_hits;
    entry.cache_misses += obs.cache_misses;
    entry.spill_bytes += obs.spill_bytes;
    entry.peak_buffered = entry.peak_buffered.max(obs.peak_buffered);
}

/// Raise an existing entry's peak-buffered high-water mark (profiled
/// runs report it after the fact). Unknown fingerprints are ignored.
pub fn note_statement_peak(sql: &str, peak_bytes: u64) {
    if !statements_enabled() {
        return;
    }
    let fp = fingerprint(sql);
    let mut map = registry()[(fp as usize) % SHARDS]
        .lock()
        .expect("statement shard poisoned");
    if let Some(entry) = map.get_mut(&fp) {
        entry.peak_buffered = entry.peak_buffered.max(peak_bytes);
    }
}

/// A point-in-time copy of every tracked statement, sorted by
/// fingerprint (deterministic; consumers re-sort as needed — this is
/// what a `sys.statements` scan snapshots).
pub fn statements_snapshot() -> Vec<StatementStats> {
    let mut out: Vec<StatementStats> = Vec::new();
    for shard in registry() {
        let map = shard.lock().expect("statement shard poisoned");
        out.extend(map.values().cloned());
    }
    out.sort_by_key(|e| e.fingerprint);
    out
}

/// Drop every tracked statement (tests, `\statements clear`). The
/// enabled flag is unchanged.
pub fn clear_statements() {
    for shard in registry() {
        shard.lock().expect("statement shard poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_strips_literals_case_and_whitespace() {
        assert_eq!(
            normalize_statement("SELECT * FROM  T   WHERE a = 'x'"),
            "select * from t where a = ?"
        );
        assert_eq!(
            normalize_statement("select * from T where a = 1 and b = 'it''s'"),
            "select * from t where a = ? and b = ?"
        );
        // Digits inside identifiers survive; standalone numbers do not.
        assert_eq!(
            normalize_statement("select S1.x from T1 where y = 42"),
            "select s1.x from t1 where y = ?"
        );
        assert_eq!(normalize_statement("  select 1  "), "select ?");
    }

    #[test]
    fn fingerprint_is_stable_under_literal_changes() {
        let a = fingerprint("select * from T where a = 'crow' and n = 1");
        let b = fingerprint("SELECT *  FROM T  WHERE a = 'raven' AND n = 999");
        assert_eq!(a, b);
        assert_ne!(a, fingerprint("select * from T where b = 'crow'"));
        // Streamed fingerprint == hash of the materialized normalization.
        let sql = "select U.name from Users as U where U.name = 'Bob'";
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in normalize_statement(sql).bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(fingerprint(sql), h);
    }

    #[test]
    fn record_accumulates_and_tracks_extremes() {
        clear_statements();
        let sql = "select * from RecordAccumulatesTable where k = 7";
        record_statement(
            sql,
            StatementObs {
                wall_ns: 100,
                rows: 3,
                error: false,
                cache_hits: 1,
                ..Default::default()
            },
        );
        record_statement(
            "select * from RecordAccumulatesTable where k = 8",
            StatementObs {
                wall_ns: 50,
                rows: 2,
                error: true,
                cache_misses: 1,
                spill_bytes: 10,
                ..Default::default()
            },
        );
        let snap = statements_snapshot();
        let entry = snap
            .iter()
            .find(|e| e.fingerprint == fingerprint(sql))
            .expect("recorded");
        assert_eq!(entry.calls, 2);
        assert_eq!(entry.errors, 1);
        assert_eq!(entry.total_ns, 150);
        assert_eq!(entry.min_ns, 50);
        assert_eq!(entry.max_ns, 100);
        assert_eq!(entry.mean_ns(), 75);
        assert_eq!(entry.rows, 5);
        assert_eq!(entry.cache_hits, 1);
        assert_eq!(entry.cache_misses, 1);
        assert_eq!(entry.spill_bytes, 10);
        assert_eq!(
            entry.statement,
            "select * from recordaccumulatestable where k = ?"
        );
        note_statement_peak(sql, 4096);
        let snap = statements_snapshot();
        let entry = snap
            .iter()
            .find(|e| e.fingerprint == fingerprint(sql))
            .expect("recorded");
        assert_eq!(entry.peak_buffered, 4096);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        set_statements_enabled(false);
        let sql = "select * from DisabledRecordingTable";
        record_statement(sql, StatementObs::default());
        set_statements_enabled(true);
        assert!(!statements_snapshot()
            .iter()
            .any(|e| e.fingerprint == fingerprint(sql)));
    }

    #[test]
    fn shard_eviction_drops_the_coldest_entry() {
        clear_statements();
        // Fill one shard past its cap with single-call entries, with one
        // hot entry in the middle; the hot entry must survive.
        let hot = "select * from EvictHotTable where id = 1";
        for _ in 0..5 {
            record_statement(hot, StatementObs::default());
        }
        let hot_fp = fingerprint(hot);
        let mut in_shard = 0;
        let mut i = 0;
        while in_shard < SHARD_CAP + 4 {
            let sql = format!("select * from EvictColdTable{i} -- x");
            // Only statements landing in the hot entry's shard compete
            // with it.
            if (fingerprint(&sql) as usize) % SHARDS == (hot_fp as usize) % SHARDS {
                record_statement(&sql, StatementObs::default());
                in_shard += 1;
            }
            i += 1;
        }
        let snap = statements_snapshot();
        assert!(snap.iter().any(|e| e.fingerprint == hot_fp), "hot evicted");
        // The shard stayed at its cap.
        let shard_len = registry()[(hot_fp as usize) % SHARDS].lock().unwrap().len();
        assert!(shard_len <= SHARD_CAP);
        clear_statements();
    }
}
