//! # Observability: execution profiles, metrics, tracing
//!
//! The engine's three introspection faces, all in-tree (the build is
//! offline) and all built so the **disabled path costs one branch and
//! zero allocations** (guarded by `tests/obs_overhead.rs`):
//!
//! * [`profile`] — per-operator execution profiles. A [`Profile`] tree
//!   mirrors the physical [`Plan`](crate::plan::Plan): every operator
//!   the executor opens records actual rows/chunks out, kernel-vs-
//!   fallback row counts, spill bytes/partitions/passes, peak build
//!   memory, and inclusive wall time. Surfaced as `EXPLAIN ANALYZE` via
//!   [`crate::opt::explain::render_analyze`].
//! * [`metrics`] — a process-wide sharded-counter registry unifying the
//!   engine's scattered counters (plan-cache hits/misses, WAL
//!   appends/syncs/checkpoints, spill run files, chunk-pool recycling,
//!   rows scanned/emitted) plus a query-latency histogram. Counters are
//!   monotonic, so a per-session scraper (the future server) can diff
//!   snapshots.
//! * [`trace`] — structured span recording ([`Recorder`]) and a
//!   ring-buffer slow-query log ([`SlowLog`]) that captures the full
//!   profile of any query whose wall time crosses a settable threshold.

//! * [`statements`] — fingerprinted cumulative statement statistics
//!   (the `pg_stat_statements` idea): literals stripped, text hashed,
//!   per-fingerprint totals in a bounded sharded map.
//! * [`catalog`] — `sys.*` virtual-table providers exposing all of the
//!   above (plus the base-table catalog, plan cache, and WAL) as
//!   ordinary relations queryable through the engine itself.

pub mod catalog;
pub mod metrics;
pub mod profile;
pub mod statements;
pub mod trace;

pub use catalog::{
    metrics_table, plan_cache_table, slowlog_table, statements_table, tables_table, wal_table,
    FnTable,
};
pub use metrics::{metrics, render_prometheus, Metric, MetricsSnapshot};
pub use profile::{NodeObs, ProfNode, Profile};
pub use statements::{
    clear_statements, fingerprint, normalize_statement, note_statement_peak, record_statement,
    set_statements_enabled, statements_enabled, statements_snapshot, StatementObs, StatementStats,
};
pub use trace::{QueryTrace, Recorder, SlowLog, SpanRecord};
