//! The engine-wide metrics registry.
//!
//! A fixed set of named counters ([`Metric`]) plus a query-latency
//! histogram, shared by every subsystem in the process. Increments are
//! relaxed atomic adds into one of a few thread-sharded slots — no
//! locks, no allocation, safe to call from the executor's hot loops
//! (which batch per chunk, not per row). [`metrics`]`()` returns the
//! global registry; [`MetricsRegistry::snapshot`] sums the shards into
//! an immutable [`MetricsSnapshot`].
//!
//! Counters are **monotonic since process start** and process-wide (the
//! engine is embedded; sessions share one process). A per-session view
//! — what the planned multi-session server will scrape — is the
//! difference of two snapshots, which monotonicity makes exact.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Every counter the registry tracks. Stable names (rendered by
/// [`Metric::name`]) are the scrape interface; add variants at the end
/// and keep [`Metric::ALL`] in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// BCQ evaluations started (collected + streaming).
    QueriesExecuted,
    /// Datalog plan-cache lookups that were served from cache.
    PlanCacheHits,
    /// Datalog plan-cache lookups that had to plan from scratch.
    PlanCacheMisses,
    /// WAL records appended.
    WalAppends,
    /// WAL fsyncs issued (group commits, checkpoints, rotations).
    WalSyncs,
    /// Snapshot checkpoints written.
    WalCheckpoints,
    /// Spill run files created (partitions, sort runs, merge outputs).
    SpillRunFiles,
    /// Chunk-buffer requests served from the thread-local pool.
    PoolHits,
    /// Chunk-buffer requests that had to allocate fresh.
    PoolMisses,
    /// Rows read by leaf operators (table scans and literal `Values`).
    RowsScanned,
    /// Rows delivered by finished plan executions.
    RowsEmitted,
    /// Queries captured by the slow-query log.
    SlowQueries,
    /// Columnar chunks produced by leaf scans (table-storage windows
    /// sliced without cloning rows).
    ColumnarChunks,
    /// Bytes written to spill run files (framed block payloads).
    SpillBytes,
}

impl Metric {
    pub const ALL: [Metric; 14] = [
        Metric::QueriesExecuted,
        Metric::PlanCacheHits,
        Metric::PlanCacheMisses,
        Metric::WalAppends,
        Metric::WalSyncs,
        Metric::WalCheckpoints,
        Metric::SpillRunFiles,
        Metric::PoolHits,
        Metric::PoolMisses,
        Metric::RowsScanned,
        Metric::RowsEmitted,
        Metric::SlowQueries,
        Metric::ColumnarChunks,
        Metric::SpillBytes,
    ];

    const COUNT: usize = Metric::ALL.len();

    /// The counter's stable dotted name (the scrape / `\metrics` key).
    pub fn name(self) -> &'static str {
        match self {
            Metric::QueriesExecuted => "query.executed",
            Metric::PlanCacheHits => "plan_cache.hits",
            Metric::PlanCacheMisses => "plan_cache.misses",
            Metric::WalAppends => "wal.appends",
            Metric::WalSyncs => "wal.syncs",
            Metric::WalCheckpoints => "wal.checkpoints",
            Metric::SpillRunFiles => "spill.run_files",
            Metric::PoolHits => "pool.hits",
            Metric::PoolMisses => "pool.misses",
            Metric::RowsScanned => "exec.rows_scanned",
            Metric::RowsEmitted => "exec.rows_emitted",
            Metric::SlowQueries => "slowlog.captured",
            Metric::ColumnarChunks => "exec.columnar_chunks",
            Metric::SpillBytes => "spill.bytes",
        }
    }
}

/// Shard count: enough that a handful of concurrent sessions rarely
/// collide on a cache line, small enough that snapshots stay trivial.
const SHARDS: usize = 8;

/// Latency histogram buckets: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` nanoseconds.
const BUCKETS: usize = 48;

struct Shard {
    counters: [AtomicU64; Metric::COUNT],
}

/// The registry: sharded counters plus one query-latency histogram.
pub struct MetricsRegistry {
    shards: [Shard; SHARDS],
    latency_buckets: [AtomicU64; BUCKETS],
    latency_count: AtomicU64,
    latency_sum_nanos: AtomicU64,
}

static REGISTRY: MetricsRegistry = MetricsRegistry {
    shards: [const {
        Shard {
            counters: [const { AtomicU64::new(0) }; Metric::COUNT],
        }
    }; SHARDS],
    latency_buckets: [const { AtomicU64::new(0) }; BUCKETS],
    latency_count: AtomicU64::new(0),
    latency_sum_nanos: AtomicU64::new(0),
};

/// The process-wide registry.
pub fn metrics() -> &'static MetricsRegistry {
    &REGISTRY
}

/// Each thread owns one shard index for its lifetime (round-robin
/// assignment; reuse across short-lived threads is harmless).
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static IDX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    IDX.with(|i| *i)
}

impl MetricsRegistry {
    /// Add `n` to a counter. Relaxed atomic add — no allocation.
    #[inline]
    pub fn add(&self, metric: Metric, n: u64) {
        self.shards[shard_index()].counters[metric as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Increment a counter by one.
    #[inline]
    pub fn incr(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Record one query's wall time in the latency histogram.
    pub fn record_latency(&self, nanos: u64) {
        let bucket = (63 - (nanos | 1).leading_zeros() as usize).min(BUCKETS - 1);
        self.latency_buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.latency_count.fetch_add(1, Ordering::Relaxed);
        self.latency_sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Sum the shards into an immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = [0u64; Metric::COUNT];
        for shard in &self.shards {
            for (i, c) in shard.counters.iter().enumerate() {
                counters[i] += c.load(Ordering::Relaxed);
            }
        }
        let mut latency_buckets = [0u64; BUCKETS];
        for (i, b) in self.latency_buckets.iter().enumerate() {
            latency_buckets[i] = b.load(Ordering::Relaxed);
        }
        MetricsSnapshot {
            counters,
            latency_buckets,
            latency_count: self.latency_count.load(Ordering::Relaxed),
            latency_sum_nanos: self.latency_sum_nanos.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of every counter. Monotonic: subtract an older
/// snapshot for a per-interval (or per-session) view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; Metric::COUNT],
    latency_buckets: [u64; BUCKETS],
    latency_count: u64,
    latency_sum_nanos: u64,
}

impl MetricsSnapshot {
    pub fn get(&self, metric: Metric) -> u64 {
        self.counters[metric as usize]
    }

    /// `(name, value)` for every counter, in declaration order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Metric::ALL.iter().map(|m| (m.name(), self.get(*m)))
    }

    /// Queries measured by the latency histogram.
    pub fn latency_count(&self) -> u64 {
        self.latency_count
    }

    /// Mean query latency in nanoseconds (0 when nothing was measured).
    pub fn latency_mean_nanos(&self) -> u64 {
        self.latency_sum_nanos
            .checked_div(self.latency_count)
            .unwrap_or(0)
    }

    /// Upper bound (ns) of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`); 0 when nothing was measured. Log-bucketed, so
    /// accurate to a factor of two — plenty for "is p99 a millisecond
    /// or a second".
    pub fn latency_quantile_nanos(&self, q: f64) -> u64 {
        if self.latency_count == 0 {
            return 0;
        }
        let rank = ((self.latency_count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.latency_buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 1);
            }
        }
        1u64 << BUCKETS
    }

    /// Number of latency-histogram buckets (bucket `i` covers
    /// `[2^i, 2^(i+1))` nanoseconds).
    pub const LATENCY_BUCKETS: usize = BUCKETS;

    /// Samples in latency bucket `i` (see [`MetricsSnapshot::LATENCY_BUCKETS`]).
    pub fn latency_bucket(&self, i: usize) -> u64 {
        self.latency_buckets[i]
    }

    /// Total measured query latency in nanoseconds.
    pub fn latency_sum_nanos(&self) -> u64 {
        self.latency_sum_nanos
    }

    /// `self - older`, counter-wise (saturating): the per-interval view.
    pub fn since(&self, older: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for i in 0..Metric::COUNT {
            out.counters[i] = self.counters[i].saturating_sub(older.counters[i]);
        }
        for i in 0..BUCKETS {
            out.latency_buckets[i] =
                self.latency_buckets[i].saturating_sub(older.latency_buckets[i]);
        }
        out.latency_count = self.latency_count.saturating_sub(older.latency_count);
        out.latency_sum_nanos = self
            .latency_sum_nanos
            .saturating_sub(older.latency_sum_nanos);
        out
    }
}

/// Render a snapshot in the Prometheus text exposition format (the
/// future server's `/metrics` endpoint body): one `counter` family per
/// [`Metric`] (dots in the stable name become underscores, prefixed
/// `beliefdb_`) plus the query-latency histogram as a cumulative
/// `histogram` family in seconds.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snap.counters() {
        let prom = format!("beliefdb_{}", name.replace('.', "_"));
        out.push_str(&format!("# TYPE {prom} counter\n{prom} {value}\n"));
    }
    out.push_str("# TYPE beliefdb_query_latency_seconds histogram\n");
    let mut cumulative = 0u64;
    for i in 0..MetricsSnapshot::LATENCY_BUCKETS {
        cumulative += snap.latency_bucket(i);
        // Upper bound of bucket i is 2^(i+1) ns, rendered in seconds.
        let le = (1u128 << (i + 1)) as f64 * 1e-9;
        out.push_str(&format!(
            "beliefdb_query_latency_seconds_bucket{{le=\"{le:e}\"}} {cumulative}\n"
        ));
    }
    out.push_str(&format!(
        "beliefdb_query_latency_seconds_bucket{{le=\"+Inf\"}} {}\n",
        snap.latency_count()
    ));
    out.push_str(&format!(
        "beliefdb_query_latency_seconds_sum {:e}\n",
        snap.latency_sum_nanos() as f64 * 1e-9
    ));
    out.push_str(&format!(
        "beliefdb_query_latency_seconds_count {}\n",
        snap.latency_count()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_snapshot_round_trip() {
        let before = metrics().snapshot();
        metrics().incr(Metric::SpillRunFiles);
        metrics().add(Metric::RowsScanned, 41);
        metrics().add(Metric::RowsScanned, 1);
        let after = metrics().snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.get(Metric::SpillRunFiles), 1);
        assert_eq!(delta.get(Metric::RowsScanned), 42);
        assert_eq!(delta.get(Metric::WalAppends), 0);
        assert_eq!(delta.counters().count(), Metric::ALL.len());
    }

    #[test]
    fn latency_histogram_buckets_by_log2() {
        let before = metrics().snapshot();
        metrics().record_latency(1_000);
        metrics().record_latency(1_000_000);
        let delta = metrics().snapshot().since(&before);
        assert_eq!(delta.latency_count(), 2);
        assert_eq!(delta.latency_mean_nanos(), 500_500);
        // The median sample (1µs) lands in the [512, 1024) ns bucket.
        assert!(delta.latency_quantile_nanos(0.5) >= 1_024);
        assert!(delta.latency_quantile_nanos(0.5) <= 2_048);
        assert!(delta.latency_quantile_nanos(1.0) >= 1 << 20);
    }

    #[test]
    fn prometheus_rendering_round_trips() {
        metrics().incr(Metric::QueriesExecuted);
        metrics().record_latency(1_000_000);
        let snap = metrics().snapshot();
        let text = render_prometheus(&snap);

        // Parse the exposition text back: `name{labels} value` lines.
        let mut counters: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        let mut buckets: Vec<(f64, u64)> = Vec::new();
        let mut hist_count = None;
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (key, value) = line.rsplit_once(' ').expect("metric line");
            if let Some(rest) = key.strip_prefix("beliefdb_query_latency_seconds_bucket{le=\"") {
                let le = rest.trim_end_matches("\"}");
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().expect("bucket bound")
                };
                buckets.push((bound, value.parse().expect("bucket count")));
            } else if key == "beliefdb_query_latency_seconds_count" {
                hist_count = Some(value.parse::<u64>().expect("count"));
            } else if key == "beliefdb_query_latency_seconds_sum" {
                assert!(value.parse::<f64>().expect("sum") >= 0.0);
            } else {
                counters.insert(key, value.parse().expect("counter value"));
            }
        }

        // Every Metric round-trips by its prometheus name and value.
        assert_eq!(counters.len(), Metric::ALL.len());
        for m in Metric::ALL {
            let prom = format!("beliefdb_{}", m.name().replace('.', "_"));
            assert_eq!(counters.get(prom.as_str()), Some(&snap.get(m)), "{prom}");
        }
        // Histogram: bounds ascend, counts are cumulative, +Inf == count.
        assert_eq!(buckets.len(), MetricsSnapshot::LATENCY_BUCKETS + 1);
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        assert_eq!(hist_count, Some(snap.latency_count()));
        assert_eq!(buckets.last().expect("+Inf").1, snap.latency_count());
        // The cumulative count at each bound matches the snapshot.
        let mut cumulative = 0;
        for (i, bucket) in buckets
            .iter()
            .enumerate()
            .take(MetricsSnapshot::LATENCY_BUCKETS)
        {
            cumulative += snap.latency_bucket(i);
            assert_eq!(bucket.1, cumulative);
        }
    }

    #[test]
    fn names_are_unique_and_stable() {
        let mut names: Vec<_> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len());
        assert_eq!(Metric::PlanCacheHits.name(), "plan_cache.hits");
    }
}
