//! `sys.*` virtual-table providers — the queryable introspection catalog.
//!
//! Each provider snapshots one observability source (the global metrics
//! registry, the statement-statistics map, the base-table catalog, the
//! plan cache, the slow-query log, the WAL) into plain rows at scan
//! time; the executor turns the snapshot into a `ColumnSet` and streams
//! it through the ordinary chunked pipeline. The tables this module
//! defines — and their columns — are documented in
//! `docs/observability.md` ("System catalog").
//!
//! Providers that need engine-owned state (`sys.plan_cache`,
//! `sys.slowlog`, `sys.wal`) take shared handles at construction; the
//! stateless ones (`sys.metrics`, `sys.statements`, `sys.tables`) read
//! the process-wide registries or the scanned `Database` itself.

use super::metrics::metrics;
use super::statements::statements_snapshot;
use crate::catalog::{Database, VirtualTable, SYS_PREFIX};
use crate::datalog::PlanCache;
use crate::obs::trace::SlowLog;
use crate::persist::WalStats;
use crate::row::Row;
use crate::schema::TableSchema;
use crate::value::Value;
use std::sync::{Arc, Mutex};

/// A virtual table defined by a schema plus a row-producing closure.
pub struct FnTable<F> {
    schema: TableSchema,
    rows: F,
}

impl<F> FnTable<F>
where
    F: Fn(&Database) -> Vec<Row> + Send + Sync + 'static,
{
    /// Build a provider for `sys.<name>` with the given columns.
    #[allow(clippy::new_ret_no_self)]
    pub fn new(name: &str, columns: &[&str], rows: F) -> Arc<dyn VirtualTable> {
        assert!(name.starts_with(SYS_PREFIX), "virtual table outside sys.");
        Arc::new(FnTable {
            schema: TableSchema::keyless(name, columns),
            rows,
        })
    }
}

impl<F> VirtualTable for FnTable<F>
where
    F: Fn(&Database) -> Vec<Row> + Send + Sync,
{
    fn schema(&self) -> &TableSchema {
        &self.schema
    }

    fn rows(&self, db: &Database) -> Vec<Row> {
        (self.rows)(db)
    }
}

fn uint(v: u64) -> Value {
    Value::Int(v as i64)
}

/// `sys.metrics (name, value)` — one row per global counter, in
/// declaration order; exactly the pairs of `metrics().snapshot()`.
pub fn metrics_table() -> Arc<dyn VirtualTable> {
    FnTable::new("sys.metrics", &["name", "value"], |_db| {
        metrics()
            .snapshot()
            .counters()
            .map(|(name, value)| Row::new([Value::str(name), uint(value)]))
            .collect()
    })
}

/// `sys.statements` — cumulative per-fingerprint statement statistics,
/// one row per tracked fingerprint (see `obs::statements`).
pub fn statements_table() -> Arc<dyn VirtualTable> {
    FnTable::new(
        "sys.statements",
        &[
            "fingerprint",
            "statement",
            "calls",
            "errors",
            "total_time_ns",
            "min_time_ns",
            "max_time_ns",
            "mean_time_ns",
            "rows_returned",
            "cache_hits",
            "cache_misses",
            "spill_bytes",
            "peak_buffered_bytes",
        ],
        |_db| {
            statements_snapshot()
                .into_iter()
                .map(|s| {
                    Row::new([
                        Value::str(format!("{:016x}", s.fingerprint)),
                        Value::str(&s.statement),
                        uint(s.calls),
                        uint(s.errors),
                        uint(s.total_ns),
                        uint(s.min_ns),
                        uint(s.max_ns),
                        uint(s.mean_ns()),
                        uint(s.rows),
                        uint(s.cache_hits),
                        uint(s.cache_misses),
                        uint(s.spill_bytes),
                        uint(s.peak_buffered),
                    ])
                })
                .collect()
        },
    )
}

/// `sys.tables` — one row per *base* table in the scanned database:
/// shape (rows, columns, indexes, version) plus the cumulative
/// [`TableAccess`](crate::table::TableAccess) counters.
pub fn tables_table() -> Arc<dyn VirtualTable> {
    FnTable::new(
        "sys.tables",
        &[
            "name",
            "rows",
            "columns",
            "indexes",
            "version",
            "seq_scans",
            "rows_read",
            "index_probes",
            "inserts",
            "deletes",
            "updates",
            "transpose_rebuilds",
        ],
        |db| {
            db.table_names()
                .into_iter()
                .map(|name| {
                    let t = db.table(name).expect("listed table exists");
                    let [seq, read, probes, ins, del, upd, rebuilds] = t.access().snapshot();
                    Row::new([
                        Value::str(name),
                        uint(t.len() as u64),
                        uint(t.schema().arity() as u64),
                        uint(t.index_stats().len() as u64),
                        uint(t.version()),
                        uint(seq),
                        uint(read),
                        uint(probes),
                        uint(ins),
                        uint(del),
                        uint(upd),
                        uint(rebuilds),
                    ])
                })
                .collect()
        },
    )
}

/// `sys.plan_cache (hits, misses, entries, embedded_rows)` — a single
/// row snapshotting the engine's plan cache.
pub fn plan_cache_table(cache: Arc<Mutex<PlanCache>>) -> Arc<dyn VirtualTable> {
    FnTable::new(
        "sys.plan_cache",
        &["hits", "misses", "entries", "embedded_rows"],
        move |_db| {
            let c = cache.lock().expect("plan cache poisoned");
            vec![Row::new([
                uint(c.hits()),
                uint(c.misses()),
                uint(c.len() as u64),
                uint(c.embedded_row_count() as u64),
            ])]
        },
    )
}

/// `sys.slowlog (statement, total_ns, spans)` — the slow-query ring,
/// oldest first; `spans` is a `name=nanos` list.
pub fn slowlog_table(log: Arc<SlowLog>) -> Arc<dyn VirtualTable> {
    FnTable::new(
        "sys.slowlog",
        &["statement", "total_ns", "spans"],
        move |_db| {
            log.entries()
                .into_iter()
                .map(|t| {
                    let spans = t
                        .spans
                        .iter()
                        .map(|s| format!("{}={}", s.name, s.nanos))
                        .collect::<Vec<_>>()
                        .join(" ");
                    Row::new([
                        Value::str(t.statement),
                        uint(t.total_nanos),
                        Value::str(spans),
                    ])
                })
                .collect()
        },
    )
}

/// `sys.wal` — one row of WAL statistics when the store is durable,
/// empty otherwise. The closure re-reads the live engine on every scan.
pub fn wal_table(
    stats: impl Fn() -> Option<WalStats> + Send + Sync + 'static,
) -> Arc<dyn VirtualTable> {
    FnTable::new(
        "sys.wal",
        &[
            "segments",
            "frames",
            "wal_bytes",
            "next_lsn",
            "snapshot_hwm",
            "checkpoints",
            "syncs",
            "truncated_on_open",
        ],
        move |_db| {
            stats()
                .map(|s| {
                    Row::new([
                        uint(s.segments as u64),
                        uint(s.frames),
                        uint(s.wal_bytes),
                        uint(s.next_lsn),
                        uint(s.snapshot_hwm),
                        uint(s.checkpoints),
                        uint(s.syncs),
                        Value::Bool(s.truncated_on_open),
                    ])
                })
                .into_iter()
                .collect()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::statements::{clear_statements, record_statement, StatementObs};
    use crate::obs::Metric;
    use crate::row;

    #[test]
    fn metrics_rows_mirror_snapshot() {
        let db = Database::new();
        let vt = metrics_table();
        assert_eq!(vt.schema().name(), "sys.metrics");
        let rows = vt.rows(&db);
        assert_eq!(rows.len(), Metric::ALL.len());
        // Every counter name appears, values are non-negative ints.
        for (row, metric) in rows.iter().zip(Metric::ALL.iter()) {
            assert_eq!(row.get(0).unwrap().as_str(), Some(metric.name()));
            assert!(row.get(1).unwrap().as_int().unwrap() >= 0);
        }
    }

    #[test]
    fn statements_rows_carry_all_columns() {
        clear_statements();
        let sql = "select * from ProvidersStatementsTable where k = 3";
        record_statement(
            sql,
            StatementObs {
                wall_ns: 200,
                rows: 4,
                ..Default::default()
            },
        );
        let db = Database::new();
        let vt = statements_table();
        assert_eq!(vt.schema().arity(), 13);
        let rows = vt.rows(&db);
        let row = rows
            .iter()
            .find(|r| {
                r.get(1).unwrap().as_str()
                    == Some("select * from providersstatementstable where k = ?")
            })
            .expect("recorded statement visible");
        assert_eq!(row.get(2).unwrap().as_int(), Some(1)); // calls
        assert_eq!(row.get(4).unwrap().as_int(), Some(200)); // total
        assert_eq!(row.get(8).unwrap().as_int(), Some(4)); // rows
        assert_eq!(row.get(0).unwrap().as_str().unwrap().len(), 16); // hex fp
        clear_statements();
    }

    #[test]
    fn tables_rows_reflect_catalog_state() {
        let mut db = Database::new();
        db.create_table(TableSchema::with_key("Users", &["uid", "name"]))
            .unwrap();
        db.table_mut("Users").unwrap().insert(row![1, "a"]).unwrap();
        db.table_mut("Users").unwrap().insert(row![2, "b"]).unwrap();
        let vt = tables_table();
        let rows = vt.rows(&db);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.get(0).unwrap().as_str(), Some("Users"));
        assert_eq!(r.get(1).unwrap().as_int(), Some(2)); // rows
        assert_eq!(r.get(2).unwrap().as_int(), Some(2)); // columns
        assert_eq!(r.get(8).unwrap().as_int(), Some(2)); // inserts
    }

    #[test]
    fn plan_cache_and_slowlog_and_wal_providers() {
        let db = Database::new();
        let cache = Arc::new(Mutex::new(PlanCache::new()));
        let vt = plan_cache_table(Arc::clone(&cache));
        let rows = vt.rows(&db);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].arity(), 4);

        let log = Arc::new(SlowLog::new());
        log.set_threshold_ms(Some(0));
        log.observe(crate::obs::QueryTrace {
            statement: "select 1".into(),
            total_nanos: 5,
            spans: vec![crate::obs::SpanRecord {
                name: "parse",
                nanos: 2,
            }],
            profile: None,
        });
        let vt = slowlog_table(Arc::clone(&log));
        let rows = vt.rows(&db);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).unwrap().as_str(), Some("select 1"));
        assert_eq!(rows[0].get(2).unwrap().as_str(), Some("parse=2"));

        // Non-durable store: sys.wal is empty, not an error.
        let vt = wal_table(|| None);
        assert!(vt.rows(&db).is_empty());
        let vt = wal_table(|| {
            Some(WalStats {
                segments: 1,
                frames: 2,
                wal_bytes: 3,
                next_lsn: 4,
                snapshot_hwm: 0,
                checkpoints: 0,
                syncs: 9,
                truncated_on_open: false,
            })
        });
        let rows = vt.rows(&db);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(6).unwrap().as_int(), Some(9));
    }
}
