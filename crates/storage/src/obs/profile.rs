//! Per-operator execution profiles.
//!
//! A [`Profile`] is a tree of [`ProfNode`]s mirroring the physical plan:
//! one node per operator the executor actually opened. The executor
//! threads a [`NodeObs`] handle through `open_node`; when profiling is
//! off the handle is `None` and every hook is a single branch — no
//! allocation, no timing syscalls, no counter traffic.
//!
//! Children are tagged with their **plan-child slot** rather than kept
//! positional: the executor does not open children in plan order (a
//! cross join opens its *right* side first) and some children are never
//! opened at all (a selection fused into its scan, the probed side of an
//! index nested-loop join). Render-time lookups go by slot; a missing
//! slot renders as `fused`.
//!
//! Counters are `Cell`s behind an `Rc`: the iterator tree the executor
//! builds is single-threaded and non-`Send`, so interior mutability
//! without atomics is exactly right.

use crate::error::Result;
use crate::exec::Chunk;
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

/// Counters for one executed operator.
#[derive(Debug, Default)]
pub struct ProfNode {
    /// `(plan-child slot, node)` for every child actually opened.
    children: RefCell<Vec<(usize, Rc<ProfNode>)>>,
    /// Rows this operator consumed (recorded only where the input is not
    /// itself a profiled child — fused scans, kernel filters).
    pub rows_in: Cell<u64>,
    /// Rows this operator emitted.
    pub rows_out: Cell<u64>,
    /// Chunks this operator emitted.
    pub chunks_out: Cell<u64>,
    /// Rows filtered through a compiled [`FilterKernel`] fast path.
    ///
    /// [`FilterKernel`]: crate::exec::stream
    pub kernel_rows: Cell<u64>,
    /// Rows filtered through the row-wise `Expr` interpreter fallback.
    pub fallback_rows: Cell<u64>,
    /// Accounted bytes written to spill run files on behalf of this
    /// operator (every write counts, so re-partitioning passes count
    /// their I/O too).
    pub spill_bytes: Cell<u64>,
    /// Spill run files created on behalf of this operator.
    pub spill_partitions: Cell<u64>,
    /// Extra passes over spilled data (merge passes, recursive
    /// re-partitioning levels).
    pub spill_passes: Cell<u64>,
    /// Peak accounted bytes held in memory by this operator's
    /// materialization point (budgeted builds only).
    pub peak_bytes: Cell<u64>,
    /// Inclusive wall time spent inside this operator's `next()` calls
    /// (children included; render subtracts).
    pub nanos: Cell<u64>,
}

/// Add to a `Cell<u64>` counter.
#[inline]
pub fn bump(cell: &Cell<u64>, n: u64) {
    cell.set(cell.get() + n);
}

/// Raise a `Cell<u64>` high-water mark.
#[inline]
pub fn raise(cell: &Cell<u64>, n: u64) {
    if n > cell.get() {
        cell.set(n);
    }
}

impl ProfNode {
    pub fn new() -> Rc<ProfNode> {
        Rc::new(ProfNode::default())
    }

    /// The child node registered for plan-child `slot`, if that child
    /// was ever opened.
    pub fn child_at(&self, slot: usize) -> Option<Rc<ProfNode>> {
        self.children
            .borrow()
            .iter()
            .find(|(s, _)| *s == slot)
            .map(|(_, n)| Rc::clone(n))
    }

    /// Register (or return the existing) child node for `slot`.
    pub fn child(&self, slot: usize) -> Rc<ProfNode> {
        if let Some(existing) = self.child_at(slot) {
            return existing;
        }
        let node = ProfNode::new();
        self.children.borrow_mut().push((slot, Rc::clone(&node)));
        node
    }

    /// Exclusive time: inclusive nanos minus the children's inclusive
    /// nanos (saturating — clock jitter must not underflow).
    pub fn self_nanos(&self) -> u64 {
        let children: u64 = self
            .children
            .borrow()
            .iter()
            .map(|(_, n)| n.nanos.get())
            .sum();
        self.nanos.get().saturating_sub(children)
    }
}

/// The executor's per-node observation handle: `None` = profiling off.
#[derive(Clone, Default)]
pub struct NodeObs(Option<Rc<ProfNode>>);

impl NodeObs {
    /// The disabled handle — every hook downstream is one branch.
    pub fn disabled() -> NodeObs {
        NodeObs(None)
    }

    pub fn enabled(node: Rc<ProfNode>) -> NodeObs {
        NodeObs(Some(node))
    }

    /// This operator's node, if profiling is on.
    pub fn node(&self) -> Option<&Rc<ProfNode>> {
        self.0.as_ref()
    }

    /// A handle for the child at plan-child `slot`.
    pub fn child(&self, slot: usize) -> NodeObs {
        NodeObs(self.0.as_ref().map(|n| n.child(slot)))
    }

    /// A clone of the node for spill instrumentation (`None` when off).
    pub fn spill_prof(&self) -> Option<Rc<ProfNode>> {
        self.0.clone()
    }

    /// Wrap an operator's output iterator so rows/chunks/time are
    /// recorded. Disabled: returns the iterator unchanged (no box, no
    /// allocation).
    pub fn wrap<'a>(
        &self,
        iter: Box<dyn Iterator<Item = Result<Chunk>> + 'a>,
    ) -> Box<dyn Iterator<Item = Result<Chunk>> + 'a> {
        match &self.0 {
            None => iter,
            Some(node) => Box::new(Profiled {
                inner: iter,
                node: Rc::clone(node),
            }),
        }
    }
}

/// Iterator adapter recording rows out, chunks out, and inclusive time.
struct Profiled<I> {
    inner: I,
    node: Rc<ProfNode>,
}

impl<I: Iterator<Item = Result<Chunk>>> Iterator for Profiled<I> {
    type Item = Result<Chunk>;

    fn next(&mut self) -> Option<Result<Chunk>> {
        let start = Instant::now();
        let item = self.inner.next();
        bump(&self.node.nanos, start.elapsed().as_nanos() as u64);
        if let Some(Ok(chunk)) = &item {
            bump(&self.node.rows_out, chunk.len() as u64);
            bump(&self.node.chunks_out, 1);
        }
        item
    }
}

/// A finished (or in-flight) execution profile: the root operator's
/// [`ProfNode`]. Counters are live — read them after draining the
/// stream. Partial profiles from error-path executions are valid: they
/// hold whatever was counted before the error surfaced.
#[derive(Clone)]
pub struct Profile {
    root: Rc<ProfNode>,
}

impl Profile {
    pub fn new(root: Rc<ProfNode>) -> Profile {
        Profile { root }
    }

    pub fn root(&self) -> &Rc<ProfNode> {
        &self.root
    }

    /// Rows the root operator emitted — must equal the query's
    /// materialized result size (the `explain_analyze_differential`
    /// suite asserts exactly this).
    pub fn rows_out(&self) -> u64 {
        self.root.rows_out.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_stable_and_deduplicated() {
        let root = ProfNode::new();
        let right = root.child(1);
        let left = root.child(0);
        bump(&right.rows_out, 5);
        assert_eq!(root.child_at(1).unwrap().rows_out.get(), 5);
        assert_eq!(root.child_at(0).unwrap().rows_out.get(), 0);
        assert!(Rc::ptr_eq(&root.child(0), &left));
        assert!(root.child_at(2).is_none());
    }

    #[test]
    fn disabled_handle_is_inert() {
        let obs = NodeObs::disabled();
        assert!(obs.node().is_none());
        assert!(obs.child(0).node().is_none());
        assert!(obs.spill_prof().is_none());
    }

    #[test]
    fn self_nanos_saturates() {
        let root = ProfNode::new();
        let child = root.child(0);
        root.nanos.set(10);
        child.nanos.set(25);
        assert_eq!(root.self_nanos(), 0);
        root.nanos.set(100);
        assert_eq!(root.self_nanos(), 75);
        raise(&root.peak_bytes, 7);
        raise(&root.peak_bytes, 3);
        assert_eq!(root.peak_bytes.get(), 7);
    }
}
