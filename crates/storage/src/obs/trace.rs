//! Structured span recording and the slow-query log.
//!
//! A [`Recorder`] collects named span timings through one query's life
//! (parse → lower → translate → plan-cache lookup → execute → sort —
//! whichever stages the caller wraps). Disabled recorders are free: no
//! start timestamp is taken and [`Recorder::span`] calls the closure
//! straight through — one branch, zero allocations.
//!
//! A [`SlowLog`] is a bounded ring of [`QueryTrace`]s. When its
//! threshold is set (shell `\set slowlog <ms>`, or the
//! `BELIEFDB_SLOWLOG_MS` environment variable at construction), the
//! owning engine runs queries with profiling on and hands the finished
//! trace — spans plus the full `EXPLAIN ANALYZE` report — to
//! [`SlowLog::observe`], which keeps it only if the query crossed the
//! threshold.

use super::metrics::{metrics, Metric};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Traces kept in the ring; older captures are dropped first.
const SLOWLOG_CAP: usize = 32;

/// Threshold sentinel for "slow-query log off".
const OFF: u64 = u64::MAX;

/// One timed stage of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: &'static str,
    pub nanos: u64,
}

/// A captured slow query: what ran, how long each stage took, and the
/// full execution profile (present whenever the capture came from a
/// profiled run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTrace {
    /// The statement (SQL text or the BCQ's rendering).
    pub statement: String,
    pub total_nanos: u64,
    pub spans: Vec<SpanRecord>,
    /// The `EXPLAIN ANALYZE` report of the run that was captured.
    pub profile: Option<String>,
}

/// Collects span timings for one query. Create with
/// [`Recorder::enabled`] when capturing, [`Recorder::disabled`]
/// otherwise.
#[derive(Debug)]
pub struct Recorder {
    /// `None` = disabled: spans pass through, `finish` yields nothing.
    start: Option<Instant>,
    statement: String,
    spans: Vec<SpanRecord>,
    profile: Option<String>,
}

impl Recorder {
    /// The free recorder: no timestamp, no buffer, every hook one branch.
    pub fn disabled() -> Recorder {
        Recorder {
            start: None,
            statement: String::new(),
            spans: Vec::new(),
            profile: None,
        }
    }

    pub fn enabled(statement: impl Into<String>) -> Recorder {
        Recorder {
            start: Some(Instant::now()),
            statement: statement.into(),
            spans: Vec::new(),
            profile: None,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.start.is_some()
    }

    /// Run `f`, recording its wall time under `name` (enabled only).
    pub fn span<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        if self.start.is_none() {
            return f();
        }
        let t0 = Instant::now();
        let out = f();
        self.spans.push(SpanRecord {
            name,
            nanos: t0.elapsed().as_nanos() as u64,
        });
        out
    }

    /// Attach the execution profile of the run being traced.
    pub fn set_profile(&mut self, report: String) {
        if self.is_enabled() {
            self.profile = Some(report);
        }
    }

    /// Close the trace (total time = now − creation). `None` when
    /// disabled.
    pub fn finish(self) -> Option<QueryTrace> {
        let start = self.start?;
        Some(QueryTrace {
            statement: self.statement,
            total_nanos: start.elapsed().as_nanos() as u64,
            spans: self.spans,
            profile: self.profile,
        })
    }
}

/// Ring-buffer sink for slow queries.
///
/// The threshold is an atomic so the owning engine can check "is the
/// slow log on?" before every query with a single relaxed load.
#[derive(Debug)]
pub struct SlowLog {
    threshold_nanos: AtomicU64,
    entries: Mutex<VecDeque<QueryTrace>>,
}

impl Default for SlowLog {
    fn default() -> Self {
        SlowLog::new()
    }
}

impl SlowLog {
    /// A slow log whose initial threshold comes from the
    /// `BELIEFDB_SLOWLOG_MS` environment variable (off when unset or
    /// unparsable).
    pub fn new() -> SlowLog {
        let from_env = std::env::var("BELIEFDB_SLOWLOG_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok());
        let log = SlowLog {
            threshold_nanos: AtomicU64::new(OFF),
            entries: Mutex::new(VecDeque::new()),
        };
        log.set_threshold_ms(from_env);
        log
    }

    /// Set the capture threshold (`None` = off). A threshold of 0 ms
    /// captures every query.
    pub fn set_threshold_ms(&self, ms: Option<u64>) {
        let nanos = match ms {
            None => OFF,
            Some(ms) => ms.saturating_mul(1_000_000).min(OFF - 1),
        };
        self.threshold_nanos.store(nanos, Ordering::Relaxed);
    }

    /// The current threshold in milliseconds (`None` = off).
    pub fn threshold_ms(&self) -> Option<u64> {
        match self.threshold_nanos.load(Ordering::Relaxed) {
            OFF => None,
            nanos => Some(nanos / 1_000_000),
        }
    }

    /// Whether captures are on — the one-branch fast check.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.threshold_nanos.load(Ordering::Relaxed) != OFF
    }

    /// Keep `trace` if it crossed the threshold.
    pub fn observe(&self, trace: QueryTrace) {
        let threshold = self.threshold_nanos.load(Ordering::Relaxed);
        if threshold == OFF || trace.total_nanos < threshold {
            return;
        }
        metrics().incr(Metric::SlowQueries);
        let mut entries = self.entries.lock().expect("slowlog poisoned");
        if entries.len() == SLOWLOG_CAP {
            entries.pop_front();
        }
        entries.push_back(trace);
    }

    /// The captured traces, oldest first.
    pub fn entries(&self) -> Vec<QueryTrace> {
        self.entries
            .lock()
            .expect("slowlog poisoned")
            .iter()
            .cloned()
            .collect()
    }

    pub fn clear(&self) {
        self.entries.lock().expect("slowlog poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_pass_through() {
        let mut rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        assert_eq!(rec.span("parse", || 7), 7);
        rec.set_profile("ignored".into());
        assert!(rec.finish().is_none());
    }

    #[test]
    fn enabled_recorder_collects_spans_and_profile() {
        let mut rec = Recorder::enabled("select 1");
        let v = rec.span("parse", || 41 + 1);
        assert_eq!(v, 42);
        rec.span("execute", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        rec.set_profile("Scan T".into());
        let trace = rec.finish().unwrap();
        assert_eq!(trace.statement, "select 1");
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.spans[0].name, "parse");
        assert_eq!(trace.spans[1].name, "execute");
        assert!(trace.spans[1].nanos >= 1_000_000);
        assert!(trace.total_nanos >= trace.spans[1].nanos);
        assert_eq!(trace.profile.as_deref(), Some("Scan T"));
    }

    #[test]
    fn slowlog_threshold_gates_and_ring_caps() {
        let log = SlowLog::new();
        log.set_threshold_ms(None);
        assert!(!log.enabled());
        log.observe(QueryTrace {
            statement: "q".into(),
            total_nanos: u64::MAX - 1,
            spans: vec![],
            profile: None,
        });
        assert!(log.entries().is_empty());

        log.set_threshold_ms(Some(1));
        assert!(log.enabled());
        assert_eq!(log.threshold_ms(), Some(1));
        for i in 0..(SLOWLOG_CAP + 3) {
            log.observe(QueryTrace {
                statement: format!("q{i}"),
                total_nanos: if i == 0 { 999_999 } else { 2_000_000 },
                spans: vec![],
                profile: None,
            });
        }
        let entries = log.entries();
        // q0 was under threshold; the ring keeps the newest CAP of the rest.
        assert_eq!(entries.len(), SLOWLOG_CAP);
        assert_eq!(
            entries.last().unwrap().statement,
            format!("q{}", SLOWLOG_CAP + 2)
        );
        assert!(entries.iter().all(|t| t.statement != "q0"));
        log.clear();
        assert!(log.entries().is_empty());

        // Threshold 0 captures everything.
        log.set_threshold_ms(Some(0));
        log.observe(QueryTrace {
            statement: "fast".into(),
            total_nanos: 10,
            spans: vec![],
            profile: None,
        });
        assert_eq!(log.entries().len(), 1);
    }
}
