//! The vectorized (chunk-at-a-time) streaming executor.
//!
//! [`Executor::open_chunks`] compiles a [`Plan`] into a [`ChunkStream`]
//! — a pull-based iterator of `Result<Chunk>` where a [`Chunk`] is a
//! batch of up to [`BATCH_SIZE`] rows plus an optional **selection
//! vector**. Every operator produces and consumes whole chunks, so the
//! per-row cost of the tuple-at-a-time pipeline ([`super::rows`]) — one
//! dynamic-dispatch `next()` call plus an `Expr` interpretation per row
//! — is amortized over up to `BATCH_SIZE` rows per call:
//!
//! * **Scan / Values** emit batches of table (or literal) rows; a
//!   selection directly over a scan filters *references* before cloning,
//!   so non-qualifying rows are never copied;
//! * **Selection** evaluates its predicate into the selection vector —
//!   no row is moved or cloned by a filter. `col op literal` predicates
//!   compile to a [`ColLitKernel`] with specialized fast paths for
//!   `=`/`<`/`<=` on int and string columns (no interpreter walk, no
//!   `Value` clones); everything else falls back to the row-wise `Expr`
//!   interpreter inside the chunk loop;
//! * **Projection** uses a [`Projector`] precompiled and validated once
//!   at open time when all expressions are plain columns — the per-row
//!   `Result` and bounds re-check disappear from the inner loop;
//! * **hash joins** build once, then probe an entire chunk per call;
//!   the adaptive bounded-buffer index-nested-loop path of the row
//!   executor is kept (buffer left rows up to `|table|/4`, probe the
//!   index if the left side exhausts, replay into a hash join if not);
//! * **Distinct** marks first occurrences in the selection vector;
//!   **Limit** truncates mid-chunk and stops pulling upstream — and
//!   additionally caps its subtree's batch size at `n`, so a `LIMIT 100`
//!   never drags 1024-row batches through the pipeline;
//! * **Aggregate**, **Sort**, and join build sides remain the
//!   materialization points, exactly as before.
//!
//! ## Error order is preserved
//!
//! Tuple-at-a-time execution surfaces a row's evaluation error only when
//! that row is demanded; rows before it flow through untouched. Chunked
//! operators keep that contract by **splitting** a chunk at the first
//! failing row: the successfully processed prefix is emitted first, the
//! error after it, and processing resumes behind it. A `Limit` that is
//! satisfied by the prefix therefore never observes the error — the
//! laziness-semantics differential tests pass unchanged against the row
//! executor.
//!
//! [`RowStream`] survives as a thin row-at-a-time adapter over
//! [`ChunkStream`], so every external sink written against the PR 2
//! interface (`Iterator<Item = Result<Row>>`) is source-compatible.

use super::rows::base_access;
use super::spill::{self, SpillCtx, SpillOptions};
use super::{aggregate_stream, try_index_selection};
use crate::catalog::Database;
use crate::column::{self, Column, ColumnSet};
use crate::error::Result;
use crate::expr::{CmpOp, Expr};
use crate::obs::metrics::{metrics, Metric};
use crate::obs::profile::{bump, raise, NodeObs, ProfNode, Profile};
use crate::plan::Plan;
use crate::row::{Projector, Row};
use crate::value::Value;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::sync::Arc;

/// Default number of rows per chunk. Large enough to amortize per-chunk
/// dispatch to noise, small enough that one in-flight chunk per operator
/// stays cache- and memory-friendly.
pub const BATCH_SIZE: usize = 1024;

// ---------------------------------------------------------------------------
// Buffer pool
// ---------------------------------------------------------------------------

/// Thread-local recycling pool for chunk backing buffers.
///
/// The steady state of a long pipeline is "allocate a `Vec<Row>` (and a
/// selection vector) per chunk, drop it one operator later" — pure
/// allocator churn. Operators instead take buffers from this pool and
/// consumers hand them back ([`Chunk::recycle`] / [`Chunk::drain_into`]
/// / the row adapter), so after warm-up the hot loop allocates rows,
/// never buffers. The pool is bounded (a handful of buffers per
/// thread) and thread-local, so there is no locking and no cross-query
/// pinning beyond a few dozen KiB.
mod pool {
    use crate::obs::metrics::{metrics, Metric};
    use crate::row::Row;
    use std::cell::RefCell;

    /// Max buffers of each kind kept per thread (more than the deepest
    /// pipeline keeps in flight; excess is dropped, not pooled).
    const MAX_POOLED: usize = 8;

    thread_local! {
        static ROW_BUFS: RefCell<Vec<Vec<Row>>> = const { RefCell::new(Vec::new()) };
        static SEL_BUFS: RefCell<Vec<Vec<u32>>> = const { RefCell::new(Vec::new()) };
    }

    /// An empty row buffer with at least `cap` capacity.
    pub(super) fn take_rows(cap: usize) -> Vec<Row> {
        let mut buf = match ROW_BUFS.with(|p| p.borrow_mut().pop()) {
            Some(buf) => {
                metrics().incr(Metric::PoolHits);
                buf
            }
            None => {
                metrics().incr(Metric::PoolMisses);
                Vec::new()
            }
        };
        // `reserve` is a no-op when the recycled capacity already
        // suffices; the buffer is empty, so this guarantees `cap`.
        buf.reserve(cap);
        buf
    }

    /// Return a row buffer (cleared here) to the pool.
    pub(super) fn give_rows(mut buf: Vec<Row>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        ROW_BUFS.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_POOLED {
                p.push(buf);
            }
        });
    }

    /// An empty selection-vector buffer with at least `cap` capacity.
    pub(super) fn take_sel(cap: usize) -> Vec<u32> {
        let mut buf = SEL_BUFS.with(|p| p.borrow_mut().pop()).unwrap_or_default();
        buf.reserve(cap);
        buf
    }

    /// Return a selection-vector buffer (cleared here) to the pool.
    pub(super) fn give_sel(mut buf: Vec<u32>) {
        buf.clear();
        if buf.capacity() == 0 {
            return;
        }
        SEL_BUFS.with(|p| {
            let mut p = p.borrow_mut();
            if p.len() < MAX_POOLED {
                p.push(buf);
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Chunk
// ---------------------------------------------------------------------------

/// A batch of rows with an optional selection vector, in one of two
/// physical layouts:
///
/// * **columnar** — a `(Arc<ColumnSet>, start, len)` window over shared
///   column vectors (table storage or a transposed batch). Scans emit
///   these without cloning a single row; kernels filter them by running
///   over primitive slices.
/// * **row-major** — a `Vec<Row>` of boxed values, used where rows are
///   genuinely built (projection output, join output, materialization
///   points).
///
/// `sel == None` means every row in the window is live. A filter never
/// moves or clones rows — it writes the **window-relative** indices of
/// surviving rows into `sel`; downstream operators iterate only the live
/// rows. Compaction to rows happens where boxed rows are needed anyway
/// (join probes, sort inputs, the row-stream adapter) via
/// [`Chunk::ensure_rows`].
#[derive(Debug, Clone)]
pub struct Chunk {
    repr: Repr,
    /// Strictly increasing window-relative indices of the live rows, if
    /// filtered.
    sel: Option<Vec<u32>>,
}

/// The physical layout of a chunk's backing storage.
#[derive(Debug, Clone)]
enum Repr {
    Rows(Vec<Row>),
    Cols(ColWindow),
}

/// A window into a shared columnar batch.
#[derive(Debug, Clone)]
struct ColWindow {
    cols: Arc<ColumnSet>,
    start: usize,
    len: usize,
}

impl Chunk {
    /// A row-major chunk with every row live.
    pub fn new(rows: Vec<Row>) -> Chunk {
        Chunk {
            repr: Repr::Rows(rows),
            sel: None,
        }
    }

    /// A columnar chunk: a `len`-row window into `cols` starting at
    /// `start`, every row live. No rows are copied.
    pub fn from_cols(cols: Arc<ColumnSet>, start: usize, len: usize) -> Chunk {
        debug_assert!(start + len <= cols.len());
        Chunk {
            repr: Repr::Cols(ColWindow { cols, start, len }),
            sel: None,
        }
    }

    /// Rows in the backing window, live or not.
    fn window_len(&self) -> usize {
        match &self.repr {
            Repr::Rows(rows) => rows.len(),
            Repr::Cols(w) => w.len,
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.window_len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the chunk is a columnar window (no boxed rows behind
    /// it).
    pub fn is_columnar(&self) -> bool {
        matches!(self.repr, Repr::Cols(_))
    }

    /// Convert a columnar chunk to row-major in place, materializing
    /// only the live rows (the selection vector is consumed). Row-major
    /// chunks are untouched. This is the row boundary: operators that
    /// need `&Row`s (interpreted predicates, join probes, sinks) call it
    /// once per chunk.
    pub fn ensure_rows(&mut self) {
        let Repr::Cols(w) = &self.repr else { return };
        let mut rows = pool::take_rows(self.len());
        match self.sel.take() {
            None => {
                for i in 0..w.len {
                    rows.push(w.cols.row_at(w.start + i));
                }
            }
            Some(sel) => {
                for &i in &sel {
                    rows.push(w.cols.row_at(w.start + i as usize));
                }
                pool::give_sel(sel);
            }
        }
        self.repr = Repr::Rows(rows);
    }

    /// Iterate the live rows of a **row-major** chunk in order.
    ///
    /// # Panics
    /// Panics on a columnar chunk — call [`Chunk::ensure_rows`] first
    /// (borrowed `&Row`s cannot be served from column vectors).
    pub fn iter(&self) -> ChunkIter<'_> {
        let Repr::Rows(rows) = &self.repr else {
            panic!("Chunk::iter on a columnar chunk; call ensure_rows first")
        };
        match &self.sel {
            None => ChunkIter::All(rows.iter()),
            Some(sel) => ChunkIter::Sel(rows, sel.iter()),
        }
    }

    /// Take ownership of the live rows (compacting if filtered;
    /// columnar windows materialize; discarded backing buffers go back
    /// to the thread-local pool).
    pub fn into_rows(mut self) -> Vec<Row> {
        self.ensure_rows();
        let Repr::Rows(rows) = self.repr else {
            unreachable!("ensure_rows leaves a row-major repr")
        };
        match self.sel {
            None => rows,
            Some(sel) => {
                let mut rows = rows;
                let mut out = pool::take_rows(sel.len());
                for &i in &sel {
                    out.push(std::mem::replace(&mut rows[i as usize], Row::new(vec![])));
                }
                pool::give_sel(sel);
                pool::give_rows(rows);
                out
            }
        }
    }

    /// Append the live rows to `out` and recycle the chunk's buffers —
    /// the draining counterpart of [`Chunk::into_rows`] for consumers
    /// that accumulate across chunks (collectors, derived relations).
    pub fn drain_into(mut self, out: &mut Vec<Row>) {
        let sel = self.sel.take();
        match self.repr {
            Repr::Cols(w) => match sel {
                None => {
                    out.reserve(w.len);
                    for i in 0..w.len {
                        out.push(w.cols.row_at(w.start + i));
                    }
                }
                Some(sel) => {
                    out.reserve(sel.len());
                    for &i in &sel {
                        out.push(w.cols.row_at(w.start + i as usize));
                    }
                    pool::give_sel(sel);
                }
            },
            Repr::Rows(mut rows) => match sel {
                None => {
                    out.append(&mut rows);
                    pool::give_rows(rows);
                }
                Some(sel) => {
                    out.reserve(sel.len());
                    for &i in &sel {
                        out.push(std::mem::replace(&mut rows[i as usize], Row::new(vec![])));
                    }
                    pool::give_sel(sel);
                    rows.clear();
                    pool::give_rows(rows);
                }
            },
        }
    }

    /// Drop the chunk, returning its backing buffers to the pool. Call
    /// this instead of letting a chunk fall out of scope on hot paths.
    pub fn recycle(mut self) {
        if let Some(sel) = self.sel.take() {
            pool::give_sel(sel);
        }
        if let Repr::Rows(mut rows) = self.repr {
            rows.clear();
            pool::give_rows(rows);
        }
    }

    /// Restrict the live rows by `keep`, refining the selection vector
    /// in place; no rows are moved. Columnar cells are materialized one
    /// scratch row at a time for the predicate (compiled kernels bypass
    /// this entirely via [`FilterKernel::filter_chunk`]).
    pub(crate) fn filter_in_place(&mut self, mut keep: impl FnMut(&Row) -> bool) {
        let mut sel = pool::take_sel(self.len());
        match &self.repr {
            Repr::Rows(rows) => match self.sel.take() {
                Some(old) => {
                    sel.extend(old.iter().copied().filter(|&i| keep(&rows[i as usize])));
                    pool::give_sel(old);
                }
                None => sel.extend((0..rows.len() as u32).filter(|&i| keep(&rows[i as usize]))),
            },
            Repr::Cols(w) => {
                let mut keep_at = |i: u32| keep(&w.cols.row_at(w.start + i as usize));
                match self.sel.take() {
                    Some(old) => {
                        sel.extend(old.iter().copied().filter(|&i| keep_at(i)));
                        pool::give_sel(old);
                    }
                    None => sel.extend((0..w.len as u32).filter(|&i| keep_at(i))),
                }
            }
        }
        self.sel = Some(sel);
    }

    /// Keep only the first `n` live rows (a `Limit` landing mid-chunk).
    fn truncate_live(&mut self, n: usize) {
        match &mut self.sel {
            Some(sel) => sel.truncate(n),
            None => match &mut self.repr {
                Repr::Rows(rows) => rows.truncate(n),
                Repr::Cols(w) => w.len = w.len.min(n),
            },
        }
    }

    /// Window-relative index of the `k`-th live row.
    fn live_at(&self, k: usize) -> u32 {
        match &self.sel {
            Some(sel) => sel[k],
            None => k as u32,
        }
    }

    /// Borrow the backing row at a window-relative index (row-major
    /// chunks only; columnar callers go through [`Chunk::ensure_rows`]).
    fn row(&self, i: u32) -> &Row {
        let Repr::Rows(rows) = &self.repr else {
            panic!("Chunk::row on a columnar chunk; call ensure_rows first")
        };
        &rows[i as usize]
    }

    /// Move the backing row at a window-relative index out of the chunk
    /// (row-major chunks leave a placeholder; columnar chunks
    /// materialize the row — the window is immutable shared storage).
    fn take_row(&mut self, i: u32) -> Row {
        match &mut self.repr {
            Repr::Rows(rows) => std::mem::replace(&mut rows[i as usize], Row::new(vec![])),
            Repr::Cols(w) => w.cols.row_at(w.start + i as usize),
        }
    }

    /// Clone the single cell at window-relative index `i`, column `c`,
    /// without materializing the row — how the join probe reads its key
    /// columns from a columnar window.
    fn cell(&self, i: u32, c: usize) -> Value {
        match &self.repr {
            Repr::Rows(rows) => rows[i as usize][c].clone(),
            Repr::Cols(w) => w.cols.value_at(c, w.start + i as usize),
        }
    }

    /// Build `row(i) ++ right` straight from the backing storage. For a
    /// columnar window the cells are cloned directly into the output
    /// row, skipping the intermediate left-row allocation that
    /// `ensure_rows` + [`Row::concat`] would pay per probe row.
    fn concat_row(&self, i: u32, right: &Row) -> Row {
        match &self.repr {
            Repr::Rows(rows) => rows[i as usize].concat(right),
            Repr::Cols(w) => {
                let at = w.start + i as usize;
                let mut vals = Vec::with_capacity(w.cols.arity() + right.arity());
                for c in 0..w.cols.arity() {
                    vals.push(w.cols.value_at(c, at));
                }
                vals.extend_from_slice(right.values());
                Row::new(vals)
            }
        }
    }
}

/// Iterator over a row-major chunk's live rows.
pub enum ChunkIter<'a> {
    All(std::slice::Iter<'a, Row>),
    Sel(&'a [Row], std::slice::Iter<'a, u32>),
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = &'a Row;

    fn next(&mut self) -> Option<&'a Row> {
        match self {
            ChunkIter::All(it) => it.next(),
            ChunkIter::Sel(rows, it) => it.next().map(|&i| &rows[i as usize]),
        }
    }
}

// ---------------------------------------------------------------------------
// Streams
// ---------------------------------------------------------------------------

/// A boxed iterator of fallible chunks — the wire between operators.
pub(crate) type BoxChunkIter<'a> = Box<dyn Iterator<Item = Result<Chunk>> + 'a>;

/// A pull-based stream of chunks produced by [`Executor::open_chunks`].
///
/// Chunks are computed on demand: dropping the stream early abandons the
/// rest of the computation. An `Err` item reports an evaluation error at
/// its position in row order; pulling past it is allowed and yields
/// whatever the underlying operators produce next.
pub struct ChunkStream<'a> {
    inner: BoxChunkIter<'a>,
}

impl<'a> ChunkStream<'a> {
    fn new(inner: BoxChunkIter<'a>) -> Self {
        ChunkStream { inner }
    }

    /// Drain the stream into a row vector, stopping at the first error.
    /// Chunk buffers are recycled as they are drained.
    pub fn collect_rows(self) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        for chunk in self.inner {
            chunk?.drain_into(&mut out);
        }
        Ok(out)
    }

    /// Adapt to a row-at-a-time stream (the source-compatible PR 2
    /// interface). Rows of the current chunk are handed out one by one;
    /// the next chunk is pulled only when they run out, and each
    /// exhausted chunk's buffers return to the pool.
    pub fn rows(self) -> RowStream<'a> {
        RowStream::new(Box::new(self.inner.flat_map(|item| match item {
            Ok(chunk) => ChunkRows::Rows(Some(chunk), 0),
            Err(e) => ChunkRows::Err(std::iter::once(Err(e))),
        })))
    }
}

impl Iterator for ChunkStream<'_> {
    type Item = Result<Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

/// Flattening adapter used by [`ChunkStream::rows`]: hands out the
/// chunk's live rows one by one and recycles the chunk's buffers once
/// the last row is gone (abandoned chunks just drop their buffers).
enum ChunkRows {
    Rows(Option<Chunk>, usize),
    Err(std::iter::Once<Result<Row>>),
}

impl Iterator for ChunkRows {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            ChunkRows::Rows(slot, pos) => {
                let chunk = slot.as_mut()?;
                if *pos < chunk.len() {
                    let i = chunk.live_at(*pos);
                    *pos += 1;
                    Some(Ok(chunk.take_row(i)))
                } else {
                    slot.take().expect("checked above").recycle();
                    None
                }
            }
            ChunkRows::Err(it) => it.next(),
        }
    }
}

/// A pull-based stream of rows: the row-at-a-time adapter over
/// [`ChunkStream`] (and the native interface of the tuple-at-a-time
/// executor in [`super::rows`]).
///
/// Rows are computed on demand: dropping the stream early (or wrapping it
/// in a `take`) abandons the rest of the computation. An `Err` item
/// reports an evaluation error; pulling past it is allowed but yields
/// whatever the underlying operators produce next.
pub struct RowStream<'a> {
    inner: Box<dyn Iterator<Item = Result<Row>> + 'a>,
}

impl<'a> RowStream<'a> {
    pub(crate) fn new(inner: Box<dyn Iterator<Item = Result<Row>> + 'a>) -> Self {
        RowStream { inner }
    }

    /// Drain the stream into a vector, stopping at the first error.
    pub fn collect_rows(self) -> Result<Vec<Row>> {
        self.inner.collect()
    }
}

impl Iterator for RowStream<'_> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next()
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// The physical layout leaf scans emit.
///
/// [`ChunkLayout::Columnar`] (the default) slices table storage into
/// shared columnar windows — a scan clones zero rows, and compiled
/// filter kernels run over primitive column slices. [`ChunkLayout::Rows`]
/// reproduces the previous chunk executor (rows cloned into row-major
/// batches at the leaf), kept for benchmarking and as a differential
/// voice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkLayout {
    #[default]
    Columnar,
    Rows,
}

/// Entry point of the vectorized executor.
pub struct Executor<'a> {
    db: &'a Database,
    batch: usize,
    spill: SpillOptions,
    layout: ChunkLayout,
}

impl<'a> Executor<'a> {
    pub fn new(db: &'a Database) -> Self {
        Executor {
            db,
            batch: BATCH_SIZE,
            spill: SpillOptions::unlimited(),
            layout: ChunkLayout::default(),
        }
    }

    /// An executor with an explicit batch size (benchmark sweeps and
    /// memory-constrained embedders).
    pub fn with_batch_size(db: &'a Database, batch: usize) -> Self {
        Executor {
            batch: batch.max(1),
            ..Executor::new(db)
        }
    }

    /// An executor whose materialization points spill to disk under the
    /// given memory budget (see [`super::spill`]). With
    /// [`SpillOptions::unlimited`] this is exactly [`Executor::new`].
    pub fn with_spill(db: &'a Database, spill: SpillOptions) -> Self {
        Executor {
            spill,
            ..Executor::new(db)
        }
    }

    /// Replace this executor's spill options (builder style).
    pub fn spill(mut self, spill: SpillOptions) -> Self {
        self.spill = spill;
        self
    }

    /// Choose the leaf scan layout (builder style); see [`ChunkLayout`].
    pub fn layout(mut self, layout: ChunkLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Open a plan as a chunk stream. Arities are validated once up
    /// front; materialization points (aggregate/sort inputs, join build
    /// sides) do their buffering eagerly here, pipelined operators do no
    /// work until the stream is pulled.
    pub fn open_chunks(&self, plan: &'a Plan) -> Result<ChunkStream<'a>> {
        plan.arity(self.db)?;
        // Last verification boundary before layout threading: whatever
        // plan reaches the executor — optimized, cached, or hand-built —
        // is checked once more with the verifier armed.
        crate::sema::verify_plan_if_enabled(self.db, plan, "exec_open")?;
        let spill = SpillCtx::for_plan(&self.spill, plan);
        Ok(ChunkStream::new(open_node(
            self.db,
            plan,
            Batch::new(self.batch, self.layout),
            &spill,
            &NodeObs::disabled(),
        )?))
    }

    /// Open a plan with per-operator profiling on: every operator's
    /// rows/chunks/time (and any spill activity) is recorded into the
    /// returned [`Profile`], whose counters are live — read them after
    /// draining the stream. This is the `EXPLAIN ANALYZE` entry point.
    pub fn open_chunks_profiled(&self, plan: &'a Plan) -> Result<(ChunkStream<'a>, Profile)> {
        plan.arity(self.db)?;
        crate::sema::verify_plan_if_enabled(self.db, plan, "exec_open_profiled")?;
        let spill = SpillCtx::for_plan(&self.spill, plan);
        let root = ProfNode::new();
        let stream = ChunkStream::new(open_node(
            self.db,
            plan,
            Batch::new(self.batch, self.layout),
            &spill,
            &NodeObs::enabled(Rc::clone(&root)),
        )?);
        Ok((stream, Profile::new(root)))
    }

    /// Open a plan as a row stream (the chunked pipeline behind the
    /// row-at-a-time adapter).
    pub fn open(&self, plan: &'a Plan) -> Result<RowStream<'a>> {
        Ok(self.open_chunks(plan)?.rows())
    }
}

/// Convenience: open `plan` against `db` as a [`RowStream`] backed by the
/// vectorized executor.
pub fn stream<'a>(db: &'a Database, plan: &'a Plan) -> Result<RowStream<'a>> {
    Executor::new(db).open(plan)
}

/// Convenience: open `plan` against `db` as a [`ChunkStream`].
pub fn stream_chunks<'a>(db: &'a Database, plan: &'a Plan) -> Result<ChunkStream<'a>> {
    Executor::new(db).open_chunks(plan)
}

// ---------------------------------------------------------------------------
// Filter kernels
// ---------------------------------------------------------------------------

/// A compiled `column op literal` filter: the columnar kernel a chunked
/// `Selection` runs instead of interpreting the `Expr` tree per row.
///
/// The specialized variants replicate [`Value`]'s cross-type total order
/// (`Null < Bool < Int < Str`) exactly, so a kernel and the interpreter
/// always agree. Comparisons never yield non-boolean values, so kernels
/// are infallible.
pub(crate) enum ColLitKernel {
    EqInt(usize, i64),
    LtInt(usize, i64),
    LeInt(usize, i64),
    EqStr(usize, Arc<str>),
    LtStr(usize, Arc<str>),
    LeStr(usize, Arc<str>),
    /// Any other `column op literal` comparison: still a tight loop over
    /// [`CmpOp::eval`], just without the specialized match.
    Cmp(usize, CmpOp, Value),
}

impl ColLitKernel {
    /// Compile a predicate if it is a single `col op lit` comparison (in
    /// either operand order).
    pub(crate) fn compile(pred: &Expr) -> Option<ColLitKernel> {
        let Expr::Cmp(op, a, b) = pred else {
            return None;
        };
        let (col, lit, op) = match (a.as_ref(), b.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) => (*c, v, *op),
            (Expr::Lit(v), Expr::Col(c)) => (*c, v, op.flip()),
            _ => return None,
        };
        Some(match (op, lit) {
            (CmpOp::Eq, Value::Int(i)) => ColLitKernel::EqInt(col, *i),
            (CmpOp::Lt, Value::Int(i)) => ColLitKernel::LtInt(col, *i),
            (CmpOp::Le, Value::Int(i)) => ColLitKernel::LeInt(col, *i),
            (CmpOp::Eq, Value::Str(s)) => ColLitKernel::EqStr(col, Arc::clone(s)),
            (CmpOp::Lt, Value::Str(s)) => ColLitKernel::LtStr(col, Arc::clone(s)),
            (CmpOp::Le, Value::Str(s)) => ColLitKernel::LeStr(col, Arc::clone(s)),
            _ => ColLitKernel::Cmp(col, op, lit.clone()),
        })
    }

    /// Deterministic label for `EXPLAIN`'s `[vectorized]` annotation.
    pub(crate) fn label(&self) -> &'static str {
        match self {
            ColLitKernel::EqInt(..) => "eq:int",
            ColLitKernel::LtInt(..) => "lt:int",
            ColLitKernel::LeInt(..) => "le:int",
            ColLitKernel::EqStr(..) => "eq:str",
            ColLitKernel::LtStr(..) => "lt:str",
            ColLitKernel::LeStr(..) => "le:str",
            ColLitKernel::Cmp(..) => "cmp:lit",
        }
    }

    /// The column this kernel reads.
    fn col(&self) -> usize {
        match self {
            ColLitKernel::EqInt(c, _)
            | ColLitKernel::LtInt(c, _)
            | ColLitKernel::LeInt(c, _)
            | ColLitKernel::EqStr(c, _)
            | ColLitKernel::LtStr(c, _)
            | ColLitKernel::LeStr(c, _)
            | ColLitKernel::Cmp(c, _, _) => *c,
        }
    }

    /// The kernel's predicate on one boxed cell value (the row-major
    /// path, and `Mixed` columns of the columnar path).
    #[inline]
    fn test_value(&self, v: &Value) -> bool {
        match self {
            ColLitKernel::EqInt(_, k) => matches!(v, Value::Int(x) if x == k),
            // Cross-type order: Null and Bool rank below Int, Str above.
            ColLitKernel::LtInt(_, k) => match v {
                Value::Int(x) => x < k,
                Value::Null | Value::Bool(_) => true,
                Value::Str(_) => false,
            },
            ColLitKernel::LeInt(_, k) => match v {
                Value::Int(x) => x <= k,
                Value::Null | Value::Bool(_) => true,
                Value::Str(_) => false,
            },
            ColLitKernel::EqStr(_, s) => matches!(v, Value::Str(x) if **x == **s),
            // Null, Bool, and Int all rank below Str.
            ColLitKernel::LtStr(_, s) => match v {
                Value::Str(x) => **x < **s,
                _ => true,
            },
            ColLitKernel::LeStr(_, s) => match v {
                Value::Str(x) => **x <= **s,
                _ => true,
            },
            ColLitKernel::Cmp(_, op, lit) => op.eval(v, lit),
        }
    }

    #[inline]
    pub(crate) fn test(&self, row: &Row) -> bool {
        self.test_value(&row[self.col()])
    }

    /// One selection-vector pass over a columnar window: retain the
    /// window-relative indices in `sel` whose cell satisfies the kernel,
    /// reading primitive slices directly — no `Value` is materialized on
    /// any typed column. The per-column-type arms replicate the
    /// cross-type total order (`Null < Bool < Int < Str`) exactly, so a
    /// whole pass can collapse to "keep everything" (e.g. `< int` over a
    /// `Bool` column) or "drop everything" (`= str` over an `Int`
    /// column) without touching a single cell.
    fn filter_sel(&self, cols: &ColumnSet, start: usize, sel: &mut Vec<u32>) {
        let col = cols.col(self.col());
        match (self, col) {
            // --- int-literal kernels ---
            (ColLitKernel::EqInt(_, k), Column::Int { vals, validity }) => sel.retain(|&i| {
                let j = start + i as usize;
                is_valid(validity, j) && vals[j] == *k
            }),
            (ColLitKernel::EqInt(..), Column::Mixed(vals)) => self.retain_mixed(vals, start, sel),
            // NULL, Bool, and Str cells never equal an int literal.
            (ColLitKernel::EqInt(..), _) => sel.clear(),
            (ColLitKernel::LtInt(_, k), Column::Int { vals, validity }) => sel.retain(|&i| {
                let j = start + i as usize;
                // NULL ranks below every int, so invalid cells pass.
                !is_valid(validity, j) || vals[j] < *k
            }),
            (ColLitKernel::LeInt(_, k), Column::Int { vals, validity }) => sel.retain(|&i| {
                let j = start + i as usize;
                !is_valid(validity, j) || vals[j] <= *k
            }),
            // NULL and Bool cells all rank below any int literal.
            (
                ColLitKernel::LtInt(..) | ColLitKernel::LeInt(..),
                Column::Null(_) | Column::Bool { .. },
            ) => {}
            // Str cells rank above ints: only the NULL cells pass.
            (ColLitKernel::LtInt(..) | ColLitKernel::LeInt(..), Column::Str { validity, .. }) => {
                match validity {
                    None => sel.clear(),
                    Some(v) => sel.retain(|&i| !v.get(start + i as usize)),
                }
            }
            (ColLitKernel::LtInt(..) | ColLitKernel::LeInt(..), Column::Mixed(vals)) => {
                self.retain_mixed(vals, start, sel)
            }
            // --- string-literal kernels ---
            // `= lit` over a dictionary column: one binary search, then a
            // code-equality loop.
            (
                ColLitKernel::EqStr(_, s),
                Column::Str {
                    dict,
                    codes,
                    validity,
                },
            ) => match column::dict_code(dict, s) {
                None => sel.clear(),
                Some(code) => sel.retain(|&i| {
                    let j = start + i as usize;
                    is_valid(validity, j) && codes[j] == code
                }),
            },
            (ColLitKernel::EqStr(..), Column::Mixed(vals)) => self.retain_mixed(vals, start, sel),
            (ColLitKernel::EqStr(..), _) => sel.clear(),
            // `< lit` / `<= lit`: the sorted dictionary turns the string
            // comparison into a code bound (code order is string order).
            (
                ColLitKernel::LtStr(_, s),
                Column::Str {
                    dict,
                    codes,
                    validity,
                },
            ) => {
                let bound = column::dict_lower_bound(dict, s);
                sel.retain(|&i| {
                    let j = start + i as usize;
                    !is_valid(validity, j) || codes[j] < bound
                });
            }
            (
                ColLitKernel::LeStr(_, s),
                Column::Str {
                    dict,
                    codes,
                    validity,
                },
            ) => {
                let bound = column::dict_upper_bound(dict, s);
                sel.retain(|&i| {
                    let j = start + i as usize;
                    !is_valid(validity, j) || codes[j] < bound
                });
            }
            (ColLitKernel::LtStr(..) | ColLitKernel::LeStr(..), Column::Mixed(vals)) => {
                self.retain_mixed(vals, start, sel)
            }
            // NULL, Bool, and Int cells all rank below any string.
            (ColLitKernel::LtStr(..) | ColLitKernel::LeStr(..), _) => {}
            // --- generic comparison ---
            (ColLitKernel::Cmp(_, op, v), Column::Mixed(vals)) => {
                sel.retain(|&i| op.eval(&vals[start + i as usize], v))
            }
            (ColLitKernel::Cmp(c, op, v), _) => {
                sel.retain(|&i| op.eval(&cols.value_at(*c, start + i as usize), v))
            }
        }
    }

    /// The `Mixed`-column pass: boxed cells, same per-value predicate as
    /// the row-major path.
    fn retain_mixed(&self, vals: &[Value], start: usize, sel: &mut Vec<u32>) {
        sel.retain(|&i| self.test_value(&vals[start + i as usize]));
    }
}

/// Validity check for an unboxed column: `None` means every cell valid.
#[inline]
fn is_valid(validity: &Option<column::Bitmap>, j: usize) -> bool {
    validity.as_ref().is_none_or(|v| v.get(j))
}

/// A compiled filter: either one `col op lit` kernel or a **fused
/// conjunction** of them. An `AND` whose every conjunct is a col-op-lit
/// comparison no longer falls back to the row-wise `Expr` interpreter —
/// it runs as a sequence of selection-vector kernel passes, each pass
/// refining the survivors of the previous one (so later kernels only
/// visit rows the earlier ones kept).
pub(crate) enum FilterKernel {
    One(ColLitKernel),
    And(Vec<ColLitKernel>),
}

impl FilterKernel {
    /// Compile a predicate if it is a col-op-lit comparison or a flat
    /// conjunction of them.
    pub(crate) fn compile(pred: &Expr) -> Option<FilterKernel> {
        if let Some(k) = ColLitKernel::compile(pred) {
            return Some(FilterKernel::One(k));
        }
        if let Expr::And(parts) = pred {
            if parts.len() >= 2 {
                let kernels: Option<Vec<ColLitKernel>> =
                    parts.iter().map(ColLitKernel::compile).collect();
                return kernels.map(FilterKernel::And);
            }
        }
        None
    }

    /// Deterministic label for `EXPLAIN` (`eq:int`,
    /// `and[eq:int,lt:int]`, ...).
    pub(crate) fn label(&self) -> String {
        match self {
            FilterKernel::One(k) => k.label().to_string(),
            FilterKernel::And(ks) => {
                let parts: Vec<&str> = ks.iter().map(|k| k.label()).collect();
                format!("and[{}]", parts.join(","))
            }
        }
    }

    #[inline]
    pub(crate) fn test(&self, row: &Row) -> bool {
        match self {
            FilterKernel::One(k) => k.test(row),
            FilterKernel::And(ks) => ks.iter().all(|k| k.test(row)),
        }
    }

    /// Run the kernel over a chunk as selection-vector passes: one pass
    /// for a single comparison, one per conjunct for a fused `AND`.
    /// Columnar chunks run the passes over primitive column slices
    /// ([`ColLitKernel::filter_sel`]); later `AND` passes only visit the
    /// survivors of earlier ones.
    fn filter_chunk(&self, chunk: &mut Chunk) {
        if let Repr::Cols(w) = &chunk.repr {
            let mut sel = match chunk.sel.take() {
                Some(sel) => sel,
                None => {
                    let mut sel = pool::take_sel(w.len);
                    sel.extend(0..w.len as u32);
                    sel
                }
            };
            match self {
                FilterKernel::One(k) => k.filter_sel(&w.cols, w.start, &mut sel),
                FilterKernel::And(ks) => {
                    for k in ks {
                        if sel.is_empty() {
                            break;
                        }
                        k.filter_sel(&w.cols, w.start, &mut sel);
                    }
                }
            }
            chunk.sel = Some(sel);
            return;
        }
        match self {
            FilterKernel::One(k) => chunk.filter_in_place(|row| k.test(row)),
            FilterKernel::And(ks) => {
                for k in ks {
                    if chunk.is_empty() {
                        break;
                    }
                    chunk.filter_in_place(|row| k.test(row));
                }
            }
        }
    }
}

/// The kernel label a chunked `Selection` would use for this predicate,
/// or `None` when it falls back to the row-wise interpreter. Used by
/// `EXPLAIN` so the rendered plan reports what the executor will do.
pub(crate) fn selection_kernel_label(pred: &Expr) -> Option<String> {
    FilterKernel::compile(pred).map(|k| k.label())
}

// ---------------------------------------------------------------------------
// Plan compilation
// ---------------------------------------------------------------------------

/// The batch size in effect while compiling a subtree.
///
/// `configured` is the executor's batch size ([`Executor::with_batch_size`]
/// or [`BATCH_SIZE`]); `effective` is what pipelined operators in the
/// current subtree actually use — a `Limit n` caps it at `n` so
/// first-rows queries pull right-sized batches. Materialization points
/// (Aggregate, Sort, join build and cross-join right sides) consume
/// their whole input regardless of any Limit above, so they restore
/// `effective` to `configured` — never to a hard-coded constant, which
/// would override the embedder's configured bound.
#[derive(Clone, Copy)]
struct Batch {
    configured: usize,
    effective: usize,
    /// The leaf scan layout in effect for the whole tree.
    layout: ChunkLayout,
}

impl Batch {
    fn new(configured: usize, layout: ChunkLayout) -> Batch {
        Batch {
            configured,
            effective: configured,
            layout,
        }
    }

    /// Cap the effective size (a `Limit n` subtree).
    fn capped(self, n: usize) -> Batch {
        Batch {
            effective: self.effective.min(n.max(1)),
            ..self
        }
    }

    /// Restore the configured size (a materialization point's input).
    fn full(self) -> Batch {
        Batch {
            effective: self.configured,
            ..self
        }
    }
}

fn open_node<'a>(
    db: &'a Database,
    plan: &'a Plan,
    batch: Batch,
    spill: &SpillCtx,
    obs: &NodeObs,
) -> Result<BoxChunkIter<'a>> {
    // Children are opened under `obs.child(slot)` where `slot` is the
    // plan-child index (left = 0, right = 1, union input = i); the
    // profile renderer walks plan and profile in slot lockstep.
    let iter: BoxChunkIter<'a> = match plan {
        Plan::Scan { table } => match db.table(table) {
            Ok(t) => {
                t.note_seq_scan(t.len() as u64);
                match batch.layout {
                    ChunkLayout::Columnar => chunked_cols(t.columnar(), batch.effective),
                    ChunkLayout::Rows => chunked_refs(t.iter().map(|(_, r)| r), batch.effective),
                }
            }
            // Virtual (`sys.*`) relation: snapshot the provider's rows
            // into a ColumnSet at open time and stream it through the
            // same chunked path as a base-table scan.
            Err(e) => {
                let Some(vt) = db.virtual_table(table) else {
                    return Err(e);
                };
                let rows = vt.rows(db);
                let refs: Vec<&Row> = rows.iter().collect();
                let set = Arc::new(ColumnSet::from_rows(vt.schema().arity(), &refs));
                chunked_cols(set, batch.effective)
            }
        },
        Plan::Values { rows, .. } => chunked_refs(rows.iter(), batch.effective),
        Plan::Selection { input, predicate } => {
            open_selection(db, input, predicate, batch, spill, obs)?
        }
        Plan::Projection { input, exprs } => {
            let arity = input.arity(db)?;
            let input = open_node(db, input, batch, spill, &obs.child(0))?;
            // All-column projections compile to an infallible Projector
            // validated here, once; the per-row Result disappears.
            let cols: Option<Vec<usize>> = exprs
                .iter()
                .map(|e| match e {
                    Expr::Col(c) => Some(*c),
                    _ => None,
                })
                .collect();
            if let Some(cols) = cols {
                let proj = Projector::new(cols, arity)?;
                Box::new(ProjectChunks { input, proj })
            } else {
                map_chunks(input, batch.effective, move |row, out| {
                    let mut vals = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        vals.push(e.eval(row)?);
                    }
                    out.push(Row::new(vals));
                    Ok(())
                })
            }
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => open_join(db, left, right, on, residual.as_ref(), batch, spill, obs)?,
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => open_anti_join(db, left, right, on, residual.as_ref(), batch, spill, obs)?,
        Plan::Distinct { input } => {
            let input = open_node(db, input, batch, spill, &obs.child(0))?;
            match spill.per_point {
                // Unlimited: the pre-existing streaming seen-set.
                None => {
                    let mut seen: HashSet<Row> = HashSet::new();
                    filter_chunks(input, move |row| Ok(seen.insert(row.clone())))
                }
                // Budgeted: stream identically while the seen-set fits,
                // partition to disk past the budget.
                Some(budget) => Box::new(spill::SpillDistinct::new(
                    input,
                    budget,
                    &spill.dir,
                    batch.effective,
                    obs.spill_prof(),
                )),
            }
        }
        Plan::Union { inputs } => {
            let mut streams = Vec::with_capacity(inputs.len());
            for (i, p) in inputs.iter().enumerate() {
                streams.push(open_node(db, p, batch, spill, &obs.child(i))?);
            }
            Box::new(streams.into_iter().flatten())
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Materialization point: the accumulators must see every input
            // row, but only one row per group is ever held. The input runs
            // at the executor's full batch size regardless of any Limit
            // above (the aggregate consumes everything anyway).
            let input = open_node(db, input, batch.full(), spill, &obs.child(0))?;
            match spill.per_point {
                None => {
                    let rows = aggregate_stream(ChunkStream::new(input).rows(), group_by, aggs)?;
                    chunked_owned(rows, batch.effective)
                }
                // Budgeted: partial accumulators partition to disk when
                // the group table exceeds its share.
                Some(budget) => spill::grace_aggregate(
                    input,
                    group_by,
                    aggs,
                    budget,
                    &spill.dir,
                    batch.effective,
                    obs.spill_prof(),
                )?,
            }
        }
        Plan::Sort { input, by } => {
            // Materialization point.
            let input = open_node(db, input, batch.full(), spill, &obs.child(0))?;
            match spill.per_point {
                None => {
                    let mut rows = ChunkStream::new(input).collect_rows()?;
                    rows.sort_by(|a, b| spill::cmp_by(by, a, b));
                    chunked_owned(rows, batch.effective)
                }
                // Budgeted: sorted run generation + k-way merge. Produces
                // the identical (stable) order.
                Some(budget) => spill::external_sort(
                    input,
                    by,
                    budget,
                    &spill.dir,
                    batch.effective,
                    obs.spill_prof(),
                )?,
            }
        }
        Plan::Limit { input, n } => {
            // Cap the subtree's batch size at n: a first-rows query pulls
            // one right-sized batch through the pipeline instead of a full
            // one (materialization points below reset to the full batch).
            let input = open_node(db, input, batch.capped(*n), spill, &obs.child(0))?;
            Box::new(LimitChunks {
                input,
                remaining: *n,
            })
        }
    };
    Ok(obs.wrap(iter))
}

/// First-chunk size of the leaf ramp-up: scans and literal relations
/// start with a small batch and double up to the configured size, so a
/// first-rows consumer (`Limit`, an abandoned stream) touches tens of
/// rows, not a full batch, while steady-state throughput still runs at
/// `batch`.
const RAMP_START: usize = 32;

/// Clone an iterator of borrowed rows into batches, lazily, ramping the
/// chunk size up from [`RAMP_START`] to `batch`. Batch buffers come
/// from the thread-local pool.
fn chunked_refs<'a>(iter: impl Iterator<Item = &'a Row> + 'a, batch: usize) -> BoxChunkIter<'a> {
    let mut iter = iter.peekable();
    let mut size = RAMP_START.min(batch);
    Box::new(std::iter::from_fn(move || {
        iter.peek()?;
        let mut rows = pool::take_rows(size);
        rows.extend(iter.by_ref().take(size).cloned());
        size = (size * 2).min(batch);
        metrics().add(Metric::RowsScanned, rows.len() as u64);
        Some(Ok(Chunk::new(rows)))
    }))
}

/// Slice a columnar batch into window chunks without touching a single
/// row, ramping the chunk size up from [`RAMP_START`] to `batch` exactly
/// like [`chunked_refs`]. Each chunk is an `Arc` clone plus two offsets.
fn chunked_cols<'a>(cols: Arc<ColumnSet>, batch: usize) -> BoxChunkIter<'a> {
    let total = cols.len();
    let mut start = 0usize;
    let mut size = RAMP_START.min(batch);
    Box::new(std::iter::from_fn(move || {
        if start >= total {
            return None;
        }
        let n = size.min(total - start);
        let chunk = Chunk::from_cols(Arc::clone(&cols), start, n);
        start += n;
        size = (size * 2).min(batch);
        metrics().add(Metric::RowsScanned, n as u64);
        metrics().incr(Metric::ColumnarChunks);
        Some(Ok(chunk))
    }))
}

/// Batch an owned row vector (materialization-point outputs). A vector
/// that fits one batch is passed through as-is — no copy, no split.
pub(crate) fn chunked_owned<'a>(rows: Vec<Row>, batch: usize) -> BoxChunkIter<'a> {
    if rows.len() <= batch {
        if rows.is_empty() {
            return Box::new(std::iter::empty());
        }
        return Box::new(std::iter::once(Ok(Chunk::new(rows))));
    }
    let mut iter = rows.into_iter().peekable();
    Box::new(std::iter::from_fn(move || {
        iter.peek()?;
        let mut rows = pool::take_rows(batch);
        rows.extend(iter.by_ref().take(batch));
        Some(Ok(Chunk::new(rows)))
    }))
}

// ---------------------------------------------------------------------------
// Selection
// ---------------------------------------------------------------------------

fn open_selection<'a>(
    db: &'a Database,
    input: &'a Plan,
    predicate: &'a Expr,
    batch: Batch,
    spill: &SpillCtx,
    obs: &NodeObs,
) -> Result<BoxChunkIter<'a>> {
    // Index access path: a selection directly over a scan whose predicate
    // pins indexed columns fetches candidates through the index (a small,
    // already-filtered set). Virtual (`sys.*`) scans have no indexes or
    // columnar cache: they fall through to the generic path below.
    if let Plan::Scan { table } = input {
        if let Ok(t) = db.table(table) {
            if let Some(rows) = try_index_selection(t, predicate)? {
                if let Some(n) = obs.node() {
                    bump(&n.rows_in, rows.len() as u64);
                }
                return Ok(chunked_owned(rows, batch.effective));
            }
            t.note_seq_scan(t.len() as u64);
            // Filter-over-scan fusion. Columnar layout: slice the table's
            // column vectors into windows and run the kernel's
            // selection-vector passes over primitive slices — no row is
            // cloned or materialized anywhere, survivors included. Row
            // layout (the previous executor, kept for benchmarking): test
            // table rows *by reference* and clone only the survivors.
            if let Some(kernel) = FilterKernel::compile(predicate) {
                let prof = obs.spill_prof();
                match batch.layout {
                    ChunkLayout::Columnar => {
                        return Ok(Box::new(
                            chunked_cols(t.columnar(), batch.effective).filter_map(move |item| {
                                match item {
                                    Ok(mut chunk) => {
                                        if let Some(n) = &prof {
                                            bump(&n.rows_in, chunk.len() as u64);
                                            bump(&n.kernel_rows, chunk.len() as u64);
                                        }
                                        kernel.filter_chunk(&mut chunk);
                                        if chunk.is_empty() {
                                            chunk.recycle();
                                            return None;
                                        }
                                        Some(Ok(chunk))
                                    }
                                    Err(e) => Some(Err(e)),
                                }
                            }),
                        ));
                    }
                    ChunkLayout::Rows => {
                        return Ok(chunked_refs(
                            t.iter().map(|(_, r)| r).filter(move |r| {
                                if let Some(n) = &prof {
                                    bump(&n.rows_in, 1);
                                    bump(&n.kernel_rows, 1);
                                }
                                kernel.test(r)
                            }),
                            batch.effective,
                        ));
                    }
                }
            }
            let refs = t.iter().map(|(_, r)| r);
            let prof = obs.spill_prof();
            return Ok(filtered_ref_scan(
                refs.inspect(move |_| {
                    if let Some(n) = &prof {
                        bump(&n.rows_in, 1);
                        bump(&n.fallback_rows, 1);
                    }
                }),
                predicate,
                batch.effective,
            ));
        }
    }
    let input = open_node(db, input, batch, spill, &obs.child(0))?;
    if let Some(kernel) = FilterKernel::compile(predicate) {
        // Kernel filters are infallible: pure selection-vector updates
        // (a fused AND runs one pass per conjunct).
        let prof = obs.spill_prof();
        return Ok(Box::new(input.filter_map(move |item| match item {
            Ok(mut chunk) => {
                if let Some(n) = &prof {
                    bump(&n.rows_in, chunk.len() as u64);
                    bump(&n.kernel_rows, chunk.len() as u64);
                }
                kernel.filter_chunk(&mut chunk);
                (!chunk.is_empty()).then_some(Ok(chunk))
            }
            Err(e) => Some(Err(e)),
        })));
    }
    let prof = obs.spill_prof();
    Ok(filter_chunks(input, move |row| {
        if let Some(n) = &prof {
            bump(&n.rows_in, 1);
            bump(&n.fallback_rows, 1);
        }
        predicate.eval_bool(row)
    }))
}

/// Interpreter filter over borrowed scan rows with error splitting: rows
/// before a failing row are emitted (already cloned) ahead of the error,
/// and scanning resumes behind it.
fn filtered_ref_scan<'a>(
    refs: impl Iterator<Item = &'a Row> + 'a,
    predicate: &'a Expr,
    batch: usize,
) -> BoxChunkIter<'a> {
    let mut refs = refs.peekable();
    let mut pending: VecDeque<Result<Chunk>> = VecDeque::new();
    Box::new(std::iter::from_fn(move || loop {
        if let Some(item) = pending.pop_front() {
            return Some(item);
        }
        refs.peek()?;
        let mut out: Vec<Row> = pool::take_rows(batch.min(RAMP_START));
        for row in refs.by_ref() {
            match predicate.eval_bool(row) {
                Ok(true) => {
                    out.push(row.clone());
                    if out.len() >= batch {
                        break;
                    }
                }
                Ok(false) => {}
                Err(e) => {
                    if !out.is_empty() {
                        pending.push_back(Ok(Chunk::new(std::mem::take(&mut out))));
                    }
                    pending.push_back(Err(e));
                    break;
                }
            }
        }
        if !out.is_empty() {
            pending.push_back(Ok(Chunk::new(out)));
        }
    }))
}

/// Selection-vector filter with a fallible per-row predicate.
///
/// Clean chunks (the overwhelmingly common case) are filtered in place —
/// only the selection vector is written. A chunk containing failing rows
/// is split: passing rows before each error are emitted (cloned) ahead
/// of it, preserving tuple-at-a-time error order.
fn filter_chunks<'a>(
    input: BoxChunkIter<'a>,
    mut pred: impl FnMut(&Row) -> Result<bool> + 'a,
) -> BoxChunkIter<'a> {
    let mut input = input;
    let mut pending: VecDeque<Result<Chunk>> = VecDeque::new();
    Box::new(std::iter::from_fn(move || loop {
        if let Some(item) = pending.pop_front() {
            return Some(item);
        }
        match input.next()? {
            Err(e) => return Some(Err(e)),
            Ok(mut chunk) => {
                // Fallible predicates want `&Row`s: materialize columnar
                // windows once per chunk (live rows only).
                chunk.ensure_rows();
                let n = chunk.len();
                let mut sel = pool::take_sel(n);
                let mut first_err = None;
                let mut k = 0;
                while k < n {
                    let i = chunk.live_at(k);
                    match pred(chunk.row(i)) {
                        Ok(true) => sel.push(i),
                        Ok(false) => {}
                        Err(e) => {
                            first_err = Some(e);
                            k += 1;
                            break;
                        }
                    }
                    k += 1;
                }
                let Some(first_err) = first_err else {
                    // Clean chunk (the overwhelmingly common case):
                    // only the selection vector changes hands.
                    if sel.is_empty() {
                        pool::give_sel(sel);
                        chunk.recycle();
                        continue;
                    }
                    if let Some(old) = chunk.sel.take() {
                        pool::give_sel(old);
                    }
                    chunk.sel = Some(sel);
                    return Some(Ok(chunk));
                };
                // Rare error path: emit the passing prefix (rows moved
                // out — the chunk is recycled below), then the error,
                // then keep splitting the remainder in row order.
                let emit_segment =
                    |sel: &mut Vec<u32>,
                     chunk: &mut Chunk,
                     pending: &mut VecDeque<Result<Chunk>>| {
                        if sel.is_empty() {
                            return;
                        }
                        let mut rows = pool::take_rows(sel.len());
                        rows.extend(sel.drain(..).map(|i| chunk.take_row(i)));
                        pending.push_back(Ok(Chunk::new(rows)));
                    };
                emit_segment(&mut sel, &mut chunk, &mut pending);
                pending.push_back(Err(first_err));
                while k < n {
                    let i = chunk.live_at(k);
                    match pred(chunk.row(i)) {
                        Ok(true) => sel.push(i),
                        Ok(false) => {}
                        Err(e) => {
                            emit_segment(&mut sel, &mut chunk, &mut pending);
                            pending.push_back(Err(e));
                        }
                    }
                    k += 1;
                }
                emit_segment(&mut sel, &mut chunk, &mut pending);
                pool::give_sel(sel);
                chunk.recycle();
            }
        }
    }))
}

/// Fallible per-row flat-map over chunks: `f` pushes zero or more output
/// rows per live input row. Output flushes the moment a `batch`-sized
/// chunk fills — **mid-input-chunk** — and processing resumes from the
/// saved position on the next pull, so a satisfied `Limit` downstream
/// never pays for the rest of the batch (first-rows latency does not
/// regress under chunking). An error splits the output so rows produced
/// before it are emitted first (tuple-at-a-time error order).
fn map_chunks<'a>(
    input: BoxChunkIter<'a>,
    batch: usize,
    mut f: impl FnMut(&Row, &mut Vec<Row>) -> Result<()> + 'a,
) -> BoxChunkIter<'a> {
    map_cells(input, batch, true, move |chunk, i, out| {
        f(chunk.row(i), out)
    })
}

/// Like [`map_chunks`] but hands the closure `(chunk, window index)`
/// instead of a materialized `&Row`, so a columnar-aware consumer (the
/// hash-join probe) can read just the cells it needs via
/// [`Chunk::cell`] and keep the window unmaterialized. `materialize`
/// preserves the row-major guarantee for closures that call
/// [`Chunk::row`].
fn map_cells<'a>(
    input: BoxChunkIter<'a>,
    batch: usize,
    materialize: bool,
    f: impl FnMut(&Chunk, u32, &mut Vec<Row>) -> Result<()> + 'a,
) -> BoxChunkIter<'a> {
    Box::new(MapChunks {
        input,
        f,
        batch,
        materialize,
        pending: VecDeque::new(),
        current: None,
        out: Vec::new(),
        done: false,
    })
}

struct MapChunks<'a, F> {
    input: BoxChunkIter<'a>,
    f: F,
    batch: usize,
    /// Convert incoming columnar windows to rows up front (required by
    /// closures that borrow `&Row`s via [`Chunk::row`]).
    materialize: bool,
    /// Emitted-but-not-yet-pulled items, in row order.
    pending: VecDeque<Result<Chunk>>,
    /// The partially processed input chunk and the next live position —
    /// resumption state for mid-chunk flushes.
    current: Option<(Chunk, usize)>,
    /// Output rows accumulated toward the next batch (carried across
    /// input chunks so output chunks stay full).
    out: Vec<Row>,
    done: bool,
}

impl<F: FnMut(&Chunk, u32, &mut Vec<Row>) -> Result<()>> Iterator for MapChunks<'_, F> {
    type Item = Result<Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Some(item);
            }
            if let Some((chunk, pos)) = &mut self.current {
                let n = chunk.len();
                while *pos < n {
                    let i = chunk.live_at(*pos);
                    *pos += 1;
                    match (self.f)(chunk, i, &mut self.out) {
                        Ok(()) => {
                            if self.out.len() >= self.batch {
                                let out =
                                    std::mem::replace(&mut self.out, pool::take_rows(self.batch));
                                self.pending.push_back(Ok(Chunk::new(out)));
                                break;
                            }
                        }
                        Err(e) => {
                            if !self.out.is_empty() {
                                let out =
                                    std::mem::replace(&mut self.out, pool::take_rows(self.batch));
                                self.pending.push_back(Ok(Chunk::new(out)));
                            }
                            self.pending.push_back(Err(e));
                            break;
                        }
                    }
                }
                if self
                    .current
                    .as_ref()
                    .is_some_and(|(chunk, pos)| *pos >= chunk.len())
                {
                    if let Some((chunk, _)) = self.current.take() {
                        chunk.recycle();
                    }
                }
                continue;
            }
            if self.done {
                return None;
            }
            match self.input.next() {
                None => {
                    self.done = true;
                    if !self.out.is_empty() {
                        return Some(Ok(Chunk::new(std::mem::take(&mut self.out))));
                    }
                    return None;
                }
                Some(Err(e)) => {
                    // Flush accumulated output first: it precedes the
                    // error in row order.
                    if !self.out.is_empty() {
                        let out = std::mem::replace(&mut self.out, pool::take_rows(self.batch));
                        self.pending.push_back(Ok(Chunk::new(out)));
                    }
                    self.pending.push_back(Err(e));
                }
                Some(Ok(mut chunk)) => {
                    // `&Row`-borrowing closures need row-major storage:
                    // materialize columnar windows once per chunk.
                    if self.materialize {
                        chunk.ensure_rows();
                    }
                    self.current = Some((chunk, 0));
                }
            }
        }
    }
}

/// Precompiled all-column projection: one infallible clone loop per
/// chunk, compacting as it goes.
struct ProjectChunks<'a> {
    input: BoxChunkIter<'a>,
    proj: Projector,
}

impl Iterator for ProjectChunks<'_> {
    type Item = Result<Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            match self.input.next()? {
                Err(e) => return Some(Err(e)),
                Ok(chunk) => {
                    if chunk.is_empty() {
                        chunk.recycle();
                        continue;
                    }
                    let mut rows = pool::take_rows(chunk.len());
                    match &chunk.repr {
                        // Columnar input: gather straight from the
                        // projected columns — untouched columns are
                        // never read, dropped rows never materialized.
                        Repr::Cols(w) => {
                            let idx = self.proj.indices();
                            for k in 0..chunk.len() {
                                let i = w.start + chunk.live_at(k) as usize;
                                rows.push(Row::new(idx.iter().map(|&c| w.cols.value_at(c, i))));
                            }
                        }
                        Repr::Rows(_) => {
                            for row in chunk.iter() {
                                rows.push(self.proj.apply(row));
                            }
                        }
                    }
                    chunk.recycle();
                    return Some(Ok(Chunk::new(rows)));
                }
            }
        }
    }
}

/// `Limit`: pass chunks through, truncating the one that crosses the
/// boundary; once satisfied, upstream is never pulled again. An error
/// consumes one of the remaining slots, exactly like the row executor's
/// `take(n)` over an `Iterator<Item = Result<Row>>` — a consumer
/// pulling past errors sees the same item sequence from both executors.
struct LimitChunks<'a> {
    input: BoxChunkIter<'a>,
    remaining: usize,
}

impl Iterator for LimitChunks<'_> {
    type Item = Result<Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.remaining == 0 {
                return None;
            }
            match self.input.next()? {
                Err(e) => {
                    self.remaining -= 1;
                    return Some(Err(e));
                }
                Ok(mut chunk) => {
                    let n = chunk.len();
                    if n == 0 {
                        chunk.recycle();
                        continue;
                    }
                    if n <= self.remaining {
                        self.remaining -= n;
                    } else {
                        chunk.truncate_live(self.remaining);
                        self.remaining = 0;
                    }
                    return Some(Ok(chunk));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn open_join<'a>(
    db: &'a Database,
    left: &'a Plan,
    right: &'a Plan,
    on: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
    batch: Batch,
    spill: &SpillCtx,
    obs: &NodeObs,
) -> Result<BoxChunkIter<'a>> {
    if !on.is_empty() {
        // Base tables only: virtual (`sys.*`) relations have no indexes,
        // so they take the generic hash-join path below.
        if let Some((table_name, pred)) = base_access(right).filter(|(n, _)| db.has_table(n)) {
            let table = db.table(table_name)?;
            let rcols: Vec<usize> = on.iter().map(|&(_, rc)| rc).collect();
            let pk_path = table.schema().key_column() == Some(0) && rcols == [0];
            let index = if pk_path {
                None
            } else {
                table
                    .find_index_for(&rcols)
                    .map(|(name, order)| (name.to_string(), order.to_vec()))
            };
            if pk_path || index.is_some() {
                // Adaptive index-nested-loop: buffer left rows (by whole
                // chunks) up to the break-even point of the materializing
                // heuristic (`4·|left| ≤ |table|`) — and, under a memory
                // budget, no further than this join's byte share (the
                // buffered left side is materialized state like any
                // other; past the share we fall back to the hash join,
                // which spills).
                let budget = table.len().max(1) / 4;
                let mut left_stream = open_node(db, left, batch, spill, &obs.child(0))?;
                let mut buf: Vec<Row> = Vec::new();
                let mut buf_bytes = 0usize;
                let mut small_left = true;
                loop {
                    if buf.len() > budget || spill.per_point.is_some_and(|b| buf_bytes > b) {
                        small_left = false;
                        break;
                    }
                    match left_stream.next() {
                        Some(chunk) => {
                            let before = buf.len();
                            chunk?.drain_into(&mut buf);
                            buf_bytes += buf[before..].iter().map(spill::row_bytes).sum::<usize>();
                            if let Some(n) = obs.node() {
                                raise(&n.peak_bytes, buf_bytes as u64);
                            }
                        }
                        None => break,
                    }
                }
                if small_left {
                    let probe = chunked_owned(buf, batch.effective);
                    return Ok(map_chunks(probe, batch.effective, move |lrow, out| {
                        index_probe(table, lrow, on, pred, residual, pk_path, &index, out)
                    }));
                }
                // Too many left rows: replay the buffer in front of the
                // rest of the stream and hash-join instead.
                let probe: BoxChunkIter<'a> =
                    Box::new(chunked_owned(buf, batch.effective).chain(left_stream));
                return hash_join(db, probe, right, on, residual, batch, spill, obs);
            }
        }
        let probe = open_node(db, left, batch, spill, &obs.child(0))?;
        return hash_join(db, probe, right, on, residual, batch, spill, obs);
    }
    // Cross/theta join: the right side is a materialization point. Under
    // a memory budget only this point's byte share stays in memory; once
    // the share is exceeded every further right row overflows — in
    // arrival order — to a spill run file, which the probe loop replays
    // after the in-memory prefix for each left row. The replay reopens
    // the run per left row (sequential reads of an OS-cached file), a
    // deliberate trade: right-side memory stays bounded by the budget
    // while the output order stays byte-for-byte the left-major order of
    // the unbudgeted nested loop.
    let mut mem: Vec<Row> = Vec::new();
    let mut mem_bytes = 0usize;
    let mut overflow: Option<spill::RunFile> = None;
    {
        let right_stream = open_node(db, right, batch.full(), spill, &obs.child(1))?;
        let mut scratch: Vec<Row> = Vec::new();
        for chunk in right_stream {
            chunk?.drain_into(&mut scratch);
            for row in scratch.drain(..) {
                if let Some(run) = &mut overflow {
                    run.write(0, &row)?;
                    continue;
                }
                match spill.per_point {
                    Some(budget) if mem_bytes + spill::row_bytes(&row) > budget => {
                        let mut run = spill::RunFile::create(&spill.dir, obs.spill_prof())?;
                        run.write(0, &row)?;
                        overflow = Some(run);
                    }
                    _ => {
                        mem_bytes += spill::row_bytes(&row);
                        mem.push(row);
                    }
                }
            }
        }
        if let Some(n) = obs.node() {
            raise(&n.peak_bytes, mem_bytes as u64);
        }
        if let Some(run) = &mut overflow {
            run.seal()?;
        }
    }
    let left = open_node(db, left, batch, spill, &obs.child(0))?;
    Ok(map_chunks(left, batch.effective, move |lrow, out| {
        let emit = |joined: Row, out: &mut Vec<Row>| -> Result<()> {
            match residual {
                None => out.push(joined),
                Some(e) => {
                    if e.eval_bool(&joined)? {
                        out.push(joined);
                    }
                }
            }
            Ok(())
        };
        for rrow in &mem {
            emit(lrow.concat(rrow), out)?;
        }
        if let Some(run) = &mut overflow {
            let mut reader = run.reader()?;
            while let Some((_, rrow)) = reader.next()? {
                emit(lrow.concat(&rrow), out)?;
            }
        }
        Ok(())
    }))
}

/// Probe the right table's primary key or covering index for one left
/// row, re-verifying every join pair and applying the right-side
/// selection and residual (shared by the chunked index-nested-loop).
#[allow(clippy::too_many_arguments)]
fn index_probe(
    table: &crate::table::Table,
    lrow: &Row,
    on: &[(usize, usize)],
    pred: Option<&Expr>,
    residual: Option<&Expr>,
    pk_path: bool,
    index: &Option<(String, Vec<usize>)>,
    out: &mut Vec<Row>,
) -> Result<()> {
    let hits: Vec<&Row> = if pk_path {
        let lc = on[0].0;
        table.get_by_key(&lrow[lc]).into_iter().collect()
    } else {
        let (name, order) = index.as_ref().expect("index path");
        let key: Vec<Value> = order
            .iter()
            .map(|rc| {
                let (lc, _) = on.iter().find(|(_, r)| r == rc).expect("covered");
                lrow[*lc].clone()
            })
            .collect();
        table.index_rows(name, &key)?
    };
    for rrow in hits {
        // Re-verify every join pair: with duplicate right columns in `on`
        // the index key only pins one left column per right column.
        if on.iter().any(|&(lc, rc)| lrow[lc] != rrow[rc]) {
            continue;
        }
        if let Some(p) = pred {
            if !p.eval_bool(rrow)? {
                continue;
            }
        }
        let joined = lrow.concat(rrow);
        match residual {
            None => out.push(joined),
            Some(e) => {
                if e.eval_bool(&joined)? {
                    out.push(joined);
                }
            }
        }
    }
    Ok(())
}

/// Build a hash table over the right side, then probe whole chunks.
/// Under a memory budget the build side may spill, turning this into a
/// grace hash join (build and probe partitioned to disk on the key).
#[allow(clippy::too_many_arguments)]
fn hash_join<'a>(
    db: &'a Database,
    probe: BoxChunkIter<'a>,
    right: &'a Plan,
    on: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
    batch: Batch,
    spill: &SpillCtx,
    obs: &NodeObs,
) -> Result<BoxChunkIter<'a>> {
    let build = match spill.per_point {
        // Unlimited: the pre-existing in-memory build.
        None => build_side(db, right, on, batch, spill, &obs.child(1))?,
        Some(budget) => {
            let rcols: Vec<usize> = on.iter().map(|&(_, rc)| rc).collect();
            let input = ChunkStream::new(open_node(db, right, batch.full(), spill, &obs.child(1))?);
            match spill::build_or_spill(input, &rcols, budget, &spill.dir, obs.spill_prof())? {
                spill::BuildSide::InMemory(map) => map,
                spill::BuildSide::Spilled(parts) => {
                    return Ok(Box::new(spill::GraceJoin::new(
                        probe,
                        parts,
                        on,
                        residual,
                        budget,
                        &spill.dir,
                        batch.effective,
                        obs.spill_prof(),
                    )))
                }
            }
        }
    };
    // Cell-level probe: keys are read straight out of the probe chunk
    // (one cell clone per key column), and full joined rows are only
    // built for matches — a columnar probe side never materializes
    // unmatched rows at all.
    Ok(map_cells(
        probe,
        batch.effective,
        false,
        move |chunk, i, out| {
            let key: Box<[Value]> = on.iter().map(|&(lc, _)| chunk.cell(i, lc)).collect();
            if let Some(hits) = build.get(&key) {
                for rrow in hits {
                    let joined = chunk.concat_row(i, rrow);
                    match residual {
                        None => out.push(joined),
                        Some(e) => {
                            if e.eval_bool(&joined)? {
                                out.push(joined);
                            }
                        }
                    }
                }
            }
            Ok(())
        },
    ))
}

/// Materialize a join's build (right) side into a hash table keyed by
/// the `on` columns. The build input always runs at the full batch size.
fn build_side(
    db: &Database,
    right: &Plan,
    on: &[(usize, usize)],
    batch: Batch,
    spill: &SpillCtx,
    obs: &NodeObs,
) -> Result<HashMap<Box<[Value]>, Vec<Row>>> {
    let mut build: HashMap<Box<[Value]>, Vec<Row>> = HashMap::new();
    let mut scratch: Vec<Row> = Vec::new();
    for chunk in ChunkStream::new(open_node(db, right, batch.full(), spill, obs)?) {
        chunk?.drain_into(&mut scratch);
        for row in scratch.drain(..) {
            let key: Box<[Value]> = on.iter().map(|&(_, rc)| row[rc].clone()).collect();
            build.entry(key).or_default().push(row);
        }
    }
    Ok(build)
}

#[allow(clippy::too_many_arguments)]
fn open_anti_join<'a>(
    db: &'a Database,
    left: &'a Plan,
    right: &'a Plan,
    on: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
    batch: Batch,
    spill: &SpillCtx,
    obs: &NodeObs,
) -> Result<BoxChunkIter<'a>> {
    let left_stream = open_node(db, left, batch, spill, &obs.child(0))?;
    if on.is_empty() {
        // A left row survives iff no right row makes the residual hold.
        // Anti-joins keep left rows unchanged, so this is a pure
        // selection-vector filter. The collected right side is a
        // materialization point: under a memory budget only its byte
        // share stays in memory; past it further right rows overflow —
        // in arrival order — to a spill run the filter replays after
        // the in-memory prefix for each left row (the same bounded
        // template as the cross-join build).
        let mut mem: Vec<Row> = Vec::new();
        let mut mem_bytes = 0usize;
        let mut overflow: Option<spill::RunFile> = None;
        {
            let right_stream = open_node(db, right, batch.full(), spill, &obs.child(1))?;
            let mut scratch: Vec<Row> = Vec::new();
            for chunk in right_stream {
                chunk?.drain_into(&mut scratch);
                for row in scratch.drain(..) {
                    if let Some(run) = &mut overflow {
                        run.write(0, &row)?;
                        continue;
                    }
                    match spill.per_point {
                        Some(budget) if mem_bytes + spill::row_bytes(&row) > budget => {
                            let mut run = spill::RunFile::create(&spill.dir, obs.spill_prof())?;
                            run.write(0, &row)?;
                            overflow = Some(run);
                        }
                        _ => {
                            mem_bytes += spill::row_bytes(&row);
                            mem.push(row);
                        }
                    }
                }
            }
            if let Some(n) = obs.node() {
                raise(&n.peak_bytes, mem_bytes as u64);
            }
            if let Some(run) = &mut overflow {
                run.seal()?;
            }
        }
        return Ok(filter_chunks(left_stream, move |lrow| {
            let killed = |rrow: &Row| -> Result<bool> {
                match residual {
                    None => Ok(true),
                    Some(e) => e.eval_bool(&lrow.concat(rrow)),
                }
            };
            for rrow in &mem {
                if killed(rrow)? {
                    return Ok(false);
                }
            }
            if let Some(run) = &mut overflow {
                let mut reader = run.reader()?;
                while let Some((_, rrow)) = reader.next()? {
                    if killed(&rrow)? {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        }));
    }
    // Keyed anti-join: the build side is a materialization point, so
    // under a memory budget it counts against this point's byte share
    // and grace-partitions to disk past it (mirroring `hash_join`).
    if let Some(budget) = spill.per_point {
        let rcols: Vec<usize> = on.iter().map(|&(_, rc)| rc).collect();
        let input = ChunkStream::new(open_node(db, right, batch.full(), spill, &obs.child(1))?);
        let build =
            match spill::build_or_spill(input, &rcols, budget, &spill.dir, obs.spill_prof())? {
                spill::BuildSide::InMemory(map) => map,
                spill::BuildSide::Spilled(parts) => {
                    return Ok(Box::new(spill::GraceJoin::new_anti(
                        left_stream,
                        parts,
                        on,
                        residual,
                        budget,
                        &spill.dir,
                        batch.effective,
                        obs.spill_prof(),
                    )));
                }
            };
        return Ok(anti_filter(left_stream, build, on, residual));
    }
    let build = build_side(db, right, on, batch, spill, &obs.child(1))?;
    Ok(anti_filter(left_stream, build, on, residual))
}

/// Filter `left` down to the rows with no residual-satisfying match in
/// the build table — the anti-join's probe phase (a pure
/// selection-vector filter: left rows pass through unchanged).
fn anti_filter<'a>(
    left: BoxChunkIter<'a>,
    build: HashMap<Box<[Value]>, Vec<Row>>,
    on: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
) -> BoxChunkIter<'a> {
    filter_chunks(left, move |lrow| {
        let key: Box<[Value]> = on.iter().map(|&(lc, _)| lrow[lc].clone()).collect();
        match build.get(&key) {
            None => Ok(true),
            Some(hits) => match residual {
                None => Ok(false),
                Some(e) => {
                    for rrow in hits {
                        if e.eval_bool(&lrow.concat(rrow))? {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                }
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, execute_materialized, execute_rows};
    use crate::row;
    use crate::schema::TableSchema;

    fn db() -> Database {
        let mut db = Database::new();
        let users = db
            .create_table(TableSchema::with_key("Users", &["uid", "name"]))
            .unwrap();
        users.insert(row![1, "Alice"]).unwrap();
        users.insert(row![2, "Bob"]).unwrap();
        users.insert(row![3, "Carol"]).unwrap();
        let e = db
            .create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
            .unwrap();
        e.create_index("by_w1_u", &["w1", "u"]).unwrap();
        e.insert(row![0, 1, 1]).unwrap();
        e.insert(row![0, 2, 2]).unwrap();
        e.insert(row![0, 3, 0]).unwrap();
        e.insert(row![1, 2, 2]).unwrap();
        e.insert(row![1, 3, 0]).unwrap();
        db
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort();
        rows
    }

    /// Rows in a chunk's backing window, live or not (tests only).
    fn backing_len(chunk: &Chunk) -> usize {
        chunk.window_len()
    }

    #[test]
    fn chunked_matches_materializing_on_basic_operators() {
        let db = db();
        let plans = vec![
            Plan::scan("Users"),
            Plan::scan("Users").select(Expr::col_eq_lit(1, "Bob")),
            Plan::scan("E").project_cols(&[2, 0]),
            Plan::scan("Users").join(Plan::scan("E"), vec![(0, 1)]),
            Plan::scan("Users").join_where(
                Plan::scan("Users"),
                vec![],
                Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::Col(2)),
            ),
            Plan::scan("Users").anti_join(Plan::scan("E"), vec![(0, 1)]),
            Plan::Union {
                inputs: vec![Plan::scan("Users"), Plan::scan("Users")],
            }
            .distinct(),
            Plan::Aggregate {
                input: Box::new(Plan::scan("E")),
                group_by: vec![0],
                aggs: vec![crate::plan::Agg::Count, crate::plan::Agg::Max(2)],
            },
            Plan::scan("Users").sort(vec![1]).limit(2),
        ];
        for plan in &plans {
            assert_eq!(
                sorted(execute(&db, plan).unwrap()),
                sorted(execute_materialized(&db, plan).unwrap()),
                "chunked and materializing disagree on {plan:?}"
            );
        }
    }

    #[test]
    fn chunked_preserves_scan_order() {
        let db = db();
        let plan = Plan::scan("Users");
        let rows = stream(&db, &plan).unwrap().collect_rows().unwrap();
        assert_eq!(
            rows,
            vec![row![1, "Alice"], row![2, "Bob"], row![3, "Carol"]]
        );
    }

    #[test]
    fn limit_short_circuits_upstream_errors_mid_chunk() {
        // Both Values rows land in the *same* chunk; the selection splits
        // the chunk at the failing row, so Limit(1) is satisfied by the
        // prefix and the error is never demanded — identical to the
        // tuple-at-a-time semantics.
        let db = db();
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![true], row![1]],
        }
        .select(Expr::Col(0))
        .limit(1);
        assert_eq!(execute(&db, &plan).unwrap(), vec![row![true]]);
        assert!(execute_materialized(&db, &plan).is_err());
    }

    #[test]
    fn distinct_streams_first_occurrences_in_order() {
        let db = db();
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![2], row![1], row![2], row![3], row![1]],
        }
        .distinct();
        let rows = stream(&db, &plan).unwrap().collect_rows().unwrap();
        assert_eq!(rows, vec![row![2], row![1], row![3]]);
    }

    #[test]
    fn errors_propagate_through_pipelines() {
        let db = db();
        // Bare-column predicate over non-boolean rows errors mid-stream.
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![1]],
        }
        .select(Expr::Col(0));
        assert!(execute(&db, &plan).is_err());
        // And through a projection above it.
        let plan = plan.project_cols(&[0]);
        assert!(execute(&db, &plan).is_err());
    }

    #[test]
    fn error_splitting_preserves_row_order_around_errors() {
        // Rows 1 and 3 pass, row 2 errors: the stream must yield
        // Ok(1), Err, Ok(3) in that order.
        let db = db();
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![true], row![7], row![true]],
        }
        .select(Expr::Col(0));
        let stream = stream_chunks(&db, &plan).unwrap();
        let items: Vec<Result<Vec<Row>>> = stream.map(|item| item.map(Chunk::into_rows)).collect();
        assert_eq!(items.len(), 3, "{items:?}");
        assert_eq!(items[0].as_ref().unwrap(), &vec![row![true]]);
        assert!(items[1].is_err());
        assert_eq!(items[2].as_ref().unwrap(), &vec![row![true]]);
    }

    #[test]
    fn adaptive_index_join_takes_index_path_for_small_left() {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..400i64 {
            v.insert(row![i % 20, i]).unwrap();
        }
        let probe = db
            .create_table(TableSchema::keyless("Probe", &["w"]))
            .unwrap();
        probe.insert(row![3]).unwrap();
        probe.insert(row![7]).unwrap();
        let plan = Plan::scan("Probe").join(Plan::scan("V"), vec![(0, 0)]);
        let rows = execute(&db, &plan).unwrap();
        assert_eq!(rows.len(), 40);
        assert_eq!(
            sorted(rows),
            sorted(execute_materialized(&db, &plan).unwrap())
        );
    }

    #[test]
    fn adaptive_index_join_falls_back_for_large_left() {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..40i64 {
            v.insert(row![i % 4, i]).unwrap();
        }
        let probe = db
            .create_table(TableSchema::keyless("Probe", &["w"]))
            .unwrap();
        // More probe rows than |V|/4: the buffer overflows and the join
        // falls back to a hash build, replaying the buffered rows.
        for i in 0..30i64 {
            probe.insert(row![i % 5]).unwrap();
        }
        let plan = Plan::scan("Probe").join(Plan::scan("V"), vec![(0, 0)]);
        assert_eq!(
            sorted(execute(&db, &plan).unwrap()),
            sorted(execute_materialized(&db, &plan).unwrap())
        );
    }

    #[test]
    fn kernels_match_interpreter_on_cross_type_columns() {
        // A column holding every Value type: each specialized kernel must
        // agree with Expr::eval_bool row for row (cross-type total order:
        // Null < Bool < Int < Str).
        let db = db();
        let rows = vec![
            row![Value::Null],
            row![false],
            row![true],
            row![-3],
            row![5],
            row![17],
            row!["apple"],
            row!["zebra"],
        ];
        let lits = [Value::int(5), Value::str("mango"), Value::Bool(true)];
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            for lit in &lits {
                for flipped in [false, true] {
                    let pred = if flipped {
                        Expr::cmp(op.flip(), Expr::Lit(lit.clone()), Expr::Col(0))
                    } else {
                        Expr::cmp(op, Expr::Col(0), Expr::Lit(lit.clone()))
                    };
                    let kernel = ColLitKernel::compile(&pred).expect("col-lit compiles");
                    for r in &rows {
                        assert_eq!(
                            kernel.test(r),
                            pred.eval_bool(r).unwrap(),
                            "kernel disagrees with interpreter on {pred} over {r}"
                        );
                    }
                    let plan = Plan::Values {
                        arity: 1,
                        rows: rows.clone(),
                    }
                    .select(pred);
                    assert_eq!(
                        sorted(execute(&db, &plan).unwrap()),
                        sorted(execute_materialized(&db, &plan).unwrap()),
                        "kernel execution diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn and_conjunctions_fuse_into_kernel_passes() {
        // Every AND of col-op-lit comparisons must compile (no row-wise
        // fallback) and agree with the interpreter on a column holding
        // every value type, in every conjunct order.
        let db = db();
        let rows: Vec<Row> = vec![
            row![Value::Null, Value::Null],
            row![false, 3],
            row![-3, "pear"],
            row![5, 5],
            row![17, "apple"],
            row!["apple", 17],
            row!["zebra", true],
        ];
        let conjuncts = [
            Expr::cmp(CmpOp::Le, Expr::Col(0), Expr::lit(10i64)),
            Expr::cmp(CmpOp::Ne, Expr::Col(1), Expr::lit("pear")),
            Expr::cmp(CmpOp::Gt, Expr::lit(4i64), Expr::Col(0)),
        ];
        for i in 0..conjuncts.len() {
            for j in 0..conjuncts.len() {
                if i == j {
                    continue;
                }
                let pred = Expr::and(vec![conjuncts[i].clone(), conjuncts[j].clone()]);
                let kernel = FilterKernel::compile(&pred).expect("AND of col-lit compiles");
                assert!(matches!(kernel, FilterKernel::And(_)));
                for r in &rows {
                    assert_eq!(
                        kernel.test(r),
                        pred.eval_bool(r).unwrap(),
                        "fused kernel disagrees with interpreter on {pred} over {r}"
                    );
                }
                let plan = Plan::Values {
                    arity: 2,
                    rows: rows.clone(),
                }
                .select(pred);
                assert_eq!(
                    sorted(execute(&db, &plan).unwrap()),
                    sorted(execute_materialized(&db, &plan).unwrap()),
                    "fused AND execution diverged"
                );
            }
        }
        // Three-way conjunction, over a scan (filter-before-clone path)
        // and over a non-scan input (selection-vector passes).
        let pred = Expr::and(conjuncts.to_vec());
        assert_eq!(
            FilterKernel::compile(&pred).unwrap().label(),
            "and[le:int,cmp:lit,lt:int]"
        );
        let over_values = Plan::Values {
            arity: 2,
            rows: rows.clone(),
        }
        .project_cols(&[0, 1])
        .select(pred.clone());
        assert_eq!(
            sorted(execute(&db, &over_values).unwrap()),
            sorted(execute_materialized(&db, &over_values).unwrap())
        );
        // Empty-AND and single-element AND collapse elsewhere; an AND
        // with a non-col-lit conjunct must not compile.
        let mixed = Expr::And(vec![conjuncts[0].clone(), Expr::col_eq_col(0, 1)]);
        assert!(FilterKernel::compile(&mixed).is_none());
    }

    #[test]
    fn fused_and_uses_selection_vectors() {
        // The fused conjunction refines the selection vector in place:
        // backing rows stay put, only `sel` shrinks pass by pass.
        let db = db();
        let plan = Plan::scan("E")
            .project_cols(&[0, 1, 2])
            .select(Expr::and(vec![
                Expr::col_eq_lit(0, 0i64),
                Expr::cmp(CmpOp::Le, Expr::Col(1), Expr::lit(2i64)),
            ]));
        let chunks: Vec<Chunk> = stream_chunks(&db, &plan)
            .unwrap()
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(chunks.len(), 1);
        assert!(
            chunks[0].sel.is_some(),
            "fused AND must use a selection vector"
        );
        assert_eq!(backing_len(&chunks[0]), 5, "backing rows are not compacted");
        assert_eq!(chunks[0].len(), 2); // rows (0,1,1) and (0,2,2)
    }

    #[test]
    fn filters_set_selection_vectors_without_copying() {
        // A filter over a non-scan input refines the selection vector in
        // place: the chunk keeps its backing rows, only `sel` changes.
        let db = db();
        let plan = Plan::scan("E")
            .project_cols(&[1, 0])
            .select(Expr::col_eq_lit(1, 0i64));
        let chunks: Vec<Chunk> = stream_chunks(&db, &plan)
            .unwrap()
            .map(|c| c.unwrap())
            .collect();
        assert_eq!(chunks.len(), 1);
        assert!(
            chunks[0].sel.is_some(),
            "filter must use a selection vector"
        );
        assert_eq!(backing_len(&chunks[0]), 5, "backing rows are not compacted");
        assert_eq!(chunks[0].len(), 3);
    }

    #[test]
    fn batch_size_bounds_chunks_and_limit_caps_them() {
        let mut db = Database::new();
        let t = db.create_table(TableSchema::keyless("T", &["a"])).unwrap();
        for i in 0..2500i64 {
            t.insert(row![i]).unwrap();
        }
        // Scan chunks ramp up from 64 and saturate at the batch size.
        let plan = Plan::scan("T");
        let sizes: Vec<usize> = Executor::new(&db)
            .open_chunks(&plan)
            .unwrap()
            .map(|c| c.unwrap().len())
            .collect();
        assert_eq!(sizes, vec![32, 64, 128, 256, 512, 1024, 484]);
        assert_eq!(sizes.iter().sum::<usize>(), 2500);
        let sizes: Vec<usize> = Executor::with_batch_size(&db, 100)
            .open_chunks(&plan)
            .unwrap()
            .map(|c| c.unwrap().len())
            .collect();
        assert!(sizes.iter().all(|&s| s <= 100), "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 2500);
        // A Limit caps its subtree's batch: one 10-row chunk, not 1024.
        let limited = Plan::scan("T").limit(10);
        let sizes: Vec<usize> = Executor::new(&db)
            .open_chunks(&limited)
            .unwrap()
            .map(|c| c.unwrap().len())
            .collect();
        assert_eq!(sizes, vec![10]);
    }

    #[test]
    fn limit_counts_errors_like_the_row_executor() {
        // `take(n)` over `Result<Row>` items counts an Err toward the
        // limit; the chunked Limit must too, so a consumer pulling past
        // errors sees the same item sequence from both executors.
        let db = db();
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![7], row![true], row![true]],
        }
        .select(Expr::Col(0))
        .limit(1);
        let chunked: Vec<Result<Row>> = stream(&db, &plan).unwrap().collect();
        let rowwise: Vec<Result<Row>> = crate::exec::stream_rows(&db, &plan).unwrap().collect();
        assert_eq!(chunked.len(), 1, "{chunked:?}");
        assert_eq!(rowwise.len(), 1);
        assert!(chunked[0].is_err() && rowwise[0].is_err());
        // With room for two items: the error plus exactly one row.
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![7], row![true], row![true]],
        }
        .select(Expr::Col(0))
        .limit(2);
        let chunked: Vec<Result<Row>> = stream(&db, &plan).unwrap().collect();
        let rowwise: Vec<Result<Row>> = crate::exec::stream_rows(&db, &plan).unwrap().collect();
        assert_eq!(chunked.len(), 2, "{chunked:?}");
        assert!(chunked[0].is_err());
        assert_eq!(chunked[1].as_ref().unwrap(), &row![true]);
        assert_eq!(rowwise.len(), 2);
        assert!(rowwise[0].is_err());
        assert_eq!(rowwise[1].as_ref().unwrap(), &row![true]);
    }

    #[test]
    fn with_batch_size_is_honored_through_materialization_points() {
        let mut db = Database::new();
        let t = db.create_table(TableSchema::keyless("T", &["a"])).unwrap();
        for i in 0..300i64 {
            t.insert(row![(i * 7) % 300]).unwrap();
        }
        // A Sort (materialization point) between the scan and the
        // output: chunks on both sides of it respect the configured
        // batch, not a hard-coded constant.
        let plan = Plan::scan("T").sort(vec![0]).distinct();
        let small = Executor::with_batch_size(&db, 8);
        let sizes: Vec<usize> = small
            .open_chunks(&plan)
            .unwrap()
            .map(|c| c.unwrap().len())
            .collect();
        assert!(sizes.iter().all(|&s| s <= 8), "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 300);
        // And a configured batch *larger* than the default survives a
        // Limit cap: the sort output above the Limit's subtree is
        // re-batched at min(configured, n), not min(1024, n).
        let plan = Plan::scan("T").sort(vec![0]).limit(290);
        let big = Executor::with_batch_size(&db, 4096);
        let sizes: Vec<usize> = big
            .open_chunks(&plan)
            .unwrap()
            .map(|c| c.unwrap().len())
            .collect();
        assert_eq!(sizes, vec![290]);
    }

    #[test]
    fn limit_truncates_mid_chunk() {
        let db = db();
        let plan = Plan::Values {
            arity: 1,
            rows: (0..7i64).map(|i| row![i]).collect(),
        }
        .limit(3);
        assert_eq!(
            execute(&db, &plan).unwrap(),
            vec![row![0], row![1], row![2]]
        );
    }

    #[test]
    fn projector_path_matches_generic_projection() {
        let db = db();
        // All-column projection (Projector) vs one forced through the
        // generic expression path by a literal.
        let fast = Plan::scan("E").project_cols(&[2, 0, 1]);
        let slow = Plan::scan("E").project(vec![Expr::Col(2), Expr::Col(0), Expr::Col(1)]);
        assert_eq!(execute(&db, &fast).unwrap(), execute(&db, &slow).unwrap());
        let mixed = Plan::scan("E").project(vec![Expr::Col(2), Expr::lit("x")]);
        let rows = execute(&db, &mixed).unwrap();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().all(|r| r[1] == Value::str("x")));
    }

    #[test]
    fn chunked_and_row_executors_agree_on_scan_order_and_limits() {
        let db = db();
        for plan in [
            Plan::scan("E"),
            Plan::scan("E").select(Expr::col_eq_lit(0, 0i64)),
            Plan::scan("E").project_cols(&[1]).limit(2),
            Plan::scan("Users").join(Plan::scan("E"), vec![(0, 1)]),
        ] {
            let chunked = stream(&db, &plan).unwrap().collect_rows().unwrap();
            let rowwise = crate::exec::stream_rows(&db, &plan)
                .unwrap()
                .collect_rows()
                .unwrap();
            assert_eq!(chunked, rowwise, "order diverged on {plan:?}");
            assert_eq!(chunked, execute_rows(&db, &plan).unwrap());
        }
    }
}
