//! Spill-to-disk materialization points: memory-budgeted counterparts of
//! the executor's unbounded buffers.
//!
//! The chunked executor ([`super::stream`]) pipelines most operators,
//! but several places materialize: the hash build sides of keyed joins
//! and anti-joins, `Aggregate`, `Sort`, and `Distinct`'s seen-set.
//! Without a budget those grow with the input and cap the
//! larger-than-memory story. This module supplies the standard fixes,
//! all sharing one framed run-file format:
//!
//! * **grace hash join** — when the build side exceeds its budget, build
//!   *and* probe rows are hash-partitioned into [`SPILL_PARTITIONS`] run
//!   files on the join key; each partition pair then joins independently
//!   (an oversized partition re-partitions with a different hash seed,
//!   up to [`MAX_RECURSION`] levels). The keyed **anti-join** build side
//!   spills the same way, with the probe phase inverted: a left row is
//!   emitted iff its partition's build table holds no residual-
//!   satisfying match;
//! * **external merge sort** — input rows accumulate up to the budget,
//!   are sorted (stably) into run files, and a k-way merge (fan-in
//!   capped at [`MAX_MERGE_FANIN`], multi-pass beyond that) streams the
//!   result back out in chunks. Ties break by run index, so the output
//!   order is **identical** to the in-memory stable sort;
//! * **spilling aggregate** — accumulators are *mergeable* (count sums,
//!   min/max compose), so when the group table exceeds the budget the
//!   partial accumulator rows are hash-partitioned to disk and the table
//!   cleared; partitions merge their partials independently at the end;
//! * **spilling distinct** — first occurrences stream out exactly as in
//!   memory until the seen-set exceeds the budget; then the seen rows
//!   (tagged "already emitted") and all remaining input (tagged "fresh")
//!   are hash-partitioned, and each partition deduplicates independently.
//!
//! ## Budget model
//!
//! A query gets one global [`SpillOptions::budget`] (bytes), split evenly
//! across the plan's materialization points ([`spill_points`]). `None`
//! means unlimited: every operator takes its pre-existing in-memory path
//! **byte for byte** — the spill machinery is not even constructed.
//!
//! ## Run-file format
//!
//! Run files reuse the durability layer's codec ([`crate::persist::format`]):
//! each record is a **block** of rows,
//! `[payload_len: u32 LE][crc32: u32 LE][tag: u8][count: u32 LE][fmt: u8][data…]`,
//! with the CRC covering everything after itself, so a torn or
//! bit-flipped spill file surfaces as [`StorageError::Corrupt`], never
//! as wrong answers. `fmt` selects the block body:
//!
//! * **`0` — row-major**: `count` `put_row` records (the fallback when a
//!   block mixes row arities);
//! * **`1` — columnar**: `[arity: u32]`, then per column a type byte —
//!   `0` NULL (no data), `1` Bool (validity + one byte per cell), `2`
//!   Int (validity + one `i64` per cell), `3` Str (validity + a sorted
//!   dictionary of length-prefixed strings + one `u16 LE` code per
//!   cell; a block holds at most [`BLOCK_ROWS`] rows, so codes cannot
//!   overflow), `4` Mixed (one `put_value` per cell) — where `validity`
//!   is `[has: u8]` plus, when `has == 1`, `ceil(count / 8)` LSB-first
//!   bitmap bytes (bit set = value present). This is the same column
//!   classification the executor's scan chunks use
//!   ([`crate::column::ColumnSet`]), so typed columns cost 1–8 bytes per
//!   cell instead of a tagged boxed value, and repeated strings are
//!   written once per block.
//!
//! Every writer — sort runs and hash partitioners alike — buffers rows
//! into a per-file block builder that flushes a frame per
//! [`BLOCK_ROWS`] rows, so the header, CRC, and transpose amortize over
//! the block. Files
//! live in [`SpillOptions::dir`] (the OS temp dir by default) and are
//! deleted when their owner drops — on success, on error, and on early
//! stream abandonment alike.
//!
//! ## Error semantics
//!
//! Materialization points that already consumed their input eagerly
//! (sort, aggregate, the join build side) keep erroring at open time.
//! The spilling paths of the *lazy* operators (the grace join's probe
//! partitioning, distinct's drain phase) must consume upstream before
//! emitting, so upstream errors are surfaced in encounter order but
//! ahead of the delayed rows; the multiset of rows and the sequence of
//! errors match the in-memory executor (the `exec_spill` differential
//! suite pins this), only the interleaving may differ once spilling has
//! actually engaged.

use super::{fresh_accs, merge_accs, update_accs, Acc};
use crate::column::{Bitmap, Column, ColumnSet};
use crate::error::{Result, StorageError};
use crate::expr::Expr;
use crate::obs::metrics::{metrics, Metric};
use crate::obs::profile::{bump, raise, ProfNode};
use crate::persist::format::{crc32, Dec, Enc};
use crate::plan::{Agg, Plan, SortKey};
use crate::row::Row;
use crate::value::Value;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::rc::Rc;

/// The profiling handle spill machinery threads alongside run files:
/// the operator's [`ProfNode`] when `EXPLAIN ANALYZE` is on, `None`
/// otherwise (every hook is then a single branch).
pub(crate) type SpillProf = Option<Rc<ProfNode>>;

/// Fan-out of one partitioning pass (join, aggregate, and distinct
/// spills). 16 partitions cut an over-budget input to 1/16 per pass;
/// two levels cover a 256× overshoot.
pub const SPILL_PARTITIONS: usize = 16;

/// Maximum re-partitioning depth before an oversized partition is
/// processed in memory anyway (heavy key skew — e.g. every row sharing
/// one join key — cannot be split by hashing, only detected).
const MAX_RECURSION: u32 = 4;

/// Partitions at or below this many rows are always processed in
/// memory: re-partitioning a handful of rows cannot pay for its file
/// traffic, and under a degenerate budget (0 bytes) it would recurse to
/// [`MAX_RECURSION`] on every partition. This floors the effective
/// working set at a few dozen rows per point, not at zero.
const MIN_PARTITION_ROWS: u64 = 64;

/// Rows per block record: every writer (sort runs and hash
/// partitioners alike) buffers rows into the current block and flushes
/// a frame once it holds this many — amortizing the frame header, CRC,
/// and encode-buffer fill — while keeping one decoded block per merge
/// input small.
const BLOCK_ROWS: usize = 128;

/// Soft payload cap forcing an early block flush for very wide rows.
const SOFT_BLOCK_PAYLOAD: usize = 1 << 20;

/// Maximum runs merged in one pass of the external sort; more runs
/// first merge in groups of this size (multi-pass). This bounds merge
/// memory at `fan-in x (decoded block + file buffers)` — a constant —
/// no matter how many runs a large input produced.
const MAX_MERGE_FANIN: usize = 16;

/// Upper bound on one spill-block payload; a corrupt length field must
/// surface as [`StorageError::Corrupt`], not a giant allocation (same
/// defense as the WAL's frame limit). Writers stay far below this:
/// writers flush at [`BLOCK_ROWS`] rows or [`SOFT_BLOCK_PAYLOAD`]
/// bytes, whichever comes first.
const MAX_BLOCK_PAYLOAD: usize = 1 << 26;

/// Block-body format byte: `count` plain `put_row` records (the
/// fallback when a block mixes row arities).
const FMT_ROWS: u8 = 0;

/// Block-body format byte: the columnar transpose (see the module doc).
const FMT_COLUMNAR: u8 = 1;

/// Approximate per-entry bookkeeping overhead of a hash table slot
/// (hashbrown control bytes + bucket + Vec headers), used by the budget
/// accounting so tiny rows do not undercount wildly.
const HASH_ENTRY_OVERHEAD: usize = 48;

// ---------------------------------------------------------------------------
// Options and per-query context
// ---------------------------------------------------------------------------

/// How a query may spill: the global memory budget and where run files
/// go. `budget: None` (the default) disables spilling entirely.
#[derive(Debug, Clone, Default)]
pub struct SpillOptions {
    /// Total bytes the query's materialization points may hold in
    /// memory, split evenly across them. `None` = unlimited.
    pub budget: Option<usize>,
    /// Directory for run files; `None` = `std::env::temp_dir()`.
    pub dir: Option<PathBuf>,
}

impl SpillOptions {
    /// Unlimited memory — the executor behaves exactly as before.
    pub fn unlimited() -> SpillOptions {
        SpillOptions::default()
    }

    /// A budget of `bytes`, run files in the OS temp dir.
    pub fn with_budget(bytes: usize) -> SpillOptions {
        SpillOptions {
            budget: Some(bytes),
            dir: None,
        }
    }

    /// Override the run-file directory (tests assert cleanup there).
    pub fn in_dir(mut self, dir: impl Into<PathBuf>) -> SpillOptions {
        self.dir = Some(dir.into());
        self
    }
}

/// The per-query spill context threaded through plan compilation: the
/// per-materialization-point share of the global budget, and the run
/// directory.
#[derive(Debug, Clone)]
pub(crate) struct SpillCtx {
    pub(crate) per_point: Option<usize>,
    pub(crate) dir: PathBuf,
}

impl SpillCtx {
    /// Split `opts` across the materialization points of `plan`.
    pub(crate) fn for_plan(opts: &SpillOptions, plan: &Plan) -> SpillCtx {
        let points = spill_points(plan).max(1);
        SpillCtx {
            per_point: opts.budget.map(|b| b / points),
            dir: opts.dir.clone().unwrap_or_else(std::env::temp_dir),
        }
    }
}

/// Number of memory-budgeted materialization points in a plan: every
/// `Sort`, `Aggregate`, `Distinct`, and `Join` (the hash build side of
/// a keyed join, the materialized right side of a cross join), plus
/// every `AntiJoin` (the hash build side when keyed, the collected
/// right side when residual-only). The global budget is divided by
/// this count.
pub fn spill_points(plan: &Plan) -> usize {
    let own = match plan {
        Plan::Sort { .. }
        | Plan::Aggregate { .. }
        | Plan::Distinct { .. }
        | Plan::Join { .. }
        | Plan::AntiJoin { .. } => 1,
        _ => 0,
    };
    own + plan.children().into_iter().map(spill_points).sum::<usize>()
}

/// Approximate in-memory footprint of a row: the `Row` header, one
/// `Value` slot per column, and string payloads. Used for budget
/// accounting only — it does not have to be exact, just monotone in the
/// real footprint.
pub(crate) fn row_bytes(row: &Row) -> usize {
    std::mem::size_of::<Row>()
        + row
            .values()
            .iter()
            .map(|v| {
                std::mem::size_of::<Value>()
                    + match v {
                        Value::Str(s) => s.len(),
                        _ => 0,
                    }
            })
            .sum::<usize>()
}

/// Deterministic hash of a value sequence at a re-partitioning level.
/// Levels shuffle differently, so an oversized partition does not
/// re-partition into a single identical sub-partition.
fn hash_values<'v>(vals: impl Iterator<Item = &'v Value>, level: u32) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (0x9E37_79B9_7F4A_7C15u64 ^ (level as u64).rotate_left(17)).hash(&mut h);
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

fn partition_of<'v>(vals: impl Iterator<Item = &'v Value>, level: u32) -> usize {
    (hash_values(vals, level) % SPILL_PARTITIONS as u64) as usize
}

// ---------------------------------------------------------------------------
// Run files
// ---------------------------------------------------------------------------

/// A self-deleting spill file of tagged, CRC-framed rows. The file is
/// removed when the `RunFile` drops — success, error, and abandonment
/// paths all clean up.
pub(crate) struct RunFile {
    path: PathBuf,
    /// Opened lazily on the first block flush, so empty partitions never
    /// touch the filesystem at all.
    writer: Option<BufWriter<File>>,
    rows: u64,
    /// Approximate in-memory bytes of the rows written (not file bytes):
    /// the number the budget compares against when deciding to recurse.
    mem_bytes: usize,
    /// Reused encode buffer for block frames.
    enc: Enc,
    /// The block under construction: rows buffer here and are transposed
    /// into the columnar block encoding when a frame is emitted — once
    /// [`BLOCK_ROWS`] rows (or the soft payload cap) is reached. One
    /// header + CRC + transpose per block, not per row.
    block: Vec<Row>,
    /// Approximate in-memory bytes of the buffered block (soft-cap
    /// check).
    block_bytes: usize,
    block_tag: u8,
    /// The owning operator's profile node (`None` = profiling off):
    /// bytes written and file creations are charged to it.
    prof: SpillProf,
}

impl RunFile {
    pub(crate) fn create(dir: &Path, prof: SpillProf) -> Result<RunFile> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let path = dir.join(format!(
            "beliefdb-spill-{}-{}.run",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        Ok(RunFile {
            path,
            writer: None,
            rows: 0,
            mem_bytes: 0,
            enc: Enc::new(),
            block: Vec::new(),
            block_bytes: 0,
            block_tag: 0,
            prof,
        })
    }

    /// Append one row to the current block, flushing a frame when the
    /// block fills. A tag change flushes too, so every frame carries a
    /// single tag.
    pub(crate) fn write(&mut self, tag: u8, row: &Row) -> Result<()> {
        if !self.block.is_empty() && tag != self.block_tag {
            self.flush_block()?;
        }
        self.block_tag = tag;
        let rb = row_bytes(row);
        self.block.push(row.clone());
        self.block_bytes += rb;
        self.rows += 1;
        self.mem_bytes += rb;
        if let Some(n) = &self.prof {
            bump(&n.spill_bytes, rb as u64);
        }
        if self.block.len() >= BLOCK_ROWS || self.block_bytes >= SOFT_BLOCK_PAYLOAD {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Transpose and emit the block under construction as one framed
    /// record (see the module doc's run-file format).
    fn flush_block(&mut self) -> Result<()> {
        if self.block.is_empty() {
            return Ok(());
        }
        self.enc.clear();
        self.enc.put_u8(self.block_tag);
        self.enc.put_u32(self.block.len() as u32);
        encode_block(&mut self.enc, &self.block);
        self.block.clear();
        self.block_bytes = 0;
        if self.enc.bytes().len() > MAX_BLOCK_PAYLOAD {
            // Mirrors the reader-side cap: a block the reader would
            // reject must not be written in the first place (reachable
            // only via a single >64 MiB row).
            return Err(StorageError::Io(format!(
                "spill block of {} bytes exceeds the {MAX_BLOCK_PAYLOAD}-byte frame limit",
                self.enc.bytes().len()
            )));
        }
        if self.writer.is_none() {
            let file = File::create(&self.path).map_err(|e| {
                StorageError::Io(format!("create spill file {}: {e}", self.path.display()))
            })?;
            self.writer = Some(BufWriter::new(file));
            // Count run files when they materialize on disk (lazily
            // created partitions that stay empty never count).
            metrics().incr(Metric::SpillRunFiles);
            if let Some(n) = &self.prof {
                bump(&n.spill_partitions, 1);
            }
        }
        let payload = self.enc.bytes();
        let w = self.writer.as_mut().expect("opened above");
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(&crc32(payload).to_le_bytes())?;
        w.write_all(payload)?;
        // Global spill accounting: payload plus the 8-byte len+crc frame.
        metrics().add(Metric::SpillBytes, payload.len() as u64 + 8);
        Ok(())
    }

    /// Should this partition be split further instead of processed in
    /// memory? Only when it is over budget, non-trivial in size, and the
    /// recursion limit has room.
    fn should_recurse(&self, budget: usize, level: u32) -> bool {
        self.mem_bytes > budget && self.rows > MIN_PARTITION_ROWS && level < MAX_RECURSION
    }

    pub(crate) fn rows(&self) -> u64 {
        self.rows
    }

    /// Flush and drop the write buffer: call when a file is done being
    /// written but will sit in a work queue before being read. Queued
    /// partitions would otherwise each pin a `BufWriter` buffer, making
    /// the drain phase O(partitions), not O(budget).
    pub(crate) fn seal(&mut self) -> Result<()> {
        self.flush_block()?;
        self.release_write_buffers();
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
        }
        Ok(())
    }

    /// Drop the block and encode buffer capacity once writing is done.
    /// Queued partitions each retain a full block's worth of row clones
    /// and encode bytes otherwise, and recursion stacks whole partition
    /// sets — the retained capacity would scale with depth, not budget.
    fn release_write_buffers(&mut self) {
        self.block = Vec::new();
        self.block_bytes = 0;
        self.enc = Enc::new();
    }

    /// Flush writes and open the file for reading; the `RunFile` must be
    /// kept alive while the reader is used (it owns the deletion).
    pub(crate) fn reader(&mut self) -> Result<RunReader> {
        self.flush_block()?;
        self.release_write_buffers();
        if let Some(mut w) = self.writer.take() {
            w.flush()?;
        }
        if self.rows == 0 {
            // Never written: there is no file to open.
            return Ok(RunReader {
                inner: None,
                remaining: 0,
                scratch: Vec::new(),
                block: VecDeque::new(),
                block_tag: 0,
            });
        }
        let file = File::open(&self.path).map_err(|e| {
            StorageError::Io(format!("open spill file {}: {e}", self.path.display()))
        })?;
        Ok(RunReader {
            inner: Some(BufReader::new(file)),
            remaining: self.rows,
            scratch: Vec::new(),
            block: VecDeque::new(),
            block_tag: 0,
        })
    }
}

impl Drop for RunFile {
    fn drop(&mut self) {
        if self.writer.take().is_some() || self.rows > 0 {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Encode a block body: the columnar transpose when every row shares
/// one arity (the normal case), plain rows otherwise. `rows` is
/// non-empty and holds at most [`BLOCK_ROWS`] rows — which also caps a
/// string dictionary at [`BLOCK_ROWS`] entries, so the `u16` code
/// encoding cannot overflow.
fn encode_block(enc: &mut Enc, rows: &[Row]) {
    let arity = rows[0].arity();
    if rows.iter().any(|r| r.arity() != arity) {
        enc.put_u8(FMT_ROWS);
        for r in rows {
            enc.put_row(r);
        }
        return;
    }
    enc.put_u8(FMT_COLUMNAR);
    enc.put_u32(arity as u32);
    let refs: Vec<&Row> = rows.iter().collect();
    let set = ColumnSet::from_rows(arity, &refs);
    let put_validity = |enc: &mut Enc, validity: &Option<Bitmap>| match validity {
        None => enc.put_u8(0),
        Some(b) => {
            enc.put_u8(1);
            for byte in b.to_bytes() {
                enc.put_u8(byte);
            }
        }
    };
    for c in 0..arity {
        match set.col(c) {
            Column::Null(_) => enc.put_u8(0),
            Column::Bool { vals, validity } => {
                enc.put_u8(1);
                put_validity(enc, validity);
                for &b in vals {
                    enc.put_u8(b as u8);
                }
            }
            Column::Int { vals, validity } => {
                enc.put_u8(2);
                put_validity(enc, validity);
                for &x in vals {
                    enc.put_i64(x);
                }
            }
            Column::Str {
                dict,
                codes,
                validity,
            } => {
                debug_assert!(dict.len() <= u16::MAX as usize, "BLOCK_ROWS caps the dict");
                enc.put_u8(3);
                put_validity(enc, validity);
                enc.put_u32(dict.len() as u32);
                for s in dict {
                    enc.put_str(s);
                }
                for &code in codes {
                    let code = code as u16;
                    enc.put_u8((code & 0xFF) as u8);
                    enc.put_u8((code >> 8) as u8);
                }
            }
            Column::Mixed(vals) => {
                enc.put_u8(4);
                for v in vals {
                    enc.put_value(v);
                }
            }
        }
    }
}

/// Decode one column of a columnar block body into boxed cell values.
fn take_column(dec: &mut Dec, count: usize) -> Result<Vec<Value>> {
    let take_validity = |dec: &mut Dec| -> Result<Option<Bitmap>> {
        if dec.take_u8()? == 0 {
            return Ok(None);
        }
        let nbytes = count.div_ceil(8);
        let mut bytes = Vec::with_capacity(nbytes);
        for _ in 0..nbytes {
            bytes.push(dec.take_u8()?);
        }
        Ok(Some(Bitmap::from_bytes(&bytes, count)))
    };
    let valid = |v: &Option<Bitmap>, i: usize| v.as_ref().is_none_or(|b| b.get(i));
    Ok(match dec.take_u8()? {
        0 => vec![Value::Null; count],
        1 => {
            let validity = take_validity(dec)?;
            let mut vals = Vec::with_capacity(count);
            for i in 0..count {
                let b = dec.take_u8()? != 0;
                vals.push(if valid(&validity, i) {
                    Value::Bool(b)
                } else {
                    Value::Null
                });
            }
            vals
        }
        2 => {
            let validity = take_validity(dec)?;
            let mut vals = Vec::with_capacity(count);
            for i in 0..count {
                let x = dec.take_i64()?;
                vals.push(if valid(&validity, i) {
                    Value::Int(x)
                } else {
                    Value::Null
                });
            }
            vals
        }
        3 => {
            let validity = take_validity(dec)?;
            let dict_len = dec.take_u32()? as usize;
            if dict_len > count {
                return Err(StorageError::Corrupt(format!(
                    "spill block dictionary of {dict_len} entries for {count} rows"
                )));
            }
            let mut dict: Vec<Value> = Vec::with_capacity(dict_len);
            for _ in 0..dict_len {
                dict.push(Value::str(dec.take_str()?));
            }
            let mut vals = Vec::with_capacity(count);
            for i in 0..count {
                let lo = dec.take_u8()? as usize;
                let hi = dec.take_u8()? as usize;
                let code = hi << 8 | lo;
                if !valid(&validity, i) {
                    vals.push(Value::Null);
                    continue;
                }
                let Some(v) = dict.get(code) else {
                    return Err(StorageError::Corrupt(format!(
                        "spill block string code {code} out of dictionary range {dict_len}"
                    )));
                };
                vals.push(v.clone());
            }
            vals
        }
        4 => {
            let mut vals = Vec::with_capacity(count);
            for _ in 0..count {
                vals.push(dec.take_value()?);
            }
            vals
        }
        t => {
            return Err(StorageError::Corrupt(format!(
                "unknown spill column type {t}"
            )))
        }
    })
}

/// Streaming reader over a run file's records.
pub(crate) struct RunReader {
    inner: Option<BufReader<File>>,
    /// Rows (not blocks) left to hand out.
    remaining: u64,
    /// Reused payload buffer.
    scratch: Vec<u8>,
    /// Decoded rows of the current block, handed out front to back.
    block: VecDeque<Row>,
    block_tag: u8,
}

impl RunReader {
    /// Next `(tag, row)` record, `None` at end of run.
    pub(crate) fn next(&mut self) -> Result<Option<(u8, Row)>> {
        if let Some(row) = self.block.pop_front() {
            self.remaining -= 1;
            return Ok(Some((self.block_tag, row)));
        }
        if self.remaining == 0 {
            return Ok(None);
        }
        let inner = self.inner.as_mut().expect("rows > 0 implies a file");
        let mut header = [0u8; 8];
        inner
            .read_exact(&mut header)
            .map_err(|e| StorageError::Corrupt(format!("truncated spill record: {e}")))?;
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4")) as usize;
        if len > MAX_BLOCK_PAYLOAD {
            return Err(StorageError::Corrupt(format!(
                "spill block length {len} exceeds the {MAX_BLOCK_PAYLOAD}-byte limit"
            )));
        }
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4"));
        self.scratch.clear();
        self.scratch.resize(len, 0);
        inner
            .read_exact(&mut self.scratch)
            .map_err(|e| StorageError::Corrupt(format!("truncated spill record: {e}")))?;
        if crc32(&self.scratch) != crc {
            return Err(StorageError::Corrupt(
                "spill record checksum mismatch".into(),
            ));
        }
        let mut dec = Dec::new(&self.scratch);
        let tag = dec.take_u8()?;
        let count = dec.take_u32()? as usize;
        if count == 0 || count as u64 > self.remaining {
            return Err(StorageError::Corrupt(format!(
                "spill block of {count} rows with {} remaining",
                self.remaining
            )));
        }
        let mut rows = VecDeque::with_capacity(count);
        match dec.take_u8()? {
            FMT_ROWS => {
                for _ in 0..count {
                    rows.push_back(dec.take_row()?);
                }
            }
            FMT_COLUMNAR => {
                let arity = dec.take_u32()? as usize;
                if arity > dec.remaining() {
                    // Each column costs at least its type byte; reject
                    // absurd arities before allocating.
                    return Err(StorageError::Corrupt(format!(
                        "spill block arity {arity} exceeds remaining {} bytes",
                        dec.remaining()
                    )));
                }
                let mut cols = Vec::with_capacity(arity);
                for _ in 0..arity {
                    cols.push(take_column(&mut dec, count)?.into_iter());
                }
                for _ in 0..count {
                    rows.push_back(Row::new(
                        cols.iter_mut()
                            .map(|c| c.next().expect("count cells per column")),
                    ));
                }
            }
            f => {
                return Err(StorageError::Corrupt(format!(
                    "unknown spill block format {f}"
                )))
            }
        }
        dec.finish()?;
        self.block = rows;
        self.block_tag = tag;
        let row = self.block.pop_front().expect("count >= 1");
        self.remaining -= 1;
        Ok(Some((tag, row)))
    }
}

/// A fresh set of [`SPILL_PARTITIONS`] run files.
fn new_partitions(dir: &Path, prof: &SpillProf) -> Result<Vec<RunFile>> {
    (0..SPILL_PARTITIONS)
        .map(|_| RunFile::create(dir, prof.clone()))
        .collect()
}

// ---------------------------------------------------------------------------
// External merge sort
// ---------------------------------------------------------------------------

/// The sort comparator shared with the in-memory `Plan::Sort` path.
pub(crate) fn cmp_by(by: &[SortKey], a: &Row, b: &Row) -> std::cmp::Ordering {
    for k in by {
        let ord = a[k.col].cmp(&b[k.col]);
        if ord != std::cmp::Ordering::Equal {
            return if k.desc { ord.reverse() } else { ord };
        }
    }
    std::cmp::Ordering::Equal
}

/// Sort `input` by `by`, spilling sorted runs past `budget` bytes and
/// k-way merging them back. With zero runs spilled the result is the
/// plain in-memory stable sort; with runs, stability is preserved by
/// breaking ties toward the earlier run, so the output order is
/// identical either way.
pub(crate) fn external_sort<'a>(
    input: impl Iterator<Item = Result<super::Chunk>> + 'a,
    by: &'a [SortKey],
    budget: usize,
    dir: &Path,
    batch: usize,
    prof: SpillProf,
) -> Result<Box<dyn Iterator<Item = Result<super::Chunk>> + 'a>> {
    let mut buf: Vec<Row> = Vec::new();
    let mut buf_bytes = 0usize;
    let mut runs: Vec<RunFile> = Vec::new();
    for chunk in input {
        let before = buf.len();
        chunk?.drain_into(&mut buf);
        buf_bytes += buf[before..].iter().map(row_bytes).sum::<usize>();
        if let Some(n) = &prof {
            raise(&n.peak_bytes, buf_bytes as u64);
        }
        if buf_bytes > budget && !buf.is_empty() {
            buf.sort_by(|a, b| cmp_by(by, a, b));
            let mut run = RunFile::create(dir, prof.clone())?;
            for row in &buf {
                run.write(0, row)?;
            }
            buf.clear();
            run.seal()?;
            runs.push(run);
            buf_bytes = 0;
        }
    }
    buf.sort_by(|a, b| cmp_by(by, a, b));
    if runs.is_empty() {
        // Everything fit: exactly the in-memory path.
        return Ok(super::chunked_owned(buf, batch));
    }
    if !buf.is_empty() {
        let mut run = RunFile::create(dir, prof.clone())?;
        for row in &buf {
            run.write(0, row)?;
        }
        buf.clear();
        run.seal()?;
        runs.push(run);
    }
    // Multi-pass merge down to a final-mergeable set of runs: each pass
    // merges *disjoint* groups of up to MAX_MERGE_FANIN runs, in order,
    // into a new generation — total I/O is O(input · log₁₆ runs), and
    // because groups are disjoint and kept in order, run order still
    // equals input order, so the tie-break toward the earlier run keeps
    // the overall sort stable.
    while runs.len() > MAX_MERGE_FANIN {
        if let Some(n) = &prof {
            bump(&n.spill_passes, 1);
        }
        let mut next: Vec<RunFile> = Vec::with_capacity(runs.len().div_ceil(MAX_MERGE_FANIN));
        while !runs.is_empty() {
            let take = MAX_MERGE_FANIN.min(runs.len());
            let mut group: Vec<RunFile> = runs.drain(..take).collect();
            if group.len() == 1 {
                next.push(group.pop().expect("one run"));
                continue;
            }
            let mut merged = RunFile::create(dir, prof.clone())?;
            let mut merge = MergeState::open(group, by.to_vec())?;
            while let Some(row) = merge.next_row()? {
                merged.write(0, &row)?;
            }
            merged.seal()?;
            next.push(merged);
        }
        runs = next;
    }
    let mut merge = MergeState::open(runs, by.to_vec())?;
    let mut done = false;
    Ok(Box::new(std::iter::from_fn(move || {
        if done {
            return None;
        }
        let mut out: Vec<Row> = Vec::with_capacity(batch);
        loop {
            match merge.next_row() {
                Err(e) => {
                    done = true;
                    return Some(Err(e));
                }
                Ok(Some(row)) => {
                    out.push(row);
                    if out.len() >= batch {
                        return Some(Ok(super::Chunk::new(out)));
                    }
                }
                Ok(None) => {
                    done = true;
                    if out.is_empty() {
                        return None;
                    }
                    return Some(Ok(super::Chunk::new(out)));
                }
            }
        }
    })))
}

/// K-way merge over sorted runs: one head row per run, minimum picked
/// by the sort key with ties toward the earlier run (stability).
struct MergeState {
    /// Keeps the run files alive (and their deletion armed).
    _runs: Vec<RunFile>,
    readers: Vec<RunReader>,
    heads: Vec<Option<Row>>,
    by: Vec<SortKey>,
}

impl MergeState {
    fn open(mut runs: Vec<RunFile>, by: Vec<SortKey>) -> Result<MergeState> {
        let mut readers = Vec::with_capacity(runs.len());
        for run in &mut runs {
            readers.push(run.reader()?);
        }
        let mut heads = Vec::with_capacity(readers.len());
        for r in &mut readers {
            heads.push(r.next()?.map(|(_, row)| row));
        }
        Ok(MergeState {
            _runs: runs,
            readers,
            heads,
            by,
        })
    }

    fn next_row(&mut self) -> Result<Option<Row>> {
        let mut best: Option<usize> = None;
        for (i, head) in self.heads.iter().enumerate() {
            let Some(row) = head else { continue };
            match best {
                None => best = Some(i),
                Some(b) => {
                    if cmp_by(
                        &self.by,
                        row,
                        self.heads[b].as_ref().expect("best head present"),
                    ) == std::cmp::Ordering::Less
                    {
                        best = Some(i);
                    }
                }
            }
        }
        let Some(i) = best else { return Ok(None) };
        let next = self.readers[i].next()?.map(|(_, row)| row);
        Ok(std::mem::replace(&mut self.heads[i], next))
    }
}

// ---------------------------------------------------------------------------
// Spilling aggregate
// ---------------------------------------------------------------------------

/// Encode one group's partial accumulators as a row `key ++ acc-values`
/// (count as `Int`, min/max as the value or `Null` for "none yet" — the
/// encodings compose under [`merge_accs`], see `super::Acc`).
fn partial_row(key: &[Value], accs: &[Acc]) -> Row {
    let mut vals: Vec<Value> = key.to_vec();
    for acc in accs {
        vals.push(match acc {
            Acc::Count(n) => Value::Int(*n),
            Acc::Max(m) | Acc::Min(m) => m.clone().unwrap_or(Value::Null),
        });
    }
    Row::new(vals)
}

/// Decode a partial row written by [`partial_row`].
fn partial_accs(aggs: &[Agg], row: &Row, key_len: usize) -> Result<Vec<Acc>> {
    let mut out = Vec::with_capacity(aggs.len());
    for (i, agg) in aggs.iter().enumerate() {
        let v = &row[key_len + i];
        out.push(match agg {
            Agg::Count => match v {
                Value::Int(n) => Acc::Count(*n),
                _ => {
                    return Err(StorageError::Corrupt(
                        "spilled aggregate partial: count is not an int".into(),
                    ))
                }
            },
            Agg::Max(_) => Acc::Max(Some(v.clone())),
            Agg::Min(_) => Acc::Min(Some(v.clone())),
        });
    }
    Ok(out)
}

/// Approximate footprint of one group-table entry.
fn group_bytes(key: &[Value], aggs_len: usize) -> usize {
    HASH_ENTRY_OVERHEAD
        + key
            .iter()
            .map(|v| {
                std::mem::size_of::<Value>()
                    + match v {
                        Value::Str(s) => s.len(),
                        _ => 0,
                    }
            })
            .sum::<usize>()
        + aggs_len * std::mem::size_of::<Value>()
}

/// Hash aggregation with grace-style partial spilling: when the group
/// table exceeds `budget`, the partial accumulator rows are partitioned
/// to disk and the table cleared; partitions then merge independently
/// (recursing on oversized partitions with a deeper hash level).
///
/// The input is consumed here, so input errors surface at open time —
/// exactly like the in-memory aggregate. Output rows are sorted within
/// the in-memory case (identical to `aggregate_stream`) and within each
/// partition otherwise (same multiset, deterministic order).
pub(crate) fn grace_aggregate<'a>(
    input: impl Iterator<Item = Result<super::Chunk>> + 'a,
    group_by: &'a [usize],
    aggs: &'a [Agg],
    budget: usize,
    dir: &Path,
    batch: usize,
    prof: SpillProf,
) -> Result<Box<dyn Iterator<Item = Result<super::Chunk>> + 'a>> {
    let mut groups: HashMap<Box<[Value]>, Vec<Acc>> = HashMap::new();
    let mut bytes = 0usize;
    let mut partitions: Option<Vec<RunFile>> = None;
    if group_by.is_empty() {
        bytes += group_bytes(&[], aggs.len());
        groups.insert(Box::from([]), fresh_accs(aggs));
    }
    let mut scratch: Vec<Row> = Vec::new();
    for chunk in input {
        let chunk = chunk?;
        if chunk.is_empty() {
            chunk.recycle();
            continue;
        }
        chunk.drain_into(&mut scratch);
        for row in scratch.drain(..) {
            let key: Box<[Value]> = group_by.iter().map(|&c| row[c].clone()).collect();
            let key_bytes = group_bytes(&key, aggs.len());
            match groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    update_accs(e.get_mut(), aggs, &row)?
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    bytes += key_bytes;
                    update_accs(e.insert(fresh_accs(aggs)), aggs, &row)?
                }
            }
        }
        // Flush the group table past the budget (the footprint estimate
        // counts keys and accumulator slots, not transient string
        // growth inside min/max — approximate but monotone).
        if let Some(n) = &prof {
            raise(&n.peak_bytes, bytes as u64);
        }
        if bytes > budget && !groups.is_empty() {
            let parts = match &mut partitions {
                Some(p) => p,
                None => partitions.insert(new_partitions(dir, &prof)?),
            };
            for (key, accs) in groups.drain() {
                let p = partition_of(key.iter(), 0);
                parts[p].write(0, &partial_row(&key, &accs))?;
            }
            bytes = 0;
        }
    }
    let Some(mut parts) = partitions else {
        // Everything fit: identical to the in-memory aggregate
        // (including the sorted output order).
        let mut out: Vec<Row> = groups
            .into_iter()
            .map(|(k, accs)| partial_row(&k, &accs))
            .collect();
        out.sort();
        return Ok(super::chunked_owned(out, batch));
    };
    // Flush the remainder, then merge partition by partition, lazily.
    for (key, accs) in groups.drain() {
        let p = partition_of(key.iter(), 0);
        parts[p].write(0, &partial_row(&key, &accs))?;
    }
    let key_len = group_by.len();
    for f in &mut parts {
        f.seal()?;
    }
    let mut tasks: VecDeque<(RunFile, u32)> = parts.drain(..).map(|f| (f, 1)).collect();
    let mut ready: VecDeque<Row> = VecDeque::new();
    let mut failed = false;
    let dir = dir.to_path_buf();
    Ok(Box::new(std::iter::from_fn(move || loop {
        if failed {
            return None;
        }
        if !ready.is_empty() {
            let take = ready.len().min(batch);
            let rows: Vec<Row> = ready.drain(..take).collect();
            return Some(Ok(super::Chunk::new(rows)));
        }
        let (mut file, level) = tasks.pop_front()?;
        let result = (|| -> Result<()> {
            if file.should_recurse(budget, level) {
                // Oversized partition: re-partition at a deeper level.
                if let Some(n) = &prof {
                    bump(&n.spill_passes, 1);
                }
                let mut sub = new_partitions(&dir, &prof)?;
                let mut reader = file.reader()?;
                while let Some((_, row)) = reader.next()? {
                    let p = partition_of(row.values()[..key_len].iter(), level);
                    sub[p].write(0, &row)?;
                }
                for mut f in sub {
                    if f.rows() > 0 {
                        f.seal()?;
                        tasks.push_back((f, level + 1));
                    }
                }
                return Ok(());
            }
            let mut merged: HashMap<Box<[Value]>, Vec<Acc>> = HashMap::new();
            let mut reader = file.reader()?;
            while let Some((_, row)) = reader.next()? {
                let key: Box<[Value]> = row.values()[..key_len].to_vec().into();
                let accs = partial_accs(aggs, &row, key_len)?;
                match merged.entry(key) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        merge_accs(e.get_mut(), &accs)
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(accs);
                    }
                }
            }
            let mut rows: Vec<Row> = merged
                .into_iter()
                .map(|(k, accs)| partial_row(&k, &accs))
                .collect();
            rows.sort();
            ready.extend(rows);
            Ok(())
        })();
        if let Err(e) = result {
            failed = true;
            return Some(Err(e));
        }
    })))
}

// ---------------------------------------------------------------------------
// Spilling distinct
// ---------------------------------------------------------------------------

/// Record tags in a distinct partition file.
const TAG_EMITTED: u8 = 0;
const TAG_FRESH: u8 = 1;

/// Hybrid streaming/spilling distinct.
///
/// Streams first occurrences exactly like the in-memory operator while
/// the seen-set fits `budget`. Once exceeded, the seen rows are
/// partitioned to disk tagged [`TAG_EMITTED`], all remaining input is
/// partitioned tagged [`TAG_FRESH`], and each partition then emits its
/// fresh-and-unseen rows (oversized partitions recurse). Rows emitted
/// before the switch keep their order; spilled rows arrive partition by
/// partition in input order — the multiset matches the in-memory
/// operator exactly.
pub(crate) struct SpillDistinct<'a> {
    input: Box<dyn Iterator<Item = Result<super::Chunk>> + 'a>,
    seen: HashSet<Row>,
    seen_bytes: usize,
    budget: usize,
    dir: PathBuf,
    batch: usize,
    state: DistinctState,
    pending: VecDeque<Result<super::Chunk>>,
    prof: SpillProf,
}

enum DistinctState {
    Streaming,
    Spilling {
        parts: Vec<RunFile>,
    },
    Draining {
        tasks: VecDeque<(RunFile, u32)>,
        ready: VecDeque<Row>,
    },
    Done,
}

impl<'a> SpillDistinct<'a> {
    pub(crate) fn new(
        input: Box<dyn Iterator<Item = Result<super::Chunk>> + 'a>,
        budget: usize,
        dir: &Path,
        batch: usize,
        prof: SpillProf,
    ) -> SpillDistinct<'a> {
        SpillDistinct {
            input,
            seen: HashSet::new(),
            seen_bytes: 0,
            budget,
            dir: dir.to_path_buf(),
            batch,
            state: DistinctState::Streaming,
            pending: VecDeque::new(),
            prof,
        }
    }

    /// Transition Streaming → Spilling: partition the seen rows.
    fn spill_seen(&mut self) -> Result<()> {
        let mut parts = new_partitions(&self.dir, &self.prof)?;
        for row in self.seen.drain() {
            let p = partition_of(row.values().iter(), 0);
            parts[p].write(TAG_EMITTED, &row)?;
        }
        self.seen_bytes = 0;
        self.state = DistinctState::Spilling { parts };
        Ok(())
    }
}

impl Iterator for SpillDistinct<'_> {
    type Item = Result<super::Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Some(item);
            }
            match &mut self.state {
                DistinctState::Streaming => match self.input.next() {
                    Some(Err(e)) => return Some(Err(e)),
                    Some(Ok(mut chunk)) => {
                        let seen = &mut self.seen;
                        let mut added = 0usize;
                        chunk.filter_in_place(|row| {
                            if seen.insert(row.clone()) {
                                added += row_bytes(row) + HASH_ENTRY_OVERHEAD;
                                true
                            } else {
                                false
                            }
                        });
                        self.seen_bytes += added;
                        if let Some(n) = &self.prof {
                            raise(&n.peak_bytes, self.seen_bytes as u64);
                        }
                        let over = self.seen_bytes > self.budget;
                        let out = if chunk.is_empty() {
                            chunk.recycle();
                            None
                        } else {
                            Some(Ok(chunk))
                        };
                        if over {
                            if let Err(e) = self.spill_seen() {
                                self.state = DistinctState::Done;
                                if let Some(out) = out {
                                    self.pending.push_back(out);
                                }
                                self.pending.push_back(Err(e));
                                continue;
                            }
                        }
                        match out {
                            Some(out) => return Some(out),
                            None => continue,
                        }
                    }
                    None => {
                        self.state = DistinctState::Done;
                        return None;
                    }
                },
                DistinctState::Spilling { parts } => match self.input.next() {
                    Some(Err(e)) => return Some(Err(e)),
                    Some(Ok(mut chunk)) => {
                        chunk.ensure_rows();
                        let mut failed = None;
                        for row in chunk.iter() {
                            let p = partition_of(row.values().iter(), 0);
                            if let Err(e) = parts[p].write(TAG_FRESH, row) {
                                failed = Some(e);
                                break;
                            }
                        }
                        chunk.recycle();
                        if let Some(e) = failed {
                            self.state = DistinctState::Done;
                            return Some(Err(e));
                        }
                    }
                    None => {
                        let mut parts =
                            match std::mem::replace(&mut self.state, DistinctState::Done) {
                                DistinctState::Spilling { parts } => parts,
                                _ => unreachable!("matched Spilling above"),
                            };
                        if let Err(e) = parts.iter_mut().try_for_each(RunFile::seal) {
                            return Some(Err(e));
                        }
                        self.state = DistinctState::Draining {
                            tasks: parts.into_iter().map(|f| (f, 1)).collect(),
                            ready: VecDeque::new(),
                        };
                    }
                },
                DistinctState::Draining { tasks, ready } => {
                    if !ready.is_empty() {
                        let take = ready.len().min(self.batch);
                        let rows: Vec<Row> = ready.drain(..take).collect();
                        return Some(Ok(super::Chunk::new(rows)));
                    }
                    let Some((mut file, level)) = tasks.pop_front() else {
                        self.state = DistinctState::Done;
                        return None;
                    };
                    let budget = self.budget;
                    let dir = self.dir.clone();
                    let prof = self.prof.clone();
                    let result = (|| -> Result<()> {
                        if file.should_recurse(budget, level) {
                            if let Some(n) = &prof {
                                bump(&n.spill_passes, 1);
                            }
                            let mut sub = new_partitions(&dir, &prof)?;
                            let mut reader = file.reader()?;
                            while let Some((tag, row)) = reader.next()? {
                                let p = partition_of(row.values().iter(), level);
                                sub[p].write(tag, &row)?;
                            }
                            for mut f in sub {
                                if f.rows() > 0 {
                                    f.seal()?;
                                    tasks.push_back((f, level + 1));
                                }
                            }
                            return Ok(());
                        }
                        let mut local: HashSet<Row> = HashSet::new();
                        let mut reader = file.reader()?;
                        while let Some((tag, row)) = reader.next()? {
                            let fresh = local.insert(row.clone());
                            if fresh && tag == TAG_FRESH {
                                ready.push_back(row);
                            }
                        }
                        Ok(())
                    })();
                    if let Err(e) = result {
                        self.state = DistinctState::Done;
                        return Some(Err(e));
                    }
                }
                DistinctState::Done => return None,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Grace hash join
// ---------------------------------------------------------------------------

/// The outcome of consuming a join's build side under a budget: either
/// the familiar in-memory hash table, or build partitions on disk.
pub(crate) enum BuildSide {
    InMemory(HashMap<Box<[Value]>, Vec<Row>>),
    Spilled(Vec<RunFile>),
}

/// Consume the build input into a hash table, partitioning everything to
/// disk the moment the table exceeds `budget`. Build-side errors surface
/// here (open time), exactly like the in-memory build.
pub(crate) fn build_or_spill(
    input: impl Iterator<Item = Result<super::Chunk>>,
    key_cols: &[usize],
    budget: usize,
    dir: &Path,
    prof: SpillProf,
) -> Result<BuildSide> {
    let mut map: HashMap<Box<[Value]>, Vec<Row>> = HashMap::new();
    let mut bytes = 0usize;
    let mut parts: Option<Vec<RunFile>> = None;
    let mut scratch: Vec<Row> = Vec::new();
    for chunk in input {
        chunk?.drain_into(&mut scratch);
        for row in scratch.drain(..) {
            match &mut parts {
                None => {
                    bytes += row_bytes(&row) + HASH_ENTRY_OVERHEAD;
                    if let Some(n) = &prof {
                        raise(&n.peak_bytes, bytes as u64);
                    }
                    let key: Box<[Value]> = key_cols.iter().map(|&c| row[c].clone()).collect();
                    map.entry(key).or_default().push(row);
                    if bytes > budget {
                        let files = parts.insert(new_partitions(dir, &prof)?);
                        for (_, rows) in map.drain() {
                            for row in rows {
                                let p = partition_of(key_cols.iter().map(|&c| &row[c]), 0);
                                files[p].write(0, &row)?;
                            }
                        }
                        bytes = 0;
                    }
                }
                Some(files) => {
                    let p = partition_of(key_cols.iter().map(|&c| &row[c]), 0);
                    files[p].write(0, &row)?;
                }
            }
        }
    }
    Ok(match parts {
        None => BuildSide::InMemory(map),
        Some(mut files) => {
            files.iter_mut().try_for_each(RunFile::seal)?;
            BuildSide::Spilled(files)
        }
    })
}

/// The grace hash join's partition-pair processor: a lazy chunk iterator
/// that first partitions the probe stream to disk, then joins partition
/// pairs one at a time (re-partitioning oversized build partitions).
///
/// With `anti` set the probe phase inverts: a probe (left) row is
/// emitted iff its partition's build table holds **no** row satisfying
/// the residual — the grace-partitioned anti-join. Partitioning by the
/// key hash keeps this exact: a left row's potential matches live in
/// exactly one build partition.
pub(crate) struct GraceJoin<'a> {
    probe: Option<Box<dyn Iterator<Item = Result<super::Chunk>> + 'a>>,
    on: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
    budget: usize,
    dir: PathBuf,
    batch: usize,
    anti: bool,
    prof: SpillProf,
    /// (build partition, probe partition, level) pairs awaiting work.
    tasks: VecDeque<(RunFile, RunFile, u32)>,
    /// Queued output (chunks and split-off residual errors) in order.
    pending: VecDeque<Result<super::Chunk>>,
    /// The partition pair currently streaming probes.
    current: Option<CurrentPair>,
    build_parts: Option<Vec<RunFile>>,
    done: bool,
}

struct CurrentPair {
    table: HashMap<Box<[Value]>, Vec<Row>>,
    /// Keeps the pair's files alive until the probe stream finishes.
    _build: RunFile,
    _probe: RunFile,
    reader: RunReader,
}

impl<'a> GraceJoin<'a> {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        probe: Box<dyn Iterator<Item = Result<super::Chunk>> + 'a>,
        build_parts: Vec<RunFile>,
        on: &'a [(usize, usize)],
        residual: Option<&'a Expr>,
        budget: usize,
        dir: &Path,
        batch: usize,
        prof: SpillProf,
    ) -> GraceJoin<'a> {
        GraceJoin {
            probe: Some(probe),
            on,
            residual,
            budget,
            dir: dir.to_path_buf(),
            batch,
            anti: false,
            prof,
            tasks: VecDeque::new(),
            pending: VecDeque::new(),
            current: None,
            build_parts: Some(build_parts),
            done: false,
        }
    }

    /// The anti-join flavor: emit probe rows *without* a residual-
    /// satisfying build match. Pairs whose build partition is empty are
    /// still processed (their probe rows all pass).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new_anti(
        probe: Box<dyn Iterator<Item = Result<super::Chunk>> + 'a>,
        build_parts: Vec<RunFile>,
        on: &'a [(usize, usize)],
        residual: Option<&'a Expr>,
        budget: usize,
        dir: &Path,
        batch: usize,
        prof: SpillProf,
    ) -> GraceJoin<'a> {
        let mut join = GraceJoin::new(probe, build_parts, on, residual, budget, dir, batch, prof);
        join.anti = true;
        join
    }

    /// Drain the probe stream into partitions matching the build's. Probe
    /// errors are queued in encounter order (they precede all join
    /// output: nothing has been emitted yet).
    fn partition_probe(&mut self) -> Result<()> {
        let probe = self.probe.take().expect("probe partitioned once");
        let mut parts = new_partitions(&self.dir, &self.prof)?;
        for item in probe {
            match item {
                Err(e) => self.pending.push_back(Err(e)),
                Ok(mut chunk) => {
                    chunk.ensure_rows();
                    for row in chunk.iter() {
                        let p = partition_of(self.on.iter().map(|&(lc, _)| &row[lc]), 0);
                        parts[p].write(0, row)?;
                    }
                    chunk.recycle();
                }
            }
        }
        let build = self.build_parts.take().expect("build partitions present");
        for (b, mut p) in build.into_iter().zip(parts) {
            // A join pair needs rows on both sides; an anti-join pair
            // with an empty build side still emits all its probe rows.
            if p.rows() > 0 && (self.anti || b.rows() > 0) {
                p.seal()?;
                self.tasks.push_back((b, p, 1));
            }
        }
        Ok(())
    }

    /// Load one build partition (re-partitioning the pair if oversized)
    /// and set it up as the current probe target.
    fn start_task(&mut self, mut build: RunFile, mut probe: RunFile, level: u32) -> Result<()> {
        if build.should_recurse(self.budget, level) {
            if let Some(n) = &self.prof {
                bump(&n.spill_passes, 1);
            }
            let rcols: Vec<usize> = self.on.iter().map(|&(_, rc)| rc).collect();
            let lcols: Vec<usize> = self.on.iter().map(|&(lc, _)| lc).collect();
            let mut bsub = new_partitions(&self.dir, &self.prof)?;
            let mut reader = build.reader()?;
            while let Some((_, row)) = reader.next()? {
                let p = partition_of(rcols.iter().map(|&c| &row[c]), level);
                bsub[p].write(0, &row)?;
            }
            let mut psub = new_partitions(&self.dir, &self.prof)?;
            let mut reader = probe.reader()?;
            while let Some((_, row)) = reader.next()? {
                let p = partition_of(lcols.iter().map(|&c| &row[c]), level);
                psub[p].write(0, &row)?;
            }
            for (mut b, mut p) in bsub.into_iter().zip(psub) {
                if p.rows() > 0 && (self.anti || b.rows() > 0) {
                    b.seal()?;
                    p.seal()?;
                    self.tasks.push_back((b, p, level + 1));
                }
            }
            return Ok(());
        }
        let mut table: HashMap<Box<[Value]>, Vec<Row>> = HashMap::new();
        let mut reader = build.reader()?;
        while let Some((_, row)) = reader.next()? {
            let key: Box<[Value]> = self.on.iter().map(|&(_, rc)| row[rc].clone()).collect();
            table.entry(key).or_default().push(row);
        }
        let reader = probe.reader()?;
        self.current = Some(CurrentPair {
            table,
            _build: build,
            _probe: probe,
            reader,
        });
        Ok(())
    }

    /// Probe up to `batch` output rows from the current pair. Residual
    /// evaluation errors split the output exactly like the in-memory
    /// probe loop: the successful prefix first, then the error.
    fn pump_current(&mut self) -> Result<()> {
        let Some(pair) = &mut self.current else {
            return Ok(());
        };
        let mut out: Vec<Row> = Vec::with_capacity(self.batch);
        loop {
            let Some((_, lrow)) = pair.reader.next()? else {
                self.current = None;
                break;
            };
            let key: Box<[Value]> = self.on.iter().map(|&(lc, _)| lrow[lc].clone()).collect();
            if self.anti {
                // Emit the left row iff no build row satisfies the
                // residual; a residual error drops the row and splits
                // the output, like the in-memory anti filter.
                match pair.table.get(&key) {
                    None => out.push(lrow),
                    Some(hits) => match self.residual {
                        None => {}
                        Some(e) => {
                            let mut keep = true;
                            for rrow in hits {
                                match e.eval_bool(&lrow.concat(rrow)) {
                                    Ok(true) => {
                                        keep = false;
                                        break;
                                    }
                                    Ok(false) => {}
                                    Err(err) => {
                                        if !out.is_empty() {
                                            self.pending.push_back(Ok(super::Chunk::new(
                                                std::mem::take(&mut out),
                                            )));
                                        }
                                        self.pending.push_back(Err(err));
                                        keep = false;
                                        break;
                                    }
                                }
                            }
                            if keep {
                                out.push(lrow);
                            }
                        }
                    },
                }
            } else if let Some(hits) = pair.table.get(&key) {
                for rrow in hits {
                    let joined = lrow.concat(rrow);
                    match self.residual {
                        None => out.push(joined),
                        Some(e) => match e.eval_bool(&joined) {
                            Ok(true) => out.push(joined),
                            Ok(false) => {}
                            Err(err) => {
                                if !out.is_empty() {
                                    self.pending
                                        .push_back(Ok(super::Chunk::new(std::mem::take(&mut out))));
                                }
                                self.pending.push_back(Err(err));
                                // One error per failing probe row: its
                                // remaining matches are abandoned,
                                // exactly like the in-memory probe
                                // closure returning `Err`.
                                break;
                            }
                        },
                    }
                }
            }
            if out.len() >= self.batch {
                break;
            }
        }
        if !out.is_empty() {
            self.pending.push_back(Ok(super::Chunk::new(out)));
        }
        Ok(())
    }
}

impl Iterator for GraceJoin<'_> {
    type Item = Result<super::Chunk>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.pending.pop_front() {
                return Some(item);
            }
            if self.done {
                return None;
            }
            let step = (|| -> Result<bool> {
                if self.probe.is_some() {
                    self.partition_probe()?;
                    return Ok(true);
                }
                if self.current.is_some() {
                    self.pump_current()?;
                    return Ok(true);
                }
                match self.tasks.pop_front() {
                    Some((b, p, level)) => {
                        self.start_task(b, p, level)?;
                        Ok(true)
                    }
                    None => Ok(false),
                }
            })();
            match step {
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
                Ok(true) => continue,
                Ok(false) => {
                    self.done = true;
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn tmp() -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "beliefdb-spill-test-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn run_file_round_trips_and_self_deletes() {
        let dir = tmp();
        let rows = [row![1, "alpha"], row![Value::Null, true], row![-7, ""]];
        let path;
        {
            let mut run = RunFile::create(&dir, None).unwrap();
            for (i, r) in rows.iter().enumerate() {
                run.write(i as u8, r).unwrap();
            }
            path = run.path.clone();
            assert!(path.exists());
            let mut reader = run.reader().unwrap();
            for (i, r) in rows.iter().enumerate() {
                let (tag, row) = reader.next().unwrap().unwrap();
                assert_eq!(tag, i as u8);
                assert_eq!(&row, r);
            }
            assert!(reader.next().unwrap().is_none());
        }
        assert!(!path.exists(), "run file must delete itself on drop");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_run_records_error_cleanly() {
        let dir = tmp();
        let mut run = RunFile::create(&dir, None).unwrap();
        run.write(0, &row![1, "payload"]).unwrap();
        // Flush the pending block to disk, then flip a payload byte
        // behind the writer's back.
        run.seal().unwrap();
        let mut bytes = std::fs::read(&run.path).unwrap();
        let n = bytes.len();
        bytes[n - 2] ^= 0x20;
        std::fs::write(&run.path, &bytes).unwrap();
        let mut reader = run.reader().unwrap();
        assert!(matches!(reader.next(), Err(StorageError::Corrupt(_))));
        drop(run);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spill_points_counts_materialization_points() {
        let plan = Plan::scan("T")
            .join(Plan::scan("S"), vec![(0, 0)])
            .distinct()
            .sort(vec![0]);
        assert_eq!(spill_points(&plan), 3);
        let agg = Plan::Aggregate {
            input: Box::new(Plan::scan("T").join_where(
                Plan::scan("S"),
                vec![],
                Expr::col_eq_col(0, 1),
            )),
            group_by: vec![0],
            aggs: vec![Agg::Count],
        };
        // The cross join's materialized right side counts alongside the
        // aggregate.
        assert_eq!(spill_points(&agg), 2);
        // Anti-joins count whether keyed (hash build) or residual-only
        // (collected right side with overflow runs).
        let keyed = Plan::scan("T").anti_join(Plan::scan("S"), vec![(0, 0)]);
        assert_eq!(spill_points(&keyed), 1);
        let residual_only = Plan::AntiJoin {
            left: Box::new(Plan::scan("T")),
            right: Box::new(Plan::scan("S")),
            on: vec![],
            residual: Some(Expr::col_eq_col(0, 2)),
        };
        assert_eq!(spill_points(&residual_only), 1);
    }

    #[test]
    fn residual_only_anti_join_right_side_is_budgeted() {
        use crate::exec::Executor;
        use crate::schema::TableSchema;
        let dir = tmp();
        let mut db = crate::catalog::Database::new();
        let t = db
            .create_table(TableSchema::keyless("T", &["a", "b"]))
            .unwrap();
        for i in 0..500i64 {
            t.insert(row![i, (i * 3) % 101]).unwrap();
        }
        let s = db
            .create_table(TableSchema::keyless("S", &["k", "tag"]))
            .unwrap();
        for i in 0..400i64 {
            s.insert(row![i * 2, i]).unwrap();
        }
        // No equality keys, only a residual: T rows with no S row of the
        // same parity-scaled key survive.
        let plan = Plan::AntiJoin {
            left: Box::new(Plan::scan("T")),
            right: Box::new(Plan::scan("S")),
            on: vec![],
            residual: Some(Expr::col_eq_col(0, 2)),
        };
        let unlimited = Executor::new(&db)
            .open_chunks(&plan)
            .unwrap()
            .collect_rows()
            .unwrap();
        assert!(!unlimited.is_empty());
        for budget in [0usize, 64, 4096, 1 << 20] {
            let opts = SpillOptions::with_budget(budget).in_dir(&dir);
            let got = Executor::with_spill(&db, opts)
                .open_chunks(&plan)
                .unwrap()
                .collect_rows()
                .unwrap();
            // The anti-join is a pure left filter: overflowing the right
            // side to runs must not even change the output *order*.
            assert_eq!(got, unlimited, "budget {budget} diverged");
        }
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "spill files left behind"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn budgeted_executor_matches_unlimited_on_every_materialization_point() {
        use crate::exec::Executor;
        use crate::schema::TableSchema;
        let dir = tmp();
        let mut db = crate::catalog::Database::new();
        let t = db
            .create_table(TableSchema::keyless("T", &["a", "b"]))
            .unwrap();
        for i in 0..2_000i64 {
            t.insert(row![i % 331, (i * 7) % 97]).unwrap();
        }
        let s = db
            .create_table(TableSchema::keyless("S", &["k", "tag"]))
            .unwrap();
        for i in 0..600i64 {
            s.insert(row![i % 331, i]).unwrap();
        }
        let plans = vec![
            Plan::scan("T").sort(vec![1, 0]),
            Plan::scan("T").distinct(),
            Plan::scan("T").join(Plan::scan("S"), vec![(0, 0)]),
            Plan::Aggregate {
                input: Box::new(Plan::scan("T")),
                group_by: vec![0],
                aggs: vec![Agg::Count, Agg::Max(1), Agg::Min(1)],
            },
            Plan::Aggregate {
                input: Box::new(Plan::scan("T")),
                group_by: vec![],
                aggs: vec![Agg::Count, Agg::Min(1)],
            },
        ];
        for plan in &plans {
            let unlimited = Executor::new(&db)
                .open_chunks(plan)
                .unwrap()
                .collect_rows()
                .unwrap();
            for budget in [0usize, 64, 4096, 1 << 20] {
                let opts = SpillOptions::with_budget(budget).in_dir(&dir);
                let mut got = Executor::with_spill(&db, opts)
                    .open_chunks(plan)
                    .unwrap()
                    .collect_rows()
                    .unwrap();
                let mut want = unlimited.clone();
                // Sort output must match exactly; everything else as a
                // multiset.
                if matches!(plan, Plan::Sort { .. }) {
                    assert_eq!(got, want, "sort order diverged at budget {budget}");
                } else {
                    got.sort();
                    want.sort();
                    assert_eq!(got, want, "budget {budget} diverged on {plan:?}");
                }
            }
        }
        // Every spill file was cleaned up.
        assert_eq!(
            std::fs::read_dir(&dir).unwrap().count(),
            0,
            "spill files left behind"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn level_changes_the_partition_shuffle() {
        let rows: Vec<Row> = (0..64i64).map(|i| row![i]).collect();
        let level0: Vec<usize> = rows
            .iter()
            .map(|r| partition_of(r.values().iter(), 0))
            .collect();
        let level1: Vec<usize> = rows
            .iter()
            .map(|r| partition_of(r.values().iter(), 1))
            .collect();
        assert_ne!(level0, level1, "levels must shuffle differently");
    }
}
