//! The row-at-a-time (tuple-at-a-time) streaming executor.
//!
//! This is the PR 2 pull-based pipeline, kept intact after the executor
//! went chunk-at-a-time ([`super::stream`]): one dynamic-dispatch
//! `next()` call per row, one `Expr` interpretation per predicate per
//! row. It remains for two reasons:
//!
//! * it is the **baseline** the `exec_vectorized` bench measures the
//!   vectorized executor against (the speedup claim is relative to this
//!   code, not to the materializing evaluator);
//! * it is a third voice in the differential suites: chunked,
//!   row-at-a-time, and materializing execution must agree on every
//!   fuzzed plan and BCQ.
//!
//! Operator classification is identical to the chunked executor: Scan,
//! Selection, Projection, Union, Limit, Distinct, and the probe side of
//! (anti-)joins pipeline; hash-join build sides, Aggregate, and Sort
//! materialize. The index-nested-loop path buffers left rows up to the
//! `|table|/4` break-even budget and falls back to a hash build past it.

use super::stream::RowStream;
use super::{aggregate_stream, try_index_selection};
use crate::catalog::Database;
use crate::error::Result;
use crate::expr::Expr;
use crate::plan::Plan;
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// A boxed iterator of fallible rows — the wire between operators.
type BoxRowIter<'a> = Box<dyn Iterator<Item = Result<Row>> + 'a>;

/// Entry point of the row-at-a-time executor.
pub struct RowExecutor<'a> {
    db: &'a Database,
}

impl<'a> RowExecutor<'a> {
    pub fn new(db: &'a Database) -> Self {
        RowExecutor { db }
    }

    /// Open a plan as a row stream. Arities are validated once up front;
    /// materialization points (aggregate/sort inputs, join build sides)
    /// do their buffering eagerly here, pipelined operators do no work
    /// until the stream is pulled.
    pub fn open(&self, plan: &'a Plan) -> Result<RowStream<'a>> {
        plan.arity(self.db)?;
        Ok(RowStream::new(open_node(self.db, plan)?))
    }
}

/// Open `plan` against `db` as a tuple-at-a-time [`RowStream`].
pub fn stream_rows<'a>(db: &'a Database, plan: &'a Plan) -> Result<RowStream<'a>> {
    RowExecutor::new(db).open(plan)
}

fn collect(iter: BoxRowIter<'_>) -> Result<Vec<Row>> {
    iter.collect()
}

fn open_node<'a>(db: &'a Database, plan: &'a Plan) -> Result<BoxRowIter<'a>> {
    match plan {
        Plan::Scan { table } => match db.table(table) {
            Ok(t) => Ok(Box::new(t.iter().map(|(_, r)| Ok(r.clone())))),
            // Virtual (`sys.*`) relation: snapshot the provider's rows.
            Err(e) => match db.virtual_table(table) {
                Some(vt) => Ok(Box::new(vt.rows(db).into_iter().map(Ok))),
                None => Err(e),
            },
        },
        Plan::Values { rows, .. } => Ok(Box::new(rows.iter().map(|r| Ok(r.clone())))),
        Plan::Selection { input, predicate } => {
            // Index access path: a selection directly over a scan whose
            // predicate pins indexed columns fetches candidates through
            // the index (a small, already-filtered set).
            if let Plan::Scan { table } = input.as_ref() {
                if let Ok(t) = db.table(table) {
                    if let Some(rows) = try_index_selection(t, predicate)? {
                        return Ok(Box::new(rows.into_iter().map(Ok)));
                    }
                }
            }
            let input = open_node(db, input)?;
            Ok(Box::new(input.filter_map(move |item| match item {
                Ok(row) => match predicate.eval_bool(&row) {
                    Ok(true) => Some(Ok(row)),
                    Ok(false) => None,
                    Err(e) => Some(Err(e)),
                },
                Err(e) => Some(Err(e)),
            })))
        }
        Plan::Projection { input, exprs } => {
            let input = open_node(db, input)?;
            Ok(Box::new(input.map(move |item| {
                let row = item?;
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(e.eval(&row)?);
                }
                Ok(Row::new(vals))
            })))
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => open_join(db, left, right, on, residual.as_ref()),
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => open_anti_join(db, left, right, on, residual.as_ref()),
        Plan::Distinct { input } => {
            let input = open_node(db, input)?;
            let mut seen: HashSet<Row> = HashSet::new();
            Ok(Box::new(input.filter_map(move |item| match item {
                Ok(row) => seen.insert(row.clone()).then_some(Ok(row)),
                Err(e) => Some(Err(e)),
            })))
        }
        Plan::Union { inputs } => {
            let mut streams = Vec::with_capacity(inputs.len());
            for p in inputs {
                streams.push(open_node(db, p)?);
            }
            Ok(Box::new(streams.into_iter().flatten()))
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            // Materialization point: the accumulators must see every input
            // row, but only one row per group is ever held.
            let input = open_node(db, input)?;
            let rows = aggregate_stream(input, group_by, aggs)?;
            Ok(Box::new(rows.into_iter().map(Ok)))
        }
        Plan::Sort { input, by } => {
            // Materialization point.
            let mut rows = collect(open_node(db, input)?)?;
            rows.sort_by(|a, b| super::spill::cmp_by(by, a, b));
            Ok(Box::new(rows.into_iter().map(Ok)))
        }
        Plan::Limit { input, n } => {
            let input = open_node(db, input)?;
            Ok(Box::new(input.take(*n)))
        }
    }
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

/// The right side of a join as a base-table access: `(table, selection)`.
pub(super) fn base_access(plan: &Plan) -> Option<(&str, Option<&Expr>)> {
    match plan {
        Plan::Scan { table } => Some((table, None)),
        Plan::Selection { input, predicate } => match input.as_ref() {
            Plan::Scan { table } => Some((table, Some(predicate))),
            _ => None,
        },
        _ => None,
    }
}

fn open_join<'a>(
    db: &'a Database,
    left: &'a Plan,
    right: &'a Plan,
    on: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
) -> Result<BoxRowIter<'a>> {
    if !on.is_empty() {
        // Base tables only: virtual (`sys.*`) relations have no indexes,
        // so they take the generic hash-join path below.
        if let Some((table_name, pred)) = base_access(right).filter(|(n, _)| db.has_table(n)) {
            let table = db.table(table_name)?;
            let rcols: Vec<usize> = on.iter().map(|&(_, rc)| rc).collect();
            let pk_path = table.schema().key_column() == Some(0) && rcols == [0];
            let index = if pk_path {
                None
            } else {
                table
                    .find_index_for(&rcols)
                    .map(|(name, order)| (name.to_string(), order.to_vec()))
            };
            if pk_path || index.is_some() {
                // Adaptive index-nested-loop: buffer left rows up to the
                // break-even point of the materializing heuristic
                // (`4·|left| ≤ |table|`). Exhausting within the budget
                // means probing beats building a hash over the table.
                let budget = table.len().max(1) / 4;
                let mut left_stream = open_node(db, left)?;
                let mut buf: Vec<Row> = Vec::new();
                let mut small_left = true;
                loop {
                    if buf.len() > budget {
                        small_left = false;
                        break;
                    }
                    match left_stream.next() {
                        Some(row) => buf.push(row?),
                        None => break,
                    }
                }
                if small_left {
                    return Ok(Box::new(IndexJoin {
                        table,
                        lrows: buf.into_iter(),
                        on,
                        pred,
                        residual,
                        pk_path,
                        index,
                        current: None,
                        pos: 0,
                    }));
                }
                // Too many left rows: replay the buffer in front of the
                // rest of the stream and hash-join instead.
                let probe: BoxRowIter<'a> = Box::new(buf.into_iter().map(Ok).chain(left_stream));
                return hash_join(db, probe, right, on, residual);
            }
        }
        let probe = open_node(db, left)?;
        return hash_join(db, probe, right, on, residual);
    }
    // Cross/theta join: the right side is materialized once, the left
    // side pipelines through the nested loop.
    let rrows = collect(open_node(db, right)?)?;
    let left = open_node(db, left)?;
    Ok(Box::new(NestedLoopJoin {
        left,
        rrows,
        residual,
        current: None,
        pos: 0,
    }))
}

/// Build a hash table over the right side, then stream the probe rows.
fn hash_join<'a>(
    db: &'a Database,
    probe: BoxRowIter<'a>,
    right: &'a Plan,
    on: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
) -> Result<BoxRowIter<'a>> {
    let mut build: HashMap<Box<[Value]>, Vec<Row>> = HashMap::new();
    for item in open_node(db, right)? {
        let row = item?;
        let key: Box<[Value]> = on.iter().map(|&(_, rc)| row[rc].clone()).collect();
        build.entry(key).or_default().push(row);
    }
    Ok(Box::new(HashJoin {
        probe,
        build,
        on,
        residual,
        current: None,
        pos: 0,
    }))
}

/// Streaming probe over a pre-built hash table. Output rows are
/// `probe ++ build` (the probe side is the join's left input).
struct HashJoin<'a> {
    probe: BoxRowIter<'a>,
    build: HashMap<Box<[Value]>, Vec<Row>>,
    on: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
    current: Option<(Row, Box<[Value]>)>,
    pos: usize,
}

impl Iterator for HashJoin<'_> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((lrow, key)) = &self.current {
                let hits = self.build.get(key).expect("current key has matches");
                while self.pos < hits.len() {
                    let rrow = &hits[self.pos];
                    self.pos += 1;
                    let joined = lrow.concat(rrow);
                    match self.residual {
                        None => return Some(Ok(joined)),
                        Some(e) => match e.eval_bool(&joined) {
                            Ok(true) => return Some(Ok(joined)),
                            Ok(false) => {}
                            Err(err) => return Some(Err(err)),
                        },
                    }
                }
                self.current = None;
            }
            match self.probe.next()? {
                Ok(lrow) => {
                    let key: Box<[Value]> =
                        self.on.iter().map(|&(lc, _)| lrow[lc].clone()).collect();
                    if self.build.contains_key(&key) {
                        self.current = Some((lrow, key));
                        self.pos = 0;
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Index-nested-loop join: bounded buffered left rows probe the right
/// table's primary key or a covering secondary index, emitting matches
/// one at a time.
struct IndexJoin<'a> {
    table: &'a Table,
    lrows: std::vec::IntoIter<Row>,
    on: &'a [(usize, usize)],
    /// Selection predicate of a `Selection`-over-`Scan` right side.
    pred: Option<&'a Expr>,
    residual: Option<&'a Expr>,
    pk_path: bool,
    index: Option<(String, Vec<usize>)>,
    current: Option<(Row, Vec<&'a Row>)>,
    pos: usize,
}

impl IndexJoin<'_> {
    /// Re-verify every join pair (with duplicate right columns in `on` the
    /// index key only pins one left column per right column), apply the
    /// right-side selection and the residual.
    fn try_emit(&self, lrow: &Row, rrow: &Row) -> Result<Option<Row>> {
        for &(lc, rc) in self.on {
            if lrow[lc] != rrow[rc] {
                return Ok(None);
            }
        }
        if let Some(p) = self.pred {
            if !p.eval_bool(rrow)? {
                return Ok(None);
            }
        }
        let joined = lrow.concat(rrow);
        let keep = match self.residual {
            Some(e) => e.eval_bool(&joined)?,
            None => true,
        };
        Ok(keep.then_some(joined))
    }
}

impl Iterator for IndexJoin<'_> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some((lrow, hits)) = &self.current {
                while self.pos < hits.len() {
                    let rrow = hits[self.pos];
                    self.pos += 1;
                    match self.try_emit(lrow, rrow) {
                        Ok(Some(joined)) => return Some(Ok(joined)),
                        Ok(None) => {}
                        Err(e) => return Some(Err(e)),
                    }
                }
                self.current = None;
            }
            let lrow = self.lrows.next()?;
            let hits: Vec<&Row> = if self.pk_path {
                let lc = self.on[0].0;
                self.table.get_by_key(&lrow[lc]).into_iter().collect()
            } else {
                let (name, order) = self.index.as_ref().expect("index path");
                let key: Vec<Value> = order
                    .iter()
                    .map(|rc| {
                        let (lc, _) = self.on.iter().find(|(_, r)| r == rc).expect("covered");
                        lrow[*lc].clone()
                    })
                    .collect();
                match self.table.index_rows(name, &key) {
                    Ok(rows) => rows,
                    Err(e) => return Some(Err(e)),
                }
            };
            if !hits.is_empty() {
                self.current = Some((lrow, hits));
                self.pos = 0;
            }
        }
    }
}

/// Cross/theta join: materialized right rows, streaming left.
struct NestedLoopJoin<'a> {
    left: BoxRowIter<'a>,
    rrows: Vec<Row>,
    residual: Option<&'a Expr>,
    current: Option<Row>,
    pos: usize,
}

impl Iterator for NestedLoopJoin<'_> {
    type Item = Result<Row>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(lrow) = &self.current {
                while self.pos < self.rrows.len() {
                    let rrow = &self.rrows[self.pos];
                    self.pos += 1;
                    let joined = lrow.concat(rrow);
                    match self.residual {
                        None => return Some(Ok(joined)),
                        Some(e) => match e.eval_bool(&joined) {
                            Ok(true) => return Some(Ok(joined)),
                            Ok(false) => {}
                            Err(err) => return Some(Err(err)),
                        },
                    }
                }
                self.current = None;
            }
            match self.left.next()? {
                Ok(lrow) => {
                    if !self.rrows.is_empty() {
                        self.current = Some(lrow);
                        self.pos = 0;
                    }
                }
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

fn open_anti_join<'a>(
    db: &'a Database,
    left: &'a Plan,
    right: &'a Plan,
    on: &'a [(usize, usize)],
    residual: Option<&'a Expr>,
) -> Result<BoxRowIter<'a>> {
    let left_stream = open_node(db, left)?;
    if on.is_empty() {
        // A left row survives iff no right row makes the residual hold.
        let rrows = collect(open_node(db, right)?)?;
        return Ok(Box::new(left_stream.filter_map(move |item| match item {
            Ok(lrow) => {
                for rrow in &rrows {
                    let joined = lrow.concat(rrow);
                    match residual {
                        None => return None,
                        Some(e) => match e.eval_bool(&joined) {
                            Ok(true) => return None,
                            Ok(false) => {}
                            Err(err) => return Some(Err(err)),
                        },
                    }
                }
                Some(Ok(lrow))
            }
            Err(e) => Some(Err(e)),
        })));
    }
    let mut build: HashMap<Box<[Value]>, Vec<Row>> = HashMap::new();
    for item in open_node(db, right)? {
        let row = item?;
        let key: Box<[Value]> = on.iter().map(|&(_, rc)| row[rc].clone()).collect();
        build.entry(key).or_default().push(row);
    }
    Ok(Box::new(left_stream.filter_map(move |item| match item {
        Ok(lrow) => {
            let key: Box<[Value]> = on.iter().map(|&(lc, _)| lrow[lc].clone()).collect();
            match build.get(&key) {
                None => Some(Ok(lrow)),
                Some(hits) => match residual {
                    None => None,
                    Some(e) => {
                        for rrow in hits {
                            let joined = lrow.concat(rrow);
                            match e.eval_bool(&joined) {
                                Ok(true) => return None,
                                Ok(false) => {}
                                Err(err) => return Some(Err(err)),
                            }
                        }
                        Some(Ok(lrow))
                    }
                },
            }
        }
        Err(e) => Some(Err(e)),
    })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_materialized, execute_rows};
    use crate::expr::CmpOp;
    use crate::row;
    use crate::schema::TableSchema;

    fn db() -> Database {
        let mut db = Database::new();
        let users = db
            .create_table(TableSchema::with_key("Users", &["uid", "name"]))
            .unwrap();
        users.insert(row![1, "Alice"]).unwrap();
        users.insert(row![2, "Bob"]).unwrap();
        users.insert(row![3, "Carol"]).unwrap();
        let e = db
            .create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
            .unwrap();
        e.create_index("by_w1_u", &["w1", "u"]).unwrap();
        e.insert(row![0, 1, 1]).unwrap();
        e.insert(row![0, 2, 2]).unwrap();
        e.insert(row![0, 3, 0]).unwrap();
        e.insert(row![1, 2, 2]).unwrap();
        e.insert(row![1, 3, 0]).unwrap();
        db
    }

    fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort();
        rows
    }

    #[test]
    fn row_streaming_matches_materializing_on_basic_operators() {
        let db = db();
        let plans = vec![
            Plan::scan("Users"),
            Plan::scan("Users").select(Expr::col_eq_lit(1, "Bob")),
            Plan::scan("E").project_cols(&[2, 0]),
            Plan::scan("Users").join(Plan::scan("E"), vec![(0, 1)]),
            Plan::scan("Users").join_where(
                Plan::scan("Users"),
                vec![],
                Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::Col(2)),
            ),
            Plan::scan("Users").anti_join(Plan::scan("E"), vec![(0, 1)]),
            Plan::Union {
                inputs: vec![Plan::scan("Users"), Plan::scan("Users")],
            }
            .distinct(),
            Plan::Aggregate {
                input: Box::new(Plan::scan("E")),
                group_by: vec![0],
                aggs: vec![crate::plan::Agg::Count, crate::plan::Agg::Max(2)],
            },
            Plan::scan("Users").sort(vec![1]).limit(2),
        ];
        for plan in &plans {
            assert_eq!(
                sorted(execute_rows(&db, plan).unwrap()),
                sorted(execute_materialized(&db, plan).unwrap()),
                "row-streaming and materializing disagree on {plan:?}"
            );
        }
    }

    #[test]
    fn row_streaming_preserves_scan_order() {
        let db = db();
        let plan = Plan::scan("Users");
        let rows = stream_rows(&db, &plan).unwrap().collect_rows().unwrap();
        assert_eq!(
            rows,
            vec![row![1, "Alice"], row![2, "Bob"], row![3, "Carol"]]
        );
    }

    #[test]
    fn limit_short_circuits_upstream_errors() {
        // The second Values row makes the predicate non-boolean; a
        // streaming Limit(1) never reaches it, while the materializing
        // executor (which filters everything first) errors out.
        let db = db();
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![true], row![1]],
        }
        .select(Expr::Col(0))
        .limit(1);
        assert_eq!(execute_rows(&db, &plan).unwrap(), vec![row![true]]);
        assert!(execute_materialized(&db, &plan).is_err());
    }

    #[test]
    fn distinct_streams_first_occurrences_in_order() {
        let db = db();
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![2], row![1], row![2], row![3], row![1]],
        }
        .distinct();
        let rows = stream_rows(&db, &plan).unwrap().collect_rows().unwrap();
        assert_eq!(rows, vec![row![2], row![1], row![3]]);
    }

    #[test]
    fn errors_propagate_through_pipelines() {
        let db = db();
        // Bare-column predicate over non-boolean rows errors mid-stream.
        let plan = Plan::Values {
            arity: 1,
            rows: vec![row![1]],
        }
        .select(Expr::Col(0));
        assert!(execute_rows(&db, &plan).is_err());
        // And through a projection above it.
        let plan = plan.project_cols(&[0]);
        assert!(execute_rows(&db, &plan).is_err());
    }

    #[test]
    fn adaptive_index_join_takes_index_path_for_small_left() {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..400i64 {
            v.insert(row![i % 20, i]).unwrap();
        }
        let probe = db
            .create_table(TableSchema::keyless("Probe", &["w"]))
            .unwrap();
        probe.insert(row![3]).unwrap();
        probe.insert(row![7]).unwrap();
        let plan = Plan::scan("Probe").join(Plan::scan("V"), vec![(0, 0)]);
        let rows = execute_rows(&db, &plan).unwrap();
        assert_eq!(rows.len(), 40);
        assert_eq!(
            sorted(rows),
            sorted(execute_materialized(&db, &plan).unwrap())
        );
    }

    #[test]
    fn adaptive_index_join_falls_back_for_large_left() {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..40i64 {
            v.insert(row![i % 4, i]).unwrap();
        }
        let probe = db
            .create_table(TableSchema::keyless("Probe", &["w"]))
            .unwrap();
        // More probe rows than |V|/4: the buffer overflows and the join
        // falls back to a hash build, replaying the buffered rows.
        for i in 0..30i64 {
            probe.insert(row![i % 5]).unwrap();
        }
        let plan = Plan::scan("Probe").join(Plan::scan("V"), vec![(0, 0)]);
        assert_eq!(
            sorted(execute_rows(&db, &plan).unwrap()),
            sorted(execute_materialized(&db, &plan).unwrap())
        );
    }
}
