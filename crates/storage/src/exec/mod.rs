//! Plan execution.
//!
//! Three executors share this module:
//!
//! * the **vectorized streaming executor** ([`stream`],
//!   [`stream_chunks`], [`Executor`], [`Chunk`], [`ChunkStream`]) — the
//!   default. Operators exchange batches of up to [`BATCH_SIZE`] rows
//!   with selection vectors; leaf scans emit **columnar windows** over
//!   the table's typed column vectors ([`crate::column`]) without
//!   cloning a row ([`ChunkLayout::Columnar`]; `ChunkLayout::Rows`
//!   reproduces the previous clone-at-scan executor for benchmarking),
//!   filters run kernel passes over primitive column slices into the
//!   selection vector, projections precompile their column maps and
//!   gather straight from columns, and hash joins probe a whole chunk
//!   per call. Scan, Selection, Projection, Union, Limit, and the probe
//!   side of (anti-)joins pipeline; the **materialization points** are
//!   the hash build sides of keyed joins and anti-joins, cross-join
//!   right sides, Aggregate, Sort, and Distinct's seen-set (Distinct
//!   streams first occurrences but still accumulates every distinct
//!   row). Each of those points can spill to disk under a per-query
//!   memory budget — grace hash (anti-)join, external merge sort,
//!   partial-aggregate and distinct partitioning, cross-join and
//!   residual-only anti-join right-side overflow runs; see [`spill`].
//!   [`RowStream`]
//!   adapts the chunk pipeline to the row-at-a-time interface for
//!   external sinks;
//! * the **row-at-a-time streaming executor** ([`stream_rows`],
//!   [`execute_rows`], [`rows::RowExecutor`]) — the PR 2 tuple-at-a-time
//!   pipeline, kept as the baseline the `exec_vectorized` bench measures
//!   against and as a third voice in the differential suites;
//! * the **materializing executor** ([`execute_materialized`]) — the
//!   original operator-at-a-time evaluator, kept as the executable
//!   specification for differential testing.
//!
//! [`execute`] collects the chunk stream, so call sites that want a
//! `Vec<Row>` are unchanged.
//!
//! One access-path optimization is applied by all three, mirroring what
//! the paper gets from SQL Server's "clustered indexes over the internal
//! keys": a `Selection` directly over a `Scan` uses the table's primary
//! key or a covering secondary index when the predicate pins those
//! columns with equality conjuncts, and small join inputs probe indexes
//! on the other side instead of materializing it.

pub mod rows;
pub mod spill;
pub mod stream;

pub use rows::{stream_rows, RowExecutor};
pub use spill::{spill_points, SpillOptions, SPILL_PARTITIONS};
pub(crate) use stream::{chunked_owned, selection_kernel_label};
pub use stream::{
    stream, stream_chunks, Chunk, ChunkLayout, ChunkStream, Executor, RowStream, BATCH_SIZE,
};

use crate::catalog::Database;
use crate::error::{Result, StorageError};
use crate::expr::{CmpOp, Expr};
use crate::plan::{Agg, Plan};
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// Execute a plan against a database, returning materialized rows.
///
/// This is a thin wrapper collecting the vectorized executor's chunks;
/// use [`stream_chunks`] (or [`stream`] for a row-at-a-time view) to
/// consume results without building the vector.
pub fn execute(db: &Database, plan: &Plan) -> Result<Vec<Row>> {
    stream::stream_chunks(db, plan)?.collect_rows()
}

/// Execute with the row-at-a-time streaming executor ([`rows`]): the
/// PR 2 tuple pipeline kept as the vectorization baseline and as a third
/// differential voice next to [`execute`] and [`execute_materialized`].
pub fn execute_rows(db: &Database, plan: &Plan) -> Result<Vec<Row>> {
    rows::stream_rows(db, plan)?.collect_rows()
}

/// Run the plan through the cost-based optimizer (see [`crate::opt`]),
/// then execute it. Semantics are identical to [`execute`]; only the
/// evaluation order (and therefore the running time) changes.
pub fn execute_optimized(db: &Database, plan: &Plan) -> Result<Vec<Row>> {
    let optimized = crate::opt::optimize(db, plan.clone())?;
    let rows = stream::stream_chunks(db, &optimized)?.collect_rows();
    rows
}

/// Execute with the original operator-at-a-time evaluator, which
/// materializes every operator's full output. Kept as the executable
/// specification the streaming executor is differentially tested against
/// (and as the baseline of the `exec_streaming` bench).
pub fn execute_materialized(db: &Database, plan: &Plan) -> Result<Vec<Row>> {
    // Validate arities once at the root; recursion below assumes shapes are
    // consistent.
    plan.arity(db)?;
    run(db, plan)
}

fn run(db: &Database, plan: &Plan) -> Result<Vec<Row>> {
    match plan {
        Plan::Scan { table } => match db.table(table) {
            Ok(t) => Ok(t.scan()),
            // Virtual (`sys.*`) relation: snapshot the provider's rows.
            Err(e) => db.virtual_table(table).map(|vt| vt.rows(db)).ok_or(e),
        },
        Plan::Selection { input, predicate } => {
            if let Plan::Scan { table } = input.as_ref() {
                if let Ok(t) = db.table(table) {
                    if let Some(rows) = try_index_selection(t, predicate)? {
                        return Ok(rows);
                    }
                }
            }
            let rows = run(db, input)?;
            let mut out = Vec::new();
            for r in rows {
                if predicate.eval_bool(&r)? {
                    out.push(r);
                }
            }
            Ok(out)
        }
        Plan::Projection { input, exprs } => {
            let rows = run(db, input)?;
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(e.eval(&r)?);
                }
                out.push(Row::new(vals));
            }
            Ok(out)
        }
        Plan::Join {
            left,
            right,
            on,
            residual,
        } => {
            let lrows = run(db, left)?;
            if let Some(out) = try_index_join(db, &lrows, right, on, residual.as_ref())? {
                return Ok(out);
            }
            let rrows = run(db, right)?;
            join_rows(&lrows, &rrows, on, residual.as_ref())
        }
        Plan::AntiJoin {
            left,
            right,
            on,
            residual,
        } => {
            let lrows = run(db, left)?;
            let rrows = run(db, right)?;
            anti_join_rows(lrows, &rrows, on, residual.as_ref())
        }
        Plan::Distinct { input } => {
            let rows = run(db, input)?;
            let mut seen = std::collections::HashSet::with_capacity(rows.len());
            let mut out = Vec::new();
            for r in rows {
                if seen.insert(r.clone()) {
                    out.push(r);
                }
            }
            Ok(out)
        }
        Plan::Union { inputs } => {
            let mut out = Vec::new();
            for p in inputs {
                out.extend(run(db, p)?);
            }
            Ok(out)
        }
        Plan::Aggregate {
            input,
            group_by,
            aggs,
        } => {
            let rows = run(db, input)?;
            aggregate_stream(rows.into_iter().map(Ok), group_by, aggs)
        }
        Plan::Values { rows, .. } => Ok(rows.clone()),
        Plan::Sort { input, by } => {
            let mut rows = run(db, input)?;
            rows.sort_by(|a, b| spill::cmp_by(by, a, b));
            Ok(rows)
        }
        Plan::Limit { input, n } => {
            let mut rows = run(db, input)?;
            rows.truncate(*n);
            Ok(rows)
        }
    }
}

/// Index nested-loop join: when the right side is a base-table access
/// (scan, or selection over a scan) whose join columns are covered by the
/// primary key or a secondary index, and the left side is small relative to
/// the table, probe the index per left row instead of materializing the
/// whole table. This is what turns the Algorithm 1 plans — a one-row world
/// walk joined against the multi-million-row `V` relation — from scans into
/// point lookups, mirroring the paper's "clustered indexes over the
/// internal keys".
fn try_index_join(
    db: &Database,
    lrows: &[Row],
    right: &Plan,
    on: &[(usize, usize)],
    residual: Option<&Expr>,
) -> Result<Option<Vec<Row>>> {
    if on.is_empty() {
        return Ok(None);
    }
    let (table_name, pred) = match right {
        Plan::Scan { table } => (table, None),
        Plan::Selection { input, predicate } => match input.as_ref() {
            Plan::Scan { table } => (table, Some(predicate)),
            _ => return Ok(None),
        },
        _ => return Ok(None),
    };
    let Ok(table) = db.table(table_name) else {
        // Virtual relation (or resolution error): no index to probe; the
        // generic join path will re-resolve and report any real error.
        return Ok(None);
    };
    // Heuristic: probing must beat building a hash table over the base
    // table (which also clones every row).
    if lrows.len().saturating_mul(4) > table.len().max(1) {
        return Ok(None);
    }
    let rcols: Vec<usize> = on.iter().map(|&(_, rc)| rc).collect();

    // Primary-key fast path: joining on exactly the key column.
    let pk_path = table.schema().key_column() == Some(0) && rcols == [0];
    let index = if pk_path {
        None
    } else {
        table.find_index_for(&rcols)
    };
    if !pk_path && index.is_none() {
        return Ok(None);
    }

    let mut out = Vec::new();
    let mut emit = |lrow: &Row, rrow: &Row| -> Result<()> {
        // Re-verify every join pair: with duplicate right columns in `on`
        // the index key only pins one left column per right column.
        for &(lc, rc) in on {
            if lrow[lc] != rrow[rc] {
                return Ok(());
            }
        }
        if let Some(p) = pred {
            if !p.eval_bool(rrow)? {
                return Ok(());
            }
        }
        let joined = lrow.concat(rrow);
        if match residual {
            Some(e) => e.eval_bool(&joined)?,
            None => true,
        } {
            out.push(joined);
        }
        Ok(())
    };
    if pk_path {
        let lc = on[0].0;
        for lrow in lrows {
            if let Some(rrow) = table.get_by_key(&lrow[lc]) {
                emit(lrow, rrow)?;
            }
        }
    } else {
        let (index_name, order) = index.expect("checked above");
        let index_name = index_name.to_string();
        let order: Vec<usize> = order.to_vec();
        for lrow in lrows {
            let key: Vec<Value> = order
                .iter()
                .map(|rc| {
                    let (lc, _) = on.iter().find(|(_, r)| r == rc).expect("covered");
                    lrow[*lc].clone()
                })
                .collect();
            for rrow in table.index_rows(&index_name, &key)? {
                emit(lrow, rrow)?;
            }
        }
    }
    Ok(Some(out))
}

/// If `predicate` pins the table's key or an indexed column set with
/// equality conjuncts, fetch candidates through the index and post-filter.
fn try_index_selection(table: &Table, predicate: &Expr) -> Result<Option<Vec<Row>>> {
    let eqs = equality_conjuncts(predicate);
    if eqs.is_empty() {
        return Ok(None);
    }
    // Primary key: a single exact match.
    if let Some(kc) = table.schema().key_column() {
        if let Some((_, v)) = eqs.iter().find(|(c, _)| *c == kc) {
            let mut out = Vec::new();
            if let Some(row) = table.get_by_key(v) {
                if predicate.eval_bool(row)? {
                    out.push(row.clone());
                }
            }
            return Ok(Some(out));
        }
    }
    // Secondary index whose columns are all pinned: try the widest covering
    // index first so the candidate set coming back is smallest.
    let pinned: Vec<usize> = eqs.iter().map(|(c, _)| *c).collect();
    let candidates: Vec<Vec<usize>> = subsets_in_order(&pinned);
    for cols in candidates {
        if let Some((name, index_order)) = table.find_index_for(&cols) {
            let key: Vec<Value> = index_order
                .iter()
                .map(|c| {
                    eqs.iter()
                        .find(|(ec, _)| ec == c)
                        .map(|(_, v)| v.clone())
                        .expect("pinned column")
                })
                .collect();
            let mut out = Vec::new();
            for row in table.index_rows(name, &key)? {
                if predicate.eval_bool(row)? {
                    out.push(row.clone());
                }
            }
            return Ok(Some(out));
        }
    }
    Ok(None)
}

/// All non-empty subsets of `cols` (as sorted column lists), widest first.
/// `cols` is small (a handful of equality conjuncts), so the 2^n blowup is
/// irrelevant; we cap it defensively anyway.
fn subsets_in_order(cols: &[usize]) -> Vec<Vec<usize>> {
    let mut cols: Vec<usize> = cols.to_vec();
    cols.sort_unstable();
    cols.dedup();
    let n = cols.len().min(6);
    let mut subsets: Vec<Vec<usize>> = Vec::new();
    for mask in 1u32..(1 << n) {
        let mut s = Vec::new();
        for (i, &c) in cols.iter().take(n).enumerate() {
            if mask & (1 << i) != 0 {
                s.push(c);
            }
        }
        subsets.push(s);
    }
    subsets.sort_by_key(|s| std::cmp::Reverse(s.len()));
    subsets
}

/// Extract `col = literal` conjuncts from the top-level AND structure.
fn equality_conjuncts(e: &Expr) -> Vec<(usize, Value)> {
    let mut out = Vec::new();
    collect_eqs(e, &mut out);
    out
}

/// Which access path [`try_index_selection`] would take for this
/// predicate over this table — used by `EXPLAIN` so the rendered plan
/// reports what the executor will actually do.
pub(crate) fn access_path_note(db: &Database, table: &str, predicate: &Expr) -> Option<String> {
    let table = db.table(table).ok()?;
    let eqs = equality_conjuncts(predicate);
    if eqs.is_empty() {
        return None;
    }
    if let Some(kc) = table.schema().key_column() {
        if eqs.iter().any(|(c, _)| *c == kc) {
            return Some("access=pk".to_string());
        }
    }
    let pinned: Vec<usize> = eqs.iter().map(|(c, _)| *c).collect();
    for cols in subsets_in_order(&pinned) {
        if let Some((name, _)) = table.find_index_for(&cols) {
            return Some(format!("access=index:{name}"));
        }
    }
    None
}

fn collect_eqs(e: &Expr, out: &mut Vec<(usize, Value)>) {
    match e {
        Expr::And(parts) => {
            for p in parts {
                collect_eqs(p, out);
            }
        }
        Expr::Cmp(CmpOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(c)) => {
                out.push((*c, v.clone()));
            }
            _ => {}
        },
        _ => {}
    }
}

fn join_rows(
    lrows: &[Row],
    rrows: &[Row],
    on: &[(usize, usize)],
    residual: Option<&Expr>,
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    if on.is_empty() {
        // Nested loop (theta or cross join).
        for l in lrows {
            for r in rrows {
                let joined = l.concat(r);
                if match residual {
                    Some(e) => e.eval_bool(&joined)?,
                    None => true,
                } {
                    out.push(joined);
                }
            }
        }
        return Ok(out);
    }
    // Hash join: build on the smaller side.
    let build_left = lrows.len() <= rrows.len();
    let (build, probe) = if build_left {
        (lrows, rrows)
    } else {
        (rrows, lrows)
    };
    let key_of = |row: &Row, left_side: bool| -> Box<[Value]> {
        on.iter()
            .map(|&(lc, rc)| row[if left_side { lc } else { rc }].clone())
            .collect()
    };
    let mut map: HashMap<Box<[Value]>, Vec<usize>> = HashMap::with_capacity(build.len());
    for (i, row) in build.iter().enumerate() {
        map.entry(key_of(row, build_left)).or_default().push(i);
    }
    for probe_row in probe {
        let key = key_of(probe_row, !build_left);
        if let Some(hits) = map.get(&key) {
            for &i in hits {
                let joined = if build_left {
                    build[i].concat(probe_row)
                } else {
                    probe_row.concat(&build[i])
                };
                if match residual {
                    Some(e) => e.eval_bool(&joined)?,
                    None => true,
                } {
                    out.push(joined);
                }
            }
        }
    }
    Ok(out)
}

fn anti_join_rows(
    lrows: Vec<Row>,
    rrows: &[Row],
    on: &[(usize, usize)],
    residual: Option<&Expr>,
) -> Result<Vec<Row>> {
    if on.is_empty() {
        // A left row survives iff no right row matches the residual.
        let mut out = Vec::new();
        'next: for l in lrows {
            for r in rrows {
                let joined = l.concat(r);
                if match residual {
                    Some(e) => e.eval_bool(&joined)?,
                    None => true,
                } {
                    continue 'next;
                }
            }
            out.push(l);
        }
        return Ok(out);
    }
    let mut map: HashMap<Box<[Value]>, Vec<usize>> = HashMap::with_capacity(rrows.len());
    for (i, row) in rrows.iter().enumerate() {
        let key: Box<[Value]> = on.iter().map(|&(_, rc)| row[rc].clone()).collect();
        map.entry(key).or_default().push(i);
    }
    let mut out = Vec::new();
    'outer: for l in lrows {
        let key: Box<[Value]> = on.iter().map(|&(lc, _)| l[lc].clone()).collect();
        if let Some(hits) = map.get(&key) {
            match residual {
                None => continue 'outer,
                Some(e) => {
                    for &i in hits {
                        let joined = l.concat(&rrows[i]);
                        if e.eval_bool(&joined)? {
                            continue 'outer;
                        }
                    }
                }
            }
        }
        out.push(l);
    }
    Ok(out)
}

/// One aggregate accumulator. Deliberately **mergeable**: counts sum and
/// min/max compose, so the spilling aggregate ([`spill`]) can write
/// partial accumulator rows to disk and combine them later. A `None`
/// min/max means "no row seen yet" and encodes as `Null` in a partial
/// row — sound because `Null` is the bottom of the value order (max
/// ignores it) and a group is only ever created by a real row (min never
/// sees a phantom `None` next to real values).
#[derive(Clone)]
pub(crate) enum Acc {
    Count(i64),
    Max(Option<Value>),
    Min(Option<Value>),
}

/// Fresh accumulators for an aggregate list.
pub(crate) fn fresh_accs(aggs: &[Agg]) -> Vec<Acc> {
    aggs.iter()
        .map(|a| match a {
            Agg::Count => Acc::Count(0),
            Agg::Max(_) => Acc::Max(None),
            Agg::Min(_) => Acc::Min(None),
        })
        .collect()
}

/// Fold one input row into a group's accumulators.
pub(crate) fn update_accs(accs: &mut [Acc], aggs: &[Agg], row: &Row) -> Result<()> {
    for (acc, agg) in accs.iter_mut().zip(aggs) {
        match (acc, agg) {
            (Acc::Count(n), Agg::Count) => *n += 1,
            (Acc::Max(m), Agg::Max(c)) => {
                let v = &row[*c];
                if m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            (Acc::Min(m), Agg::Min(c)) => {
                let v = &row[*c];
                if m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            _ => {
                return Err(StorageError::PlanError(
                    "aggregate accumulator mismatch".into(),
                ))
            }
        }
    }
    Ok(())
}

/// Merge one set of partial accumulators into another (the spilling
/// aggregate's combine step). Counts sum; min/max take the extremum,
/// with `None` acting as the identity.
pub(crate) fn merge_accs(into: &mut [Acc], from: &[Acc]) {
    for (a, b) in into.iter_mut().zip(from) {
        match (a, b) {
            (Acc::Count(x), Acc::Count(y)) => *x += y,
            (Acc::Max(x), Acc::Max(y)) => {
                if let Some(v) = y {
                    if x.as_ref().is_none_or(|cur| v > cur) {
                        *x = Some(v.clone());
                    }
                }
            }
            (Acc::Min(x), Acc::Min(y)) => {
                if let Some(v) = y {
                    if x.as_ref().is_none_or(|cur| v < cur) {
                        *x = Some(v.clone());
                    }
                }
            }
            _ => debug_assert!(false, "merging mismatched accumulators"),
        }
    }
}

/// Hash aggregation over a stream of rows. Shared by both executors: the
/// accumulators consume rows one at a time, so only one row per group is
/// ever held (the aggregate's output, not its input, bounds the memory).
/// The memory-budgeted counterpart is [`spill::grace_aggregate`].
fn aggregate_stream(
    rows: impl Iterator<Item = Result<Row>>,
    group_by: &[usize],
    aggs: &[Agg],
) -> Result<Vec<Row>> {
    let mut groups: HashMap<Box<[Value]>, Vec<Acc>> = HashMap::new();
    // Global aggregation over zero rows must still produce one row.
    if group_by.is_empty() {
        groups.insert(Box::from([]), fresh_accs(aggs));
    }
    for row in rows {
        let row = row?;
        let key: Box<[Value]> = group_by.iter().map(|&c| row[c].clone()).collect();
        let accs = groups.entry(key).or_insert_with(|| fresh_accs(aggs));
        update_accs(accs, aggs, &row)?;
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, accs) in groups {
        let mut vals: Vec<Value> = key.to_vec();
        for acc in accs {
            vals.push(match acc {
                Acc::Count(n) => Value::Int(n),
                Acc::Max(m) | Acc::Min(m) => m.unwrap_or(Value::Null),
            });
        }
        out.push(Row::new(vals));
    }
    // Deterministic output order.
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::TableSchema;

    fn db() -> Database {
        let mut db = Database::new();
        let users = db
            .create_table(TableSchema::with_key("Users", &["uid", "name"]))
            .unwrap();
        users.insert(row![1, "Alice"]).unwrap();
        users.insert(row![2, "Bob"]).unwrap();
        users.insert(row![3, "Carol"]).unwrap();
        let e = db
            .create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
            .unwrap();
        e.create_index("by_w1_u", &["w1", "u"]).unwrap();
        e.insert(row![0, 1, 1]).unwrap();
        e.insert(row![0, 2, 2]).unwrap();
        e.insert(row![0, 3, 0]).unwrap();
        e.insert(row![1, 2, 2]).unwrap();
        e.insert(row![1, 3, 0]).unwrap();
        db
    }

    #[test]
    fn scan_and_filter() {
        let db = db();
        let p = Plan::scan("Users").select(Expr::col_eq_lit(1, "Bob"));
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows, vec![row![2, "Bob"]]);
    }

    #[test]
    fn index_accelerated_selection_matches_scan() {
        let db = db();
        // Pins both columns of the secondary index.
        let p = Plan::scan("E").select(Expr::and(vec![
            Expr::col_eq_lit(0, 0),
            Expr::col_eq_lit(1, 2),
        ]));
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows, vec![row![0, 2, 2]]);
        // Primary-key path.
        let p = Plan::scan("Users").select(Expr::col_eq_lit(0, 3));
        assert_eq!(execute(&db, &p).unwrap(), vec![row![3, "Carol"]]);
        // Key pinned but row fails the rest of the predicate.
        let p = Plan::scan("Users").select(Expr::and(vec![
            Expr::col_eq_lit(0, 3),
            Expr::col_eq_lit(1, "Bob"),
        ]));
        assert!(execute(&db, &p).unwrap().is_empty());
    }

    #[test]
    fn projection_and_exprs() {
        let db = db();
        let p = Plan::scan("Users").project(vec![Expr::Col(1), Expr::lit("x")]);
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].arity(), 2);
        assert_eq!(rows[0][1], Value::str("x"));
    }

    #[test]
    fn hash_join() {
        let db = db();
        let p = Plan::scan("Users")
            .join(Plan::scan("E"), vec![(0, 1)])
            .project_cols(&[1, 2, 4])
            .sort(vec![0, 1, 2]);
        let rows = execute(&db, &p).unwrap();
        // Each user joins to the E rows with u = uid.
        assert_eq!(
            rows,
            vec![
                row!["Alice", 0, 1],
                row!["Bob", 0, 2],
                row!["Bob", 1, 2],
                row!["Carol", 0, 0],
                row!["Carol", 1, 0],
            ]
        );
    }

    #[test]
    fn theta_join_with_residual() {
        let db = db();
        // Users × Users where left.uid < right.uid
        let p = Plan::scan("Users")
            .join_where(
                Plan::scan("Users"),
                vec![],
                Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::Col(2)),
            )
            .project_cols(&[1, 3])
            .sort(vec![0, 1]);
        let rows = execute(&db, &p).unwrap();
        assert_eq!(
            rows,
            vec![
                row!["Alice", "Bob"],
                row!["Alice", "Carol"],
                row!["Bob", "Carol"],
            ]
        );
    }

    #[test]
    fn equi_join_with_residual() {
        let db = db();
        // E join E on w2 = w1 of the next hop, keeping only hops ending at 0.
        let p = Plan::scan("E").join_where(Plan::scan("E"), vec![(2, 0)], Expr::col_eq_lit(5, 0));
        let rows = execute(&db, &p).unwrap();
        assert!(rows.iter().all(|r| r[5] == Value::int(0)));
        assert!(!rows.is_empty());
    }

    #[test]
    fn anti_join_filters_matches() {
        let db = db();
        // Users with no outgoing edge from world 1 labelled by their uid:
        // E rows with w1=1 have u ∈ {2,3}, so Alice survives.
        let edges_from_1 = Plan::scan("E").select(Expr::col_eq_lit(0, 1));
        let p = Plan::scan("Users").anti_join(edges_from_1, vec![(0, 1)]);
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows, vec![row![1, "Alice"]]);
    }

    #[test]
    fn anti_join_with_residual() {
        let db = db();
        // Keep users for whom there is no edge (any w1) with w2 > 1.
        let p = Plan::scan("Users").anti_join(
            Plan::AntiJoin {
                left: Box::new(Plan::scan("E")),
                right: Box::new(Plan::Values {
                    arity: 0,
                    rows: vec![],
                }),
                on: vec![],
                residual: None,
            },
            vec![(0, 1)],
        );
        // inner anti-join against empty right = identity on E
        let rows = execute(&db, &p).unwrap();
        // Alice has edge (0,1,1): w2 = 1; Bob has w2 = 2; Carol w2 = 0.
        // Anti-join on uid = u removes every user that appears in E.u.
        assert!(rows.is_empty());
    }

    #[test]
    fn distinct_and_union() {
        let db = db();
        let p = Plan::Union {
            inputs: vec![Plan::scan("Users"), Plan::scan("Users")],
        };
        assert_eq!(execute(&db, &p).unwrap().len(), 6);
        let p = p.distinct();
        assert_eq!(execute(&db, &p).unwrap().len(), 3);
    }

    #[test]
    fn aggregate_count_and_max() {
        let db = db();
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("E")),
            group_by: vec![0],
            aggs: vec![Agg::Count, Agg::Max(2)],
        };
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows, vec![row![0, 3, 2], row![1, 2, 2]]);
    }

    #[test]
    fn global_aggregate_on_empty_input() {
        let db = db();
        let p = Plan::Aggregate {
            input: Box::new(Plan::Values {
                arity: 2,
                rows: vec![],
            }),
            group_by: vec![],
            aggs: vec![Agg::Count, Agg::Max(0)],
        };
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows, vec![row![0, Value::Null]]);
    }

    #[test]
    fn min_aggregate() {
        let db = db();
        let p = Plan::Aggregate {
            input: Box::new(Plan::scan("E")),
            group_by: vec![],
            aggs: vec![Agg::Min(2)],
        };
        assert_eq!(execute(&db, &p).unwrap(), vec![row![0]]);
    }

    #[test]
    fn sort_limit_values_unit() {
        let db = db();
        let p = Plan::scan("Users")
            .sort(vec![1])
            .limit(2)
            .project_cols(&[1]);
        assert_eq!(execute(&db, &p).unwrap(), vec![row!["Alice"], row!["Bob"]]);
        assert_eq!(execute(&db, &Plan::unit()).unwrap().len(), 1);
    }

    #[test]
    fn empty_join_sides() {
        let db = db();
        let empty = Plan::Values {
            arity: 2,
            rows: vec![],
        };
        let p = Plan::scan("Users").join(empty.clone(), vec![(0, 0)]);
        assert!(execute(&db, &p).unwrap().is_empty());
        let p = empty.join(Plan::scan("Users"), vec![(0, 0)]);
        assert!(execute(&db, &p).unwrap().is_empty());
    }
}

#[cfg(test)]
mod index_join_tests {
    use super::*;
    use crate::row;
    use crate::schema::TableSchema;

    /// A database large enough that the index-join heuristic fires.
    fn big_db() -> Database {
        let mut db = Database::new();
        let v = db
            .create_table(TableSchema::keyless("V", &["wid", "tid", "s"]))
            .unwrap();
        v.create_index("by_wid", &["wid"]).unwrap();
        for i in 0..500i64 {
            v.insert(row![i % 20, i, if i % 3 == 0 { "+" } else { "-" }])
                .unwrap();
        }
        let r = db
            .create_table(TableSchema::with_key("R", &["tid", "val"]))
            .unwrap();
        for i in 0..500i64 {
            r.insert(row![i, format!("v{i}").as_str()]).unwrap();
        }
        let probe = db
            .create_table(TableSchema::keyless("Probe", &["w"]))
            .unwrap();
        probe.insert(row![3]).unwrap();
        probe.insert(row![7]).unwrap();
        db
    }

    /// The same join evaluated with and without the index path must agree.
    fn assert_same_as_hash_join(db: &Database, plan: &Plan) {
        let via_exec = execute(db, plan).unwrap();
        // Force the generic path by evaluating both sides and joining
        // manually.
        if let Plan::Join {
            left,
            right,
            on,
            residual,
        } = plan
        {
            let l = execute(db, left).unwrap();
            let r = execute(db, right).unwrap();
            let mut generic = join_rows(&l, &r, on, residual.as_ref()).unwrap();
            let mut indexed = via_exec;
            generic.sort();
            indexed.sort();
            assert_eq!(indexed, generic);
        } else {
            panic!("test plan must be a join");
        }
    }

    #[test]
    fn secondary_index_join_matches_hash_join() {
        let db = big_db();
        let plan = Plan::scan("Probe").join(Plan::scan("V"), vec![(0, 0)]);
        assert_same_as_hash_join(&db, &plan);
        let rows = execute(&db, &plan).unwrap();
        assert_eq!(rows.len(), 50, "25 V rows per probed wid");
    }

    #[test]
    fn pk_index_join_matches_hash_join() {
        let db = big_db();
        // V ⋈ R on tid = R.key — but V is large (left side), so shrink it
        // first to trigger the heuristic.
        let small_v = Plan::scan("V").select(Expr::col_eq_lit(0, 3i64));
        let plan = small_v.join(Plan::scan("R"), vec![(1, 0)]);
        assert_same_as_hash_join(&db, &plan);
        let rows = execute(&db, &plan).unwrap();
        assert_eq!(rows.len(), 25);
        assert_eq!(rows[0].arity(), 5);
    }

    #[test]
    fn index_join_through_selection() {
        let db = big_db();
        // Right side is Selection over Scan: predicate must still apply.
        let positives = Plan::scan("V").select(Expr::col_eq_lit(2, "+"));
        let plan = Plan::scan("Probe").join(positives, vec![(0, 0)]);
        assert_same_as_hash_join(&db, &plan);
        let rows = execute(&db, &plan).unwrap();
        assert!(rows.iter().all(|r| r[3] == Value::str("+")));
        assert!(!rows.is_empty());
    }

    #[test]
    fn index_join_with_residual() {
        let db = big_db();
        let plan = Plan::scan("Probe").join_where(
            Plan::scan("V"),
            vec![(0, 0)],
            Expr::cmp(CmpOp::Gt, Expr::Col(2), Expr::lit(100i64)),
        );
        assert_same_as_hash_join(&db, &plan);
        let rows = execute(&db, &plan).unwrap();
        assert!(rows.iter().all(|r| r[2].as_int().unwrap() > 100));
    }

    #[test]
    fn duplicate_right_columns_are_reverified() {
        let mut db = big_db();
        // Probe2(w, w2): join on V.wid twice — (0,0) and (1,0). The index
        // key only pins one; the pair check must reject mismatches.
        let p2 = db
            .create_table(TableSchema::keyless("Probe2", &["a", "b"]))
            .unwrap();
        p2.insert(row![3, 3]).unwrap(); // matches
        p2.insert(row![3, 7]).unwrap(); // must NOT match
        let plan = Plan::scan("Probe2").join(Plan::scan("V"), vec![(0, 0), (1, 0)]);
        assert_same_as_hash_join(&db, &plan);
        let rows = execute(&db, &plan).unwrap();
        assert!(rows.iter().all(|r| r[0] == r[1]));
        assert_eq!(rows.len(), 25);
    }

    #[test]
    fn heuristic_declines_large_left_sides() {
        let db = big_db();
        // Left side as big as the table: try_index_join must decline (and
        // the hash join still gives the right answer).
        let plan = Plan::scan("V").join(Plan::scan("V"), vec![(1, 1)]);
        let rows = execute(&db, &plan).unwrap();
        assert_eq!(rows.len(), 500);
    }

    #[test]
    fn no_index_falls_back_to_hash_join() {
        let db = big_db();
        // Join on V.s — no index covers it.
        let plan = Plan::scan("Probe").join(Plan::scan("V"), vec![(0, 1)]);
        let rows = execute(&db, &plan).unwrap();
        // Probe values 3 and 7 match V.tid 3 and 7 exactly once each.
        assert_eq!(rows.len(), 2);
    }
}
