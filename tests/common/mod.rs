//! Shared fuzzing helpers for the executor/optimizer differential
//! suites (`tests/optimizer_equivalence.rs`, `tests/exec_streaming.rs`).
//!
//! The plan generator produces arity-correct random plans over a
//! mixed-size database: joins, anti-joins, unions, selections,
//! projections, distinct, aggregates, sort, limit, and literal
//! relations.

#![allow(dead_code)]

use beliefdb::storage::{row, Agg, CmpOp, Database, Expr, Plan, Row, TableSchema, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// The database every fuzzed plan runs against.
pub fn plan_db() -> Database {
    let mut db = Database::new();
    let users = db
        .create_table(TableSchema::with_key("Users", &["uid", "name"]))
        .unwrap();
    for i in 1..=40i64 {
        users
            .insert(row![i, format!("user{}", i % 7).as_str()])
            .unwrap();
    }
    let e = db
        .create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
        .unwrap();
    e.create_index("by_w1_u", &["w1", "u"]).unwrap();
    for w in 0..30i64 {
        for u in 1..=5i64 {
            e.insert(row![w, u, (w * u + u) % 30]).unwrap();
        }
    }
    let v = db
        .create_table(TableSchema::keyless("V", &["wid", "tid", "s"]))
        .unwrap();
    v.create_index("by_wid", &["wid"]).unwrap();
    for i in 0..300i64 {
        v.insert(row![i % 30, i % 60, if i % 3 == 0 { "+" } else { "-" }])
            .unwrap();
    }
    db
}

/// A random predicate over `arity` columns.
pub fn gen_pred(rng: &mut StdRng, arity: usize, depth: usize) -> Expr {
    let leaf = |rng: &mut StdRng| -> Expr {
        let c = rng.gen_range(0..arity);
        let op = match rng.gen_range(0..4u32) {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            _ => CmpOp::Ge,
        };
        if rng.gen_bool(0.5) {
            let lit: Value = match rng.gen_range(0..3u32) {
                0 => Value::int(rng.gen_range(0..30u32) as i64),
                1 => Value::str(if rng.gen_bool(0.5) { "+" } else { "-" }),
                _ => Value::str(format!("user{}", rng.gen_range(0..7u32))),
            };
            Expr::cmp(op, Expr::Col(c), Expr::Lit(lit))
        } else {
            Expr::cmp(op, Expr::Col(c), Expr::Col(rng.gen_range(0..arity)))
        }
    };
    if depth == 0 || rng.gen_bool(0.4) {
        return leaf(rng);
    }
    match rng.gen_range(0..3u32) {
        0 => Expr::and(
            (0..rng.gen_range(1..4usize))
                .map(|_| gen_pred(rng, arity, depth - 1))
                .collect(),
        ),
        1 => Expr::or(
            (0..rng.gen_range(1..4usize))
                .map(|_| gen_pred(rng, arity, depth - 1))
                .collect(),
        ),
        _ => Expr::Not(Box::new(gen_pred(rng, arity, depth - 1))),
    }
}

/// A random arity-correct plan. Returns the plan and its arity.
pub fn gen_plan(rng: &mut StdRng, depth: usize) -> (Plan, usize) {
    if depth == 0 || rng.gen_bool(0.25) {
        return match rng.gen_range(0..4u32) {
            0 => (Plan::scan("Users"), 2),
            1 => (Plan::scan("E"), 3),
            2 => (Plan::scan("V"), 3),
            _ => {
                let arity = rng.gen_range(1..4usize);
                let n = rng.gen_range(0..6usize);
                let rows: Vec<Row> = (0..n)
                    .map(|_| {
                        Row::new(
                            (0..arity)
                                .map(|_| Value::int(rng.gen_range(0..20u32) as i64))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect();
                (Plan::Values { arity, rows }, arity)
            }
        };
    }
    match rng.gen_range(0..9u32) {
        0 => {
            let (p, a) = gen_plan(rng, depth - 1);
            (p.select(gen_pred(rng, a, 2)), a)
        }
        1 => {
            let (p, a) = gen_plan(rng, depth - 1);
            let out = rng.gen_range(1..4usize);
            let cols: Vec<usize> = (0..out).map(|_| rng.gen_range(0..a)).collect();
            (p.project_cols(&cols), out)
        }
        2 => {
            let (l, la) = gen_plan(rng, depth - 1);
            let (r, ra) = gen_plan(rng, depth - 1);
            let keys = rng.gen_range(0..3usize);
            let on: Vec<(usize, usize)> = (0..keys)
                .map(|_| (rng.gen_range(0..la), rng.gen_range(0..ra)))
                .collect();
            let joined = if rng.gen_bool(0.3) {
                let residual = gen_pred(rng, la + ra, 1);
                l.join_where(r, on, residual)
            } else {
                l.join(r, on)
            };
            (joined, la + ra)
        }
        3 => {
            let (l, la) = gen_plan(rng, depth - 1);
            let (r, ra) = gen_plan(rng, depth - 1);
            let keys = rng.gen_range(0..3usize);
            let on: Vec<(usize, usize)> = (0..keys)
                .map(|_| (rng.gen_range(0..la), rng.gen_range(0..ra)))
                .collect();
            (l.anti_join(r, on), la)
        }
        4 => {
            let (l, la) = gen_plan(rng, depth - 1);
            let (r, ra) = gen_plan(rng, depth - 1);
            // Align arities with projections for a valid union.
            let a = la.min(ra);
            let cols: Vec<usize> = (0..a).collect();
            (
                Plan::Union {
                    inputs: vec![l.project_cols(&cols), r.project_cols(&cols)],
                },
                a,
            )
        }
        5 => {
            let (p, a) = gen_plan(rng, depth - 1);
            (p.distinct(), a)
        }
        6 => {
            let (p, a) = gen_plan(rng, depth - 1);
            let by: Vec<usize> = (0..a.min(2)).map(|_| rng.gen_range(0..a)).collect();
            (p.sort(by), a)
        }
        7 => {
            let (p, a) = gen_plan(rng, depth - 1);
            let group_by: Vec<usize> = (0..rng.gen_range(0..a.min(2) + 1))
                .map(|_| rng.gen_range(0..a))
                .collect();
            let aggs: Vec<Agg> = (0..rng.gen_range(1..3usize))
                .map(|_| match rng.gen_range(0..3u32) {
                    0 => Agg::Count,
                    1 => Agg::Max(rng.gen_range(0..a)),
                    _ => Agg::Min(rng.gen_range(0..a)),
                })
                .collect();
            let arity = group_by.len() + aggs.len();
            (
                Plan::Aggregate {
                    input: Box::new(p),
                    group_by,
                    aggs,
                },
                arity,
            )
        }
        _ => {
            let (p, a) = gen_plan(rng, depth - 1);
            (p.limit(rng.gen_range(0..50usize)), a)
        }
    }
}

/// Multiset comparison via sort.
pub fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

/// An input relation of `n` rows whose values repeat with period 700, so
/// any size past 700 produces duplicates that `Distinct` must catch
/// across chunk edges (with the ramp-up schedule 32/64/…/1024 the edges
/// land at 32, 96, 224, 480, 992, 2016 — first occurrences and their
/// duplicates straddle several of them). Used by the batch-boundary
/// layer of the executor differential suite.
pub fn boundary_values(n: usize) -> Plan {
    let rows: Vec<Row> = (0..n).map(|i| row![(i % 700) as i64]).collect();
    Plan::Values { arity: 1, rows }
}

/// `Limit` over anything whose order the optimizer (or a different
/// executor) may change picks different rows; that is allowed behaviour,
/// so those plans are skipped by the differential suites.
pub fn contains_order_sensitive_limit(p: &Plan) -> bool {
    match p {
        Plan::Limit { input, .. } => !matches!(input.as_ref(), Plan::Sort { .. }),
        Plan::Scan { .. } | Plan::Values { .. } => false,
        Plan::Selection { input, .. }
        | Plan::Projection { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. } => contains_order_sensitive_limit(input),
        Plan::Join { left, right, .. } | Plan::AntiJoin { left, right, .. } => {
            contains_order_sensitive_limit(left) || contains_order_sensitive_limit(right)
        }
        Plan::Union { inputs } => inputs.iter().any(contains_order_sensitive_limit),
        Plan::Aggregate { input, .. } => contains_order_sensitive_limit(input),
    }
}
