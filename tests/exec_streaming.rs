//! Differential suite for the streaming executors: the vectorized
//! chunk-at-a-time pipeline (`execute` / `stream` / `stream_chunks`),
//! the row-at-a-time pipeline (`execute_rows`), and the original
//! operator-at-a-time evaluator (`execute_materialized`) must return
//! identical row multisets.
//!
//! Four layers, mirroring `tests/optimizer_equivalence.rs`:
//!
//! 1. **fuzzed relational plans** — arity-correct random plans (shared
//!    generator in `tests/common`), unoptimized and optimized, three-way
//!    chunked vs row-streaming vs materializing;
//! 2. **fuzzed belief conjunctive queries** — `Bdms::query` (chunked)
//!    vs `Bdms::query_row_at_a_time` vs `Bdms::query_materialized`,
//!    plus `Bdms::query_streaming`;
//! 3. **batch boundaries** — inputs of size 1, 1023, 1024, 1025, 2048
//!    driven through Limit/Distinct/Union operators straddling a chunk
//!    edge, compared exactly (all three executors preserve order here);
//! 4. **laziness semantics** — streaming is allowed to do strictly less
//!    work (a `Limit` stops pulling; errors surface only if the failing
//!    row is actually demanded), never more — including when the
//!    poisoned row shares a chunk with the demanded one.

mod common;

use beliefdb::core::bcq::{Bcq, CmpPred, PathElem, QueryTerm, Subgoal};
use beliefdb::core::{Bdms, RelId, Sign, UserId};
use beliefdb::gen::{generate_logical, DepthDist, GeneratorConfig};
use beliefdb::storage::{
    execute, execute_materialized, execute_optimized, execute_rows, optimize, row, CmpOp, Expr,
    Plan, Row,
};
use common::{contains_order_sensitive_limit, gen_plan, plan_db, sorted};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Layer 1: fuzzed relational plans
// ---------------------------------------------------------------------------

#[test]
fn fuzzed_plans_stream_and_materialize_identically() {
    let db = plan_db();
    let mut rng = StdRng::seed_from_u64(0x57AE4A);
    let mut nontrivial = 0usize;
    let mut skipped_errors = 0usize;
    for case in 0..300 {
        let (plan, _) = gen_plan(&mut rng, 3);
        if contains_order_sensitive_limit(&plan) {
            continue;
        }
        // Streaming evaluates a subset of what materializing evaluates
        // (a Limit stops pulling), so an error from the reference side
        // need not reproduce; the other direction must agree exactly.
        let reference = match execute_materialized(&db, &plan) {
            Ok(rows) => rows,
            Err(_) => {
                skipped_errors += 1;
                continue;
            }
        };
        let streamed = execute(&db, &plan).expect("chunked execution failed");
        if !reference.is_empty() {
            nontrivial += 1;
        }
        assert_eq!(
            sorted(reference.clone()),
            sorted(streamed),
            "case {case}: executors disagree on {plan:?}"
        );
        // Three-way: the row-at-a-time pipeline is a separate executor
        // and must agree too.
        let row_streamed = execute_rows(&db, &plan).expect("row-streaming execution failed");
        assert_eq!(
            sorted(reference.clone()),
            sorted(row_streamed),
            "case {case}: row-at-a-time executor disagrees on {plan:?}"
        );
        // And through the optimizer: optimized+streamed still matches the
        // unoptimized materialized reference.
        let optimized = execute_optimized(&db, &plan).expect("optimized execution failed");
        assert_eq!(
            sorted(reference),
            sorted(optimized),
            "case {case}: optimized streaming diverged on {plan:?}"
        );
    }
    assert!(
        nontrivial > 40,
        "only {nontrivial} non-empty cases — generator too weak"
    );
    assert!(
        skipped_errors < 50,
        "{skipped_errors} error cases — generator degenerated"
    );
}

#[test]
fn fuzzed_optimized_plans_stream_and_materialize_identically() {
    // Same comparison, but on the *optimized* plan shape on both sides —
    // exercises the streaming operators over pushed-down/reordered trees
    // (index probes, fused filters, aggregate pushdown).
    let db = plan_db();
    let mut rng = StdRng::seed_from_u64(0xD1FFE2);
    for case in 0..200 {
        let (plan, _) = gen_plan(&mut rng, 3);
        if contains_order_sensitive_limit(&plan) {
            continue;
        }
        let Ok(optimized) = optimize(&db, plan.clone()) else {
            continue;
        };
        let reference = match execute_materialized(&db, &optimized) {
            Ok(rows) => rows,
            Err(_) => continue,
        };
        let streamed = execute(&db, &optimized).expect("streaming execution failed");
        assert_eq!(
            sorted(reference),
            sorted(streamed),
            "case {case}: executors disagree on optimized {optimized:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// Layer 2: fuzzed belief conjunctive queries
// ---------------------------------------------------------------------------

const USERS: u32 = 3;
const ARITY: usize = 5;

fn workload() -> Bdms {
    let cfg = GeneratorConfig::new(USERS as usize, 120)
        .with_depth(DepthDist::new(&[0.25, 0.45, 0.3]))
        .with_key_space(6)
        .with_negative_rate(0.3)
        .with_seed(4321);
    let (db, _) = generate_logical(&cfg).unwrap();
    Bdms::from_belief_database(&db).unwrap()
}

fn gen_term(rng: &mut StdRng, vars: &[&str], allow_any: bool) -> QueryTerm {
    match rng.gen_range(0..if allow_any { 4u32 } else { 3u32 }) {
        0 => QueryTerm::val(format!("s{}", rng.gen_range(0..6u32))),
        1 | 2 => QueryTerm::var(vars[rng.gen_range(0..vars.len())]),
        _ => QueryTerm::Any,
    }
}

fn gen_bcq(rng: &mut StdRng) -> Bcq {
    let vars = ["x", "y", "a", "b", "c"];
    let n_sub = rng.gen_range(1..4usize);
    let subgoals: Vec<Subgoal> = (0..n_sub)
        .map(|_| {
            let sign = if rng.gen_bool(0.3) {
                Sign::Neg
            } else {
                Sign::Pos
            };
            let path: Vec<PathElem> = (0..rng.gen_range(0..3usize))
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        PathElem::User(UserId(rng.gen_range(0..USERS) + 1))
                    } else {
                        PathElem::var(vars[rng.gen_range(0..2usize)])
                    }
                })
                .collect();
            let args: Vec<QueryTerm> = (0..ARITY)
                .map(|_| gen_term(rng, &vars, sign == Sign::Pos))
                .collect();
            Subgoal {
                path,
                sign,
                rel: RelId(0),
                args,
            }
        })
        .collect();
    let predicates = if rng.gen_bool(0.3) {
        vec![CmpPred {
            left: QueryTerm::var(vars[rng.gen_range(0..vars.len())]),
            op: CmpOp::Ne,
            right: QueryTerm::var(vars[rng.gen_range(0..vars.len())]),
        }]
    } else {
        Vec::new()
    };
    let head: Vec<QueryTerm> = (0..rng.gen_range(0..3usize))
        .map(|_| QueryTerm::var(vars[rng.gen_range(0..vars.len())]))
        .collect();
    Bcq {
        head,
        subgoals,
        predicates,
        user_atoms: Vec::new(),
    }
}

#[test]
fn fuzzed_bcqs_stream_and_materialize_identically() {
    let bdms = workload();
    let mut rng = StdRng::seed_from_u64(0x5BC0);
    let mut evaluated = 0usize;
    let mut attempts = 0usize;
    while evaluated < 120 && attempts < 3000 {
        attempts += 1;
        let q = gen_bcq(&mut rng);
        if q.validate(bdms.schema()).is_err() {
            continue;
        }
        evaluated += 1;
        let streaming = bdms.query(&q).expect("chunked BCQ evaluation failed");
        let materialized = bdms
            .query_materialized(&q)
            .expect("materializing BCQ evaluation failed");
        assert_eq!(
            streaming, materialized,
            "executors changed the answer of {q}"
        );
        let row_at_a_time = bdms
            .query_row_at_a_time(&q)
            .expect("row-at-a-time BCQ evaluation failed");
        assert_eq!(
            streaming, row_at_a_time,
            "chunked and row-at-a-time executors disagree on {q}"
        );
        // The row-streaming entry point agrees too (same multiset; it
        // only skips the final sort+collect).
        let mut pushed = Vec::new();
        bdms.query_streaming(&q, |row| pushed.push(row))
            .expect("row-streaming evaluation failed");
        pushed.sort();
        assert_eq!(pushed, streaming, "query_streaming diverged on {q}");
    }
    assert!(evaluated >= 100, "only {evaluated} safe queries generated");
}

// ---------------------------------------------------------------------------
// Layer 3: batch boundaries
// ---------------------------------------------------------------------------

/// Inputs of exactly these sizes exercise the chunk edge: one short of a
/// full batch (1023), exactly one batch (1024), one past it (1025), two
/// batches (2048), and the degenerate single row.
const BOUNDARY_SIZES: [usize; 5] = [1, 1023, 1024, 1025, 2048];

use common::boundary_values;

#[test]
fn batch_boundaries_agree_exactly_across_executors() {
    // All three executors preserve input order on these operators, so
    // the comparison is exact (not just multiset equality).
    let db = plan_db();
    for n in BOUNDARY_SIZES {
        let v = boundary_values(n);
        let plans = vec![
            // Limit straddling the chunk edge in both directions.
            v.clone().limit(1),
            v.clone().limit(n.saturating_sub(1)),
            v.clone().limit(n),
            v.clone().limit(n + 17),
            v.clone().limit(1023),
            v.clone().limit(1024),
            v.clone().limit(1025),
            // Distinct with first occurrences below the edge and
            // duplicates above (and vice versa).
            v.clone().distinct(),
            v.clone().distinct().limit(701),
            // Union straddling: the second input starts mid-batch; the
            // pipeline must handle partial trailing chunks.
            Plan::Union {
                inputs: vec![v.clone(), boundary_values(3)],
            },
            Plan::Union {
                inputs: vec![v.clone(), v.clone()],
            }
            .distinct(),
            Plan::Union {
                inputs: vec![v.clone(), v.clone()],
            }
            .limit(n + 1),
            // Selection + projection across the edge for good measure.
            v.clone()
                .select(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(350i64)))
                .project_cols(&[0]),
        ];
        for plan in &plans {
            let chunked = execute(&db, plan).expect("chunked failed");
            let row_wise = execute_rows(&db, plan).expect("row-at-a-time failed");
            let materialized = execute_materialized(&db, plan).expect("materializing failed");
            assert_eq!(chunked, row_wise, "n={n}: chunked vs row order diverged");
            assert_eq!(
                chunked, materialized,
                "n={n}: chunked vs materialized diverged"
            );
        }
    }
}

#[test]
fn batch_boundary_distinct_dedups_across_the_chunk_edge() {
    // Row 324 first occurs at index 324 (chunk 1) and repeats at index
    // 1024 — the first row of chunk 2. Distinct must drop it.
    let db = plan_db();
    let plan = boundary_values(1025).distinct();
    let rows = execute(&db, &plan).unwrap();
    assert_eq!(rows.len(), 700, "700 distinct values in 1025 rows");
    assert_eq!(rows, execute_rows(&db, &plan).unwrap());
}

// ---------------------------------------------------------------------------
// Layer 4: laziness semantics
// ---------------------------------------------------------------------------

#[test]
fn limit_short_circuits_instead_of_materializing() {
    let db = plan_db();
    // A plan whose full evaluation errors (bare-column predicate over a
    // non-boolean later row) but whose first row is fine: the streaming
    // Limit never demands the poisoned row — even though chunked
    // execution sees both rows in the same batch (the selection splits
    // the chunk at the error instead of failing it wholesale).
    let plan = Plan::Values {
        arity: 1,
        rows: vec![row![true], row![7]],
    }
    .select(Expr::Col(0))
    .limit(1);
    assert_eq!(execute(&db, &plan).unwrap(), vec![row![true]]);
    assert_eq!(execute_rows(&db, &plan).unwrap(), vec![row![true]]);
    assert!(execute_materialized(&db, &plan).is_err());
    // Same shape at a chunk boundary: 1023 good rows, a poisoned one at
    // index 1023, and a Limit satisfied just before it.
    let mut rows: Vec<Row> = (0..1023).map(|_| row![true]).collect();
    rows.push(row![7]);
    let plan = Plan::Values { arity: 1, rows }
        .select(Expr::Col(0))
        .limit(1023);
    assert_eq!(execute(&db, &plan).unwrap().len(), 1023);
    assert!(execute_materialized(&db, &plan).is_err());
}

#[test]
fn streaming_surfaces_demanded_errors() {
    let db = plan_db();
    // Without the limit the poisoned row *is* demanded: both executors
    // must fail.
    let plan = Plan::Values {
        arity: 1,
        rows: vec![row![true], row![7]],
    }
    .select(Expr::Col(0));
    assert!(execute(&db, &plan).is_err());
    assert!(execute_materialized(&db, &plan).is_err());
}

#[test]
fn streaming_iterator_yields_incrementally() {
    let db = plan_db();
    // Pull exactly three rows from a selective pipeline and stop: the
    // stream hands back rows one at a time without draining the scan.
    let plan = Plan::scan("E")
        .select(Expr::cmp(CmpOp::Ge, Expr::Col(2), Expr::lit(0i64)))
        .project_cols(&[2, 1]);
    let mut stream = beliefdb::storage::stream(&db, &plan).unwrap();
    let mut taken = Vec::new();
    for _ in 0..3 {
        taken.push(stream.next().unwrap().unwrap());
    }
    drop(stream); // abandoning the rest of the pipeline is fine
    let full = execute(&db, &plan).unwrap();
    assert_eq!(taken.as_slice(), &full[..3]);
}
