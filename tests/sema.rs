//! Soundness and invariant coverage for the static-analysis layer
//! (`beliefdb_storage::sema`).
//!
//! Three properties are fuzzed here, each a *semantic* guarantee rather
//! than a golden-output check:
//!
//! 1. **Lint soundness** — a rule the linter flags as provably empty
//!    (`BD004`) must actually derive zero rows when evaluated. The
//!    contradiction analysis is allowed to miss contradictions (it
//!    ignores what it cannot model) but never to flag a satisfiable
//!    rule.
//! 2. **Lint determinism** — the full diagnostic rendering for a
//!    program is byte-identical across runs and across freshly built
//!    databases; diagnostics are stable API surfaced in shells and CI.
//! 3. **Verifier completeness over real plans** — every plan the
//!    generator produces, before and after the full optimizer pipeline,
//!    passes `verify_plan` with zero violations (and with the verifier
//!    armed, `optimize` itself re-checks after every pass). Malformed
//!    plans and tampered magic programs are rejected with the right
//!    `BD10x` code.

mod common;

use beliefdb::sql::Session;
use beliefdb::storage::datalog::{Atom, BodyLit, CmpLit, Evaluator, Program, Rule, Term};
use beliefdb::storage::opt::magic::{self, MAGIC_PREFIX};
use beliefdb::storage::sema::{self, codes};
use beliefdb::storage::{
    execute, lint_program, optimize, row, CmpOp, Database, Expr, Plan, StorageError, TableSchema,
    Value,
};
use common::{gen_plan, plan_db};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Fuzzed single-rule programs over the plan_db tables
// ---------------------------------------------------------------------------

const TABLES: [(&str, usize); 3] = [("Users", 2), ("E", 3), ("V", 3)];

/// A random safe single-rule program: 1–2 positive atoms (variables
/// shared sometimes, forming joins), then 1–4 comparison literals over
/// the bound variables with narrow constant ranges — narrow enough that
/// contradictory combinations (`x = 1, x = 2`; `x < 2, x > 4`; `x < x`)
/// arise at a healthy rate.
fn gen_program(rng: &mut StdRng) -> Program {
    let mut body = Vec::new();
    let mut vars: Vec<String> = Vec::new();
    for _ in 0..rng.gen_range(1..3usize) {
        let (table, arity) = TABLES[rng.gen_range(0..TABLES.len())];
        let terms: Vec<Term> = (0..arity)
            .map(|_| {
                if !vars.is_empty() && rng.gen_bool(0.3) {
                    Term::var(vars[rng.gen_range(0..vars.len())].clone())
                } else {
                    let name = format!("v{}", vars.len());
                    vars.push(name.clone());
                    Term::var(name)
                }
            })
            .collect();
        body.push(BodyLit::Pos(Atom::new(table, terms)));
    }
    for _ in 0..rng.gen_range(1..5usize) {
        let left = Term::var(vars[rng.gen_range(0..vars.len())].clone());
        let op = [
            CmpOp::Eq,
            CmpOp::Eq, // weight equality up: it drives contradictions
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ][rng.gen_range(0..7usize)];
        let right = if rng.gen_bool(0.8) {
            Term::val(match rng.gen_range(0..4u32) {
                0 | 1 => Value::int(rng.gen_range(0..6u32) as i64),
                2 => Value::str("+"),
                _ => Value::str("-"),
            })
        } else {
            Term::var(vars[rng.gen_range(0..vars.len())].clone())
        };
        body.push(BodyLit::Cmp(CmpLit { left, op, right }));
    }
    let head_terms: Vec<Term> = vars.iter().map(Term::var).collect();
    Program {
        rules: vec![Rule {
            head: Atom::new("ans", head_terms),
            body,
        }],
    }
}

#[test]
fn flagged_empty_rules_derive_zero_rows() {
    let db = plan_db();
    let mut rng = StdRng::seed_from_u64(0x5E4A_0001);
    let mut flagged = 0usize;
    for i in 0..250 {
        let program = gen_program(&mut rng);
        let diags = lint_program(&db, &program);
        // The generator only builds safe rules; BD001 here is a lint bug.
        assert!(
            diags.iter().all(|d| d.code != codes::UNSAFE_RULE),
            "iteration {i}: spurious safety error on {program}"
        );
        if diags.iter().any(|d| d.code == codes::PROVABLY_EMPTY) {
            flagged += 1;
            let mut ev = Evaluator::new(&db);
            ev.run(&program).unwrap();
            let rows = ev.relation("ans").unwrap_or_default();
            assert!(
                rows.is_empty(),
                "iteration {i}: linter flagged provably-empty but evaluation derived \
                 {} row(s) for {program}",
                rows.len()
            );
        }
    }
    // The property above is vacuous if nothing is ever flagged; the
    // narrow constant ranges make contradictions common.
    assert!(
        flagged >= 25,
        "only {flagged}/250 programs flagged provably-empty — generator or analysis drifted"
    );
}

#[test]
fn lint_output_is_byte_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x5E4A_0002);
    let corpus: Vec<Program> = (0..120).map(|_| gen_program(&mut rng)).collect();
    let render = |db: &Database| -> String {
        let mut out = String::new();
        for p in &corpus {
            for d in lint_program(db, p) {
                out.push_str(&d.to_string());
                out.push('\n');
            }
        }
        out
    };
    // Same corpus, two independently built databases: identical bytes.
    let first = render(&plan_db());
    let second = render(&plan_db());
    assert_eq!(first, second);
    assert!(!first.is_empty());
}

// ---------------------------------------------------------------------------
// The plan verifier over the fuzzed plan corpus
// ---------------------------------------------------------------------------

#[test]
fn verifier_finds_zero_violations_across_optimized_plan_corpus() {
    sema::set_verify(true);
    let db = plan_db();
    let mut rng = StdRng::seed_from_u64(0x5E4A_0003);
    for i in 0..300 {
        let (plan, _) = gen_plan(&mut rng, 4);
        if let Err(d) = sema::verify_plan(&db, &plan) {
            panic!("iteration {i}: generated plan rejected: {d}");
        }
        // With the verifier armed, optimize() re-checks after every
        // rewrite pass; a violation would surface as an error naming
        // the pass.
        let optimized = optimize(&db, plan).unwrap();
        if let Err(d) = sema::verify_plan(&db, &optimized) {
            panic!("iteration {i}: optimized plan rejected: {d}");
        }
    }
    sema::reset_verify();
}

#[test]
fn verifier_rejects_malformed_plans_with_bd101() {
    let db = plan_db();
    // Out-of-range selection column.
    let bad = Plan::scan("V").select(Expr::col_eq_lit(9, 1i64));
    assert_eq!(
        sema::verify_plan(&db, &bad).unwrap_err().code,
        codes::PLAN_SHAPE
    );
    // Union inputs of different arities.
    let bad = Plan::Union {
        inputs: vec![Plan::scan("Users"), Plan::scan("V")],
    };
    assert_eq!(
        sema::verify_plan(&db, &bad).unwrap_err().code,
        codes::PLAN_SHAPE
    );
    // Join key beyond the left child's arity.
    let bad = Plan::scan("Users").join(Plan::scan("V"), vec![(5, 0)]);
    assert_eq!(
        sema::verify_plan(&db, &bad).unwrap_err().code,
        codes::PLAN_SHAPE
    );
    // Values rows disagreeing with the declared arity.
    let bad = Plan::Values {
        arity: 2,
        rows: vec![row![1i64]],
    };
    assert_eq!(
        sema::verify_plan(&db, &bad).unwrap_err().code,
        codes::PLAN_SHAPE
    );
    // Scan of a relation that does not exist.
    let bad = Plan::scan("Ghost");
    assert_eq!(
        sema::verify_plan(&db, &bad).unwrap_err().code,
        codes::PLAN_SHAPE
    );
}

// ---------------------------------------------------------------------------
// Magic-guard verification
// ---------------------------------------------------------------------------

/// `hop(x, y) :- e(x, z), e(z, y).  ans(y) :- hop(0, y).` — the bound
/// probe makes the magic rewrite produce a seed, a guarded restricted
/// copy, and an answer rule over the copy.
fn bound_hop_program() -> Program {
    use beliefdb::storage::datalog::dsl::*;
    Program {
        rules: vec![
            rule(
                "hop",
                vec![v("x"), v("y")],
                vec![
                    pos("e", vec![v("x"), v("z")]),
                    pos("e", vec![v("z"), v("y")]),
                ],
            ),
            rule("ans", vec![v("y")], vec![pos("hop", vec![c(0i64), v("y")])]),
        ],
    }
}

#[test]
fn magic_rewrites_verify_clean_and_tampering_is_caught() {
    let program = bound_hop_program();
    // Untouched programs trivially pass.
    assert!(sema::verify_magic(&program).is_empty());
    let rewritten = magic::rewrite(&program);
    assert_ne!(rewritten, program, "probe should trigger the rewrite");
    assert!(
        sema::verify_magic(&rewritten).is_empty(),
        "{:?}",
        sema::verify_magic(&rewritten)
    );

    // Tamper 1: move a guard off position 0 in a restricted copy.
    let mut tampered = rewritten.clone();
    let victim = tampered
        .rules
        .iter_mut()
        .find(|r| {
            !r.head.relation.starts_with(MAGIC_PREFIX)
                && r.body.len() >= 2
                && matches!(r.body.first(),
                    Some(BodyLit::Pos(a)) if a.relation.starts_with(MAGIC_PREFIX))
        })
        .expect("rewrite should produce a guarded restricted copy");
    victim.body.swap(0, 1);
    let diags = sema::verify_magic(&tampered);
    assert!(
        diags.iter().any(|d| d.code == codes::MAGIC_GUARD),
        "misplaced guard not caught: {diags:?}"
    );

    // Tamper 2: negate a magic guard.
    let mut tampered = rewritten.clone();
    for r in &mut tampered.rules {
        for lit in &mut r.body {
            if let BodyLit::Pos(a) = lit {
                if a.relation.starts_with(MAGIC_PREFIX) {
                    *lit = BodyLit::Neg(a.clone());
                }
            }
        }
    }
    let diags = sema::verify_magic(&tampered);
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::MAGIC_GUARD && d.message.contains("negation")),
        "negated guard not caught: {diags:?}"
    );

    // Tamper 3: read a demand relation nobody derives.
    let mut tampered = rewritten.clone();
    tampered
        .rules
        .retain(|r| !r.head.relation.starts_with(MAGIC_PREFIX));
    let diags = sema::verify_magic(&tampered);
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::MAGIC_GUARD && d.message.contains("never derived")),
        "undefined demand relation not caught: {diags:?}"
    );
}

// ---------------------------------------------------------------------------
// Structured codes on the error path
// ---------------------------------------------------------------------------

#[test]
fn stratification_and_reserved_name_errors_carry_codes() {
    use beliefdb::storage::datalog::dsl::*;
    let mut db = Database::new();
    {
        let e = db
            .create_table(TableSchema::keyless("e", &["src", "dst"]))
            .unwrap();
        e.insert(row![0, 1]).unwrap();
        e.insert(row![1, 2]).unwrap();
    }
    // win(x) :- e(x, y), ¬win(y). — negation through its own component.
    let program = Program {
        rules: vec![rule(
            "win",
            vec![v("x")],
            vec![pos("e", vec![v("x"), v("y")]), neg("win", vec![v("y")])],
        )],
    };
    let err = Evaluator::new(&db).run(&program).unwrap_err();
    assert_eq!(err.code(), Some("BD002"));
    assert!(err.to_string().contains("cycle: win -> win"), "{err}");
    assert!(matches!(err, StorageError::DatalogError(_)));

    // The linter reports the same condition without evaluating.
    let diags = lint_program(&db, &program);
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::UNSTRATIFIABLE && d.is_error()),
        "{diags:?}"
    );

    // Reserved-name rejection carries BD010 on the ReservedName variant.
    let err = db
        .create_table(TableSchema::keyless("sys.metrics", &["x"]))
        .unwrap_err();
    assert_eq!(err.code(), Some("BD010"));
    assert!(matches!(err, StorageError::ReservedName(_)));
}

// ---------------------------------------------------------------------------
// The provably-empty optimizer fold
// ---------------------------------------------------------------------------

#[test]
fn contradictory_selection_folds_to_empty_values() {
    let db = plan_db();
    let cases = vec![
        // x = 1 AND x = 2
        Expr::and(vec![Expr::col_eq_lit(0, 1i64), Expr::col_eq_lit(0, 2i64)]),
        // x < 2 AND x > 4 — empty range
        Expr::and(vec![
            Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(2i64)),
            Expr::cmp(CmpOp::Gt, Expr::Col(0), Expr::lit(4i64)),
        ]),
        // x < x
        Expr::cmp(CmpOp::Lt, Expr::Col(1), Expr::Col(1)),
    ];
    for pred in cases {
        let plan = Plan::scan("V").select(pred);
        let optimized = optimize(&db, plan.clone()).unwrap();
        assert!(
            matches!(&optimized, Plan::Values { rows, .. } if rows.is_empty()),
            "expected empty Values, got {optimized:?}"
        );
        // The fold must agree with brute-force execution.
        assert!(execute(&db, &plan).unwrap().is_empty());
        assert!(execute(&db, &optimized).unwrap().is_empty());
    }
    // A satisfiable conjunction must NOT fold away.
    let plan = Plan::scan("V").select(Expr::and(vec![
        Expr::cmp(CmpOp::Ge, Expr::Col(0), Expr::lit(2i64)),
        Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(4i64)),
    ]));
    let optimized = optimize(&db, plan.clone()).unwrap();
    let mut a = execute(&db, &plan).unwrap();
    let mut b = execute(&db, &optimized).unwrap();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

// ---------------------------------------------------------------------------
// The SQL surface: Session::lint, EXPLAIN annotations
// ---------------------------------------------------------------------------

fn sql_session() -> Session {
    use beliefdb::core::ExternalSchema;
    let schema = ExternalSchema::new().with_relation("Samples", &["sid", "category", "origin"]);
    let mut s = Session::new(schema).unwrap();
    s.add_user("Ana").unwrap();
    s.execute("insert into Samples values ('a','fungus','soil')")
        .unwrap();
    s.execute("insert into Samples values ('b','moss','rock')")
        .unwrap();
    s
}

#[test]
fn session_lint_reports_contradictions_and_stays_deterministic() {
    let s = sql_session();
    // A healthy query lints without errors.
    let diags = s
        .lint("select S.sid from Samples as S where S.category = 'moss'")
        .unwrap();
    assert!(diags.iter().all(|d| !d.is_error()), "{diags:?}");

    // A self-contradictory WHERE is flagged BD004 (whether the lowerer
    // catches the contradiction or the program linter does).
    let sql = "select S.sid from Samples as S where S.sid = 'a' and S.sid = 'b'";
    let diags = s.lint(sql).unwrap();
    assert!(
        diags.iter().any(|d| d.code == codes::PROVABLY_EMPTY),
        "{diags:?}"
    );
    // ...and the query really is empty.
    assert!(s.query(sql).unwrap().rows().is_empty());

    // Deterministic rendering across repeated calls and fresh sessions.
    let rendered = |s: &Session| {
        s.lint(sql)
            .unwrap()
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let first = rendered(&s);
    assert_eq!(first, rendered(&s));
    assert_eq!(first, rendered(&sql_session()));

    // sys.* scans have nothing to lint.
    assert!(s.lint("select * from sys.tables").unwrap().is_empty());

    // Non-SELECT statements are rejected, not silently accepted.
    assert!(s.lint("insert into Samples values ('c','x','y')").is_err());
}

#[test]
fn explain_annotates_contradictory_queries() {
    let s = sql_session();
    let text = s
        .explain("select S.sid from Samples as S where S.sid = 'a' and S.sid = 'b'")
        .unwrap();
    assert!(text.contains("BD004"), "{text}");
    // A clean query's EXPLAIN carries no error diagnostics.
    let text = s
        .explain("select S.sid from Samples as S where S.sid = 'a'")
        .unwrap();
    assert!(!text.contains("error[BD"), "{text}");
}

#[test]
fn session_verify_toggle_round_trips() {
    let mut s = sql_session();
    s.set_verify(true);
    assert!(s.verify_enabled());
    // Queries still run with the verifier armed.
    assert_eq!(
        s.query("select S.sid from Samples as S where S.category = 'moss'")
            .unwrap()
            .rows()
            .len(),
        1
    );
    sema::reset_verify();
}
