//! End-to-end BeliefSQL scenarios across crates: a multi-relation curation
//! workflow driven purely through SQL text, plus cross-checks between SQL
//! answers, programmatic BCQ answers, and the generated-workload pipeline.

use beliefdb::core::{ExternalSchema, Sign};
use beliefdb::gen::{generate_bdms, GeneratorConfig};
use beliefdb::sql::{ExecResult, Session};
use beliefdb::storage::row;

fn lab_session() -> Session {
    let schema = ExternalSchema::new()
        .with_relation("Samples", &["sid", "category", "origin"])
        .with_relation("Notes", &["nid", "text", "sid"]);
    let mut s = Session::new(schema).unwrap();
    for u in ["Ana", "Ben", "Cleo"] {
        s.add_user(u).unwrap();
    }
    s
}

#[test]
fn full_curation_workflow() {
    let mut s = lab_session();

    // Base data + annotations.
    s.execute("insert into Samples values ('a','fungus','soil')")
        .unwrap();
    s.execute("insert into Samples values ('b','moss','rock')")
        .unwrap();
    s.execute("insert into BELIEF 'Ben' Samples values ('a','fungus','bark')")
        .unwrap();
    s.execute("insert into BELIEF 'Ben' Notes values ('n1','bark residue found','a')")
        .unwrap();
    s.execute("insert into BELIEF 'Cleo' not Samples values ('b','moss','rock')")
        .unwrap();
    s.execute(
        "insert into BELIEF 'Cleo' BELIEF 'Ana' Notes values ('n2','collected near stream','b')",
    )
    .unwrap();

    // Ana (by default) believes the base data; Ben overrides sample a.
    let r = s
        .query(
            "select S.sid, S.origin from Users as U, BELIEF U.uid Samples as S \
             where U.name = 'Ana'",
        )
        .unwrap();
    assert_eq!(r.rows(), &[row!["a", "soil"], row!["b", "rock"]]);
    let r = s
        .query(
            "select S.origin from Users as U, BELIEF U.uid Samples as S \
             where U.name = 'Ben' and S.sid = 'a'",
        )
        .unwrap();
    assert_eq!(r.rows(), &[row!["bark"]]);

    // Who disputes the base data? (negated from-item fully pinned by joins)
    let r = s
        .query(
            "select U.name, R.sid \
             from Users as U, Samples as R, BELIEF U.uid not Samples as S \
             where S.sid = R.sid and S.category = R.category and S.origin = R.origin",
        )
        .unwrap();
    // Ben's bark-origin makes ('a','fungus','soil') an unstated negative;
    // Cleo stated hers for b.
    assert_eq!(r.rows(), &[row!["Ben", "a"], row!["Cleo", "b"]]);

    // Higher-order: what does Cleo think Ana believes about notes?
    let r = s
        .query("select N.text from BELIEF 'Cleo' BELIEF 'Ana' Notes as N")
        .unwrap();
    assert_eq!(r.rows(), &[row!["collected near stream"]]);

    // Update then delete round trip.
    let out = s
        .execute("update BELIEF 'Ben' Samples set origin = 'loam' where sid = 'a'")
        .unwrap();
    assert_eq!(out, ExecResult::Updated(1));
    let r = s
        .query("select S.origin from BELIEF 'Ben' Samples as S where S.sid = 'a'")
        .unwrap();
    assert_eq!(r.rows(), &[row!["loam"]]);

    let out = s
        .execute("delete from BELIEF 'Cleo' not Samples where sid = 'b'")
        .unwrap();
    assert_eq!(out, ExecResult::Deleted(1));
    // Cleo's default belief in sample b returns.
    let r = s
        .query(
            "select S.sid from Users as U, BELIEF U.uid Samples as S \
             where U.name = 'Cleo' and S.sid = 'b'",
        )
        .unwrap();
    assert_eq!(r.rows().len(), 1);
}

#[test]
fn multi_relation_joins_through_beliefs() {
    let mut s = lab_session();
    s.execute("insert into BELIEF 'Ana' Samples values ('a','fungus','soil')")
        .unwrap();
    s.execute("insert into BELIEF 'Ana' Notes values ('n1','smells earthy','a')")
        .unwrap();
    s.execute("insert into BELIEF 'Ben' Notes values ('n2','microscopy pending','a')")
        .unwrap();

    // Join a belief-annotated relation with another belief-annotated
    // relation of the same user.
    let r = s
        .query(
            "select S.category, N.text \
             from BELIEF 'Ana' Samples as S, BELIEF 'Ana' Notes as N \
             where N.sid = S.sid",
        )
        .unwrap();
    assert_eq!(r.rows(), &[row!["fungus", "smells earthy"]]);

    // Cross-user join: Ana's sample against every user's notes. Statements
    // at [Ana] propagate to "X believes Ana believes ...", NOT to X's own
    // world (the message-board assumption prefixes the author) — so each
    // user's own world holds only their own note.
    let r = s
        .query(
            "select U.name, N.text \
             from Users as U, BELIEF 'Ana' Samples as S, BELIEF U.uid Notes as N \
             where N.sid = S.sid",
        )
        .unwrap();
    assert_eq!(
        r.rows(),
        &[
            row!["Ana", "smells earthy"],
            row!["Ben", "microscopy pending"]
        ]
    );

    // The higher-order worlds DO inherit Ana's note: everyone believes that
    // Ana believes it.
    let r = s
        .query(
            "select U.name, N.text \
             from Users as U, BELIEF U.uid BELIEF 'Ana' Notes as N",
        )
        .unwrap();
    assert_eq!(
        r.rows(),
        &[row!["Ben", "smells earthy"], row!["Cleo", "smells earthy"],]
    );
}

#[test]
fn generated_workload_queryable_through_sql() {
    // Build a workload with the generator, then interrogate it via SQL.
    let cfg = GeneratorConfig::new(5, 300).with_seed(11);
    let (bdms, report) = generate_bdms(&cfg).unwrap();
    assert_eq!(report.accepted, 300);
    let session = Session::from_bdms(bdms);

    // Every user's positive beliefs are reachable through SQL.
    let r = session
        .query(
            "select U.name, S.sid, S.species \
             from Users as U, BELIEF U.uid S as S",
        )
        .unwrap();
    assert!(!r.rows().is_empty());
    // All five users appear (everyone inherits the root facts at minimum —
    // unless the generator made no root facts; then at least annotators).
    let users: std::collections::BTreeSet<String> =
        r.rows().iter().map(|row| row[0].to_string()).collect();
    assert!(!users.is_empty());

    // SQL answer matches the equivalent programmatic query.
    let bdms = session.bdms();
    use beliefdb::core::bcq::dsl::*;
    let s_rel = bdms.schema().relation_id("S").unwrap();
    let q = beliefdb::core::bcq::Bcq::builder(vec![qv("n"), qv("sid"), qv("sp")])
        .user(qv("x"), qv("n"))
        .positive(
            vec![pv("x")],
            s_rel,
            vec![qv("sid"), qany(), qv("sp"), qany(), qany()],
        )
        .build(bdms.schema())
        .unwrap();
    let programmatic = bdms.query(&q).unwrap();
    assert_eq!(r.rows(), programmatic.as_slice());
}

#[test]
fn statement_counts_survive_sql_ingest() {
    // Drive the generator's statements through SQL text instead of the
    // programmatic API; the resulting store must be identical.
    let cfg = GeneratorConfig::new(3, 80).with_seed(5);
    let (reference, _) = generate_bdms(&cfg).unwrap();

    let mut session = Session::new(beliefdb::gen::experiment_schema()).unwrap();
    for i in 1..=3 {
        session.add_user(format!("u{i}")).unwrap();
    }
    for stmt in reference.to_belief_database().unwrap().statements() {
        let mut sql = String::from("insert into ");
        for u in stmt.path.users() {
            sql.push_str(&format!("BELIEF 'u{u}' "));
        }
        if stmt.sign == Sign::Neg {
            sql.push_str("not ");
        }
        sql.push_str("S values (");
        let vals: Vec<String> = stmt
            .tuple
            .row
            .values()
            .iter()
            .map(|v| format!("'{v}'"))
            .collect();
        sql.push_str(&vals.join(","));
        sql.push(')');
        let out = session.execute(&sql).unwrap();
        assert!(
            matches!(out, ExecResult::Inserted(o) if o.accepted()),
            "{sql}"
        );
    }
    let via_sql = session.bdms().to_belief_database().unwrap();
    let via_generator = reference.to_belief_database().unwrap();
    assert_eq!(via_sql.statements(), via_generator.statements());
    // Total tuple counts may differ: the generator's *rejected* candidates
    // still allocate R* rows and worlds (faithful to Alg. 4's ordering),
    // while the SQL replay only sees accepted statements. The entailed
    // worlds, however, must be identical.
    for state in via_generator.states() {
        assert_eq!(
            session.bdms().world(&state).unwrap(),
            reference.world(&state).unwrap(),
            "world mismatch at {state}"
        );
    }
}

#[test]
fn dml_conditions_support_column_comparisons_and_aliases() {
    let mut s = lab_session();
    s.execute("insert into BELIEF 'Ana' Samples values ('x','x','soil')")
        .unwrap();
    s.execute("insert into BELIEF 'Ana' Samples values ('y','moss','rock')")
        .unwrap();
    // Column-to-column condition inside a single-table DELETE: remove the
    // statement whose sid equals its category.
    let out = s
        .execute("delete from BELIEF 'Ana' Samples as T where T.sid = T.category")
        .unwrap();
    assert_eq!(out, ExecResult::Deleted(1));
    let r = s
        .query("select S.sid from BELIEF 'Ana' Samples as S")
        .unwrap();
    assert_eq!(r.rows(), &[row!["y"]]);
    // Wrong alias in the WHERE clause is rejected.
    assert!(s
        .execute("delete from BELIEF 'Ana' Samples as T where Z.sid = 'y'")
        .is_err());
    // Inequality conditions work in UPDATE too.
    let out = s
        .execute("update BELIEF 'Ana' Samples set origin = 'peat' where sid <> 'zzz'")
        .unwrap();
    assert_eq!(out, ExecResult::Updated(1));
    let r = s
        .query("select S.origin from BELIEF 'Ana' Samples as S where S.sid = 'y'")
        .unwrap();
    assert_eq!(r.rows(), &[row!["peat"]]);
}

#[test]
fn delete_without_conditions_clears_the_world_sign() {
    let mut s = lab_session();
    s.execute("insert into BELIEF 'Ben' not Samples values ('a','fungus','soil')")
        .unwrap();
    s.execute("insert into BELIEF 'Ben' not Samples values ('a','fungus','bark')")
        .unwrap();
    s.execute("insert into BELIEF 'Ben' Samples values ('b','moss','rock')")
        .unwrap();
    // Unconditional negative delete removes both negatives, not the positive.
    let out = s.execute("delete from BELIEF 'Ben' not Samples").unwrap();
    assert_eq!(out, ExecResult::Deleted(2));
    let r = s
        .query("select S.sid from BELIEF 'Ben' Samples as S")
        .unwrap();
    assert_eq!(r.rows(), &[row!["b"]]);
}
