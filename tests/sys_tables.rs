//! End-to-end suite for the `sys.*` system catalog: virtual tables
//! scanned through the ordinary parse → plan → optimize → chunked
//! executor path, plus the fingerprinted cumulative statement
//! statistics behind `sys.statements`.
//!
//! Covered here (unit tests live with the providers in
//! `beliefdb-storage::obs`):
//!
//! * the acceptance query `SELECT * FROM sys.statements ORDER BY
//!   total_time_ns DESC LIMIT 5` end-to-end through a session;
//! * plan-cache non-interaction — sys scans are never cached and never
//!   count as hits or misses, and their snapshots are never stale;
//! * `sys.metrics` vs `metrics().snapshot()` — every counter row is
//!   bracketed by snapshots taken around the scan (counters are
//!   monotonic, so `before ≤ scanned ≤ after` is exact under
//!   concurrency);
//! * a fuzzed differential: per-fingerprint `rows_returned` totals in
//!   `sys.statements` equal `calls ×` the actual row count reported by
//!   `EXPLAIN ANALYZE` for that statement;
//! * named regressions: DML on `sys.*` rejected cleanly, durable
//!   sessions (`\open`) register the catalog but never persist it, and
//!   the magic-sets rewrite refuses programs touching `sys.*`.

use beliefdb::core::ExternalSchema;
use beliefdb::sql::Session;
use beliefdb::storage::datalog::{Atom, BodyLit, Program, Rule, Term};
use beliefdb::storage::obs::{fingerprint, statements_snapshot};
use beliefdb::storage::{metrics, Database, Metric, Row, StorageError, TableSchema, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn schema() -> ExternalSchema {
    ExternalSchema::new().with_relation("Sightings", &["sid", "species"])
}

fn session_with_rows(n: i64) -> Session {
    let mut s = Session::new(schema()).unwrap();
    for i in 0..n {
        s.execute(&format!(
            "insert into Sightings values ('s{i}','sp{}')",
            i % 3
        ))
        .unwrap();
    }
    s
}

fn cell_int(row: &Row, i: usize) -> i64 {
    row.values()[i].as_int().expect("integer cell")
}

fn cell_str(row: &Row, i: usize) -> String {
    match &row.values()[i] {
        Value::Str(s) => s.to_string(),
        other => panic!("expected string cell, got {other:?}"),
    }
}

#[test]
fn acceptance_query_end_to_end() {
    let session = session_with_rows(4);
    // Accumulate a few distinct statements first.
    session.query("select A7.sid from Sightings as A7").unwrap();
    session
        .query("select A8.species from Sightings as A8")
        .unwrap();

    let result = session
        .query("SELECT * FROM sys.statements ORDER BY total_time_ns DESC LIMIT 5")
        .unwrap();
    assert_eq!(
        result.columns(),
        [
            "fingerprint",
            "statement",
            "calls",
            "errors",
            "total_time_ns",
            "min_time_ns",
            "max_time_ns",
            "mean_time_ns",
            "rows_returned",
            "cache_hits",
            "cache_misses",
            "spill_bytes",
            "peak_buffered_bytes",
        ]
    );
    let rows = result.rows();
    assert!(!rows.is_empty() && rows.len() <= 5, "LIMIT 5 must cap rows");
    // ORDER BY total_time_ns DESC: non-increasing down the result.
    for pair in rows.windows(2) {
        assert!(
            cell_int(&pair[0], 4) >= cell_int(&pair[1], 4),
            "rows not sorted by total_time_ns desc"
        );
    }
    // The fingerprint column is the 16-hex-digit rendering of the
    // statement's normalized hash.
    for row in rows {
        assert_eq!(cell_str(row, 0).len(), 16);
        assert!(cell_int(row, 2) >= 1, "calls is at least 1");
    }
}

#[test]
fn sys_scans_never_touch_the_plan_cache_and_never_go_stale() {
    let mut session = session_with_rows(3);
    // Warm the plan cache with a belief query so there is real state to
    // disturb.
    session.query("select B1.sid from Sightings as B1").unwrap();
    session.query("select B1.sid from Sightings as B1").unwrap();

    let cache_row = |s: &Session| {
        s.query("select * from sys.plan_cache").unwrap().rows()[0]
            .values()
            .to_vec()
    };
    let before = cache_row(&session);
    assert!(
        before[2].as_int().unwrap() >= 1,
        "warm-up should have cached a program"
    );

    // A burst of sys scans — including repeated identical ones, which
    // would be prime cache candidates if the path consulted the cache.
    for _ in 0..3 {
        session.query("select * from sys.metrics").unwrap();
        session.query("select * from sys.tables").unwrap();
        session
            .query("select * from sys.statements order by total_time_ns desc limit 2")
            .unwrap();
    }
    let after = cache_row(&session);
    assert_eq!(
        before, after,
        "sys.* scans must not count plan-cache hits/misses or add entries"
    );

    // Never stale, part 1: a base-table mutation is visible in the very
    // next sys.tables scan (scan-time snapshot, no cached plan rows).
    let rows_of = |s: &Session, table: &str| {
        s.query(&format!(
            "select T.rows from sys.tables as T where T.name = '{table}'"
        ))
        .unwrap()
        .rows()
        .first()
        .map(|r| cell_int(r, 0))
        .expect("table listed")
    };
    let n0 = rows_of(&session, "Sightings__star");
    session
        .execute("insert into Sightings values ('zz','owl')")
        .unwrap();
    assert_eq!(
        rows_of(&session, "Sightings__star"),
        n0 + 1,
        "sys.tables served a stale row count"
    );

    // Never stale, part 2: a freshly executed statement is visible in
    // the immediately following sys.statements scan.
    let probe = "select B2.species from Sightings as B2";
    session.query(probe).unwrap();
    let fp = format!("{:016x}", fingerprint(probe));
    let found = session
        .query("select * from sys.statements")
        .unwrap()
        .rows()
        .iter()
        .any(|r| cell_str(r, 0) == fp);
    assert!(found, "sys.statements missed a statement just executed");
}

#[test]
fn sys_metrics_rows_bracketed_by_registry_snapshots() {
    let session = session_with_rows(2);
    let before = metrics().snapshot();
    let result = session.query("select * from sys.metrics").unwrap();
    let after = metrics().snapshot();

    let rows = result.rows();
    assert_eq!(rows.len(), Metric::ALL.len());
    for (row, metric) in rows.iter().zip(Metric::ALL.iter()) {
        assert_eq!(cell_str(row, 0), metric.name());
        let scanned = cell_int(row, 1) as u64;
        assert!(
            before.get(*metric) <= scanned && scanned <= after.get(*metric),
            "{}: scanned {scanned} outside [{}, {}]",
            metric.name(),
            before.get(*metric),
            after.get(*metric)
        );
    }
}

/// Deterministic LCG so the fuzz is reproducible without a rand dep.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// The actual row count reported by `EXPLAIN ANALYZE` for a sys query
/// (the trailing `-- N row(s) returned` line).
fn explain_analyze_rows(session: &Session, sql: &str) -> u64 {
    let text = session
        .query(&format!("explain analyze {sql}"))
        .unwrap()
        .to_string();
    let line = text
        .lines()
        .find(|l| l.starts_with("--") && l.ends_with("returned"))
        .unwrap_or_else(|| panic!("no actual-rows line in:\n{text}"));
    line.split_whitespace()
        .nth(1)
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("unparsable actual-rows line: {line}"))
}

#[test]
fn fuzzed_statement_totals_match_explain_analyze_actuals() {
    let session = session_with_rows(3);
    let mut state = 0x9e3779b97f4a7c15u64;

    // Table names are stable for the whole test (no DDL), so sys.tables
    // row counts cannot drift between the EXPLAIN ANALYZE run and the
    // recorded runs. Each query gets a unique alias, giving it a unique
    // fingerprint no other test in this binary can touch.
    let names = ["Sightings__star", "V__Sightings", "nosuch"];
    let cols = ["name", "rows", "seq_scans", "inserts"];
    for i in 0..24 {
        let alias = format!("fz{i}");
        let mut sql = format!("select {alias}.name from sys.tables as {alias}");
        if lcg(&mut state).is_multiple_of(2) {
            let name = names[(lcg(&mut state) % names.len() as u64) as usize];
            let op = if lcg(&mut state).is_multiple_of(2) {
                "="
            } else {
                "!="
            };
            sql.push_str(&format!(" where {alias}.name {op} '{name}'"));
        }
        if lcg(&mut state).is_multiple_of(2) {
            let key = cols[(lcg(&mut state) % cols.len() as u64) as usize];
            let dir = if lcg(&mut state).is_multiple_of(2) {
                " desc"
            } else {
                ""
            };
            sql.push_str(&format!(" order by {key}{dir}"));
        }
        if lcg(&mut state).is_multiple_of(2) {
            sql.push_str(&format!(" limit {}", lcg(&mut state) % 5));
        }

        let actual = explain_analyze_rows(&session, &sql);
        let calls = 1 + lcg(&mut state) % 3;
        for _ in 0..calls {
            assert_eq!(session.query(&sql).unwrap().rows().len() as u64, actual);
        }

        let fp = fingerprint(&sql);
        let stats = statements_snapshot()
            .into_iter()
            .find(|s| s.fingerprint == fp)
            .unwrap_or_else(|| panic!("no sys.statements entry for: {sql}"));
        assert_eq!(stats.calls, calls, "calls differ for: {sql}");
        assert_eq!(stats.errors, 0);
        assert_eq!(
            stats.rows,
            calls * actual,
            "cumulative rows_returned != calls x EXPLAIN ANALYZE actuals for: {sql}"
        );
        assert!(stats.total_ns >= stats.min_ns);
        assert!(stats.max_ns <= stats.total_ns);
    }
}

#[test]
fn dml_on_system_tables_is_rejected_cleanly() {
    let mut session = session_with_rows(1);
    for sql in [
        "insert into sys.metrics values ('x', 1)",
        "delete from sys.statements",
        "update sys.tables set name = 'y'",
        "insert into sys.statements values ('a','b',1,2,3,4,5,6,7,8,9,10,11)",
    ] {
        let err = session.execute(sql).unwrap_err().to_string();
        assert!(
            err.contains("read-only"),
            "DML `{sql}` must fail with the read-only error, got: {err}"
        );
    }
    // The base catalog refuses the namespace too: no user table can
    // shadow a system relation.
    let mut db = Database::new();
    let err = db
        .create_table(TableSchema::keyless("sys.mine", &["a"]))
        .unwrap_err();
    assert!(matches!(err, StorageError::ReservedName(_)));
}

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "beliefdb-systables-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

#[test]
fn durable_sessions_register_but_never_persist_the_catalog() {
    let dir = temp_dir("durable");
    {
        let mut session = Session::create(&dir, schema()).unwrap();
        session
            .execute("insert into Sightings values ('d1','heron')")
            .unwrap();
        // The catalog is live in a durable session...
        assert_eq!(
            session.query("select * from sys.wal").unwrap().rows().len(),
            1,
            "durable session must expose one sys.wal row"
        );
        // ...but is not itself a WAL or snapshot target: checkpointing
        // succeeds and persists only base tables.
        session.checkpoint().unwrap();
        let err = session
            .execute("insert into sys.wal values (1,2,3,4,5,6,7,8)")
            .unwrap_err()
            .to_string();
        assert!(err.contains("read-only"));
    }
    {
        // Recovery re-registers the catalog over the recovered store;
        // nothing sys-prefixed came back from disk as a base table.
        let session = Session::open(&dir).unwrap();
        let listed = session.query("select * from sys.tables").unwrap();
        assert!(
            listed
                .rows()
                .iter()
                .all(|r| !cell_str(r, 0).starts_with("sys.")),
            "a sys.* relation was persisted as a base table"
        );
        let wal = session.query("select * from sys.wal").unwrap();
        assert_eq!(wal.rows().len(), 1);
        let n = session
            .query("select S.sid from Sightings as S")
            .unwrap()
            .rows()
            .len();
        assert_eq!(n, 1, "base data must survive the round trip");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn magic_rewrite_refuses_system_relations() {
    use beliefdb::storage::opt::magic::rewrite_checked;
    let read_sys = Program {
        rules: vec![Rule {
            head: Atom::new("Out", vec![Term::var("x")]),
            body: vec![BodyLit::Pos(Atom::new(
                "sys.metrics",
                vec![Term::var("x"), Term::Any],
            ))],
        }],
    };
    let err = rewrite_checked(&read_sys).unwrap_err();
    assert!(matches!(err, StorageError::ReservedName(_)));
    assert!(err.to_string().contains("sys.metrics"));

    let derive_into_sys = Program {
        rules: vec![Rule {
            head: Atom::new("sys.out", vec![Term::var("x")]),
            body: vec![BodyLit::Pos(Atom::new("E", vec![Term::var("x")]))],
        }],
    };
    assert!(rewrite_checked(&derive_into_sys).is_err());
}
