//! Peak-allocation guard for the spill-to-disk materialization points:
//! with a budget of ~1/10 of the input, sort / distinct / aggregate /
//! join queries over larger-than-budget inputs must complete with peak
//! executor memory **O(budget)** — far below the in-memory executor's
//! O(input) peak, and (the sharper claim) *unchanged when the input
//! quadruples at a fixed budget*.
//!
//! Measured with a counting global allocator tracking live bytes (same
//! technique as `tests/streaming_allocation.rs`; this binary holds
//! exactly one `#[test]` so no other thread skews the counters).
//! Results are drained chunk-by-chunk without collecting, so the output
//! itself does not dominate the measurement.

use beliefdb::storage::{row, Agg, Database, Executor, Plan, SpillOptions, TableSchema};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

struct PeakTracking;

static CURRENT: AtomicIsize = AtomicIsize::new(0);
static PEAK: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for PeakTracking {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size() as isize, Ordering::Relaxed)
                + layout.size() as isize;
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            let delta = new_size as isize - layout.size() as isize;
            let cur = CURRENT.fetch_add(delta, Ordering::Relaxed) + delta;
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        q
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        CURRENT.fetch_sub(layout.size() as isize, Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOCATOR: PeakTracking = PeakTracking;

/// Run `f` and return (result, peak live bytes above the baseline).
fn peak_of<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    let peak = (PEAK.load(Ordering::Relaxed) - base).max(0) as usize;
    (out, peak)
}

fn table(db: &mut Database, name: &str, n: i64) {
    let t = db
        .create_table(TableSchema::keyless(name, &["k", "a", "b"]))
        .unwrap();
    for i in 0..n {
        t.insert(row![i % 613, i, (i * 31) % 977]).unwrap();
    }
    // Build the version-cached columnar transpose now: it is
    // table-resident acceleration state (like an index), not per-query
    // executor memory, and would otherwise land in the first measured
    // query's peak.
    t.columnar();
}

/// Drain a plan without collecting; returns the produced row count.
fn drain(db: &Database, plan: &Plan, budget: Option<usize>, dir: &std::path::Path) -> usize {
    let exec = match budget {
        Some(b) => Executor::with_spill(db, SpillOptions::with_budget(b).in_dir(dir)),
        None => Executor::new(db),
    };
    let mut out = 0usize;
    for chunk in exec.open_chunks(plan).unwrap() {
        out += chunk.unwrap().len();
    }
    out
}

#[test]
fn budgeted_queries_peak_at_o_budget_not_o_input() {
    const N: i64 = 40_000;
    let dir = std::env::temp_dir().join(format!("beliefdb-spill-alloc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut db = Database::new();
    table(&mut db, "T", N);
    table(&mut db, "T4", 4 * N);
    let build = db
        .create_table(TableSchema::keyless("B", &["k", "tag"]))
        .unwrap();
    for i in 0..N {
        build.insert(row![i % 613, i]).unwrap();
    }
    build.columnar();
    let indexed = db
        .create_table(TableSchema::keyless("BI", &["k", "tag"]))
        .unwrap();
    indexed.create_index("by_k", &["k"]).unwrap();
    for i in 0..N {
        indexed.insert(row![i % 613, i]).unwrap();
    }
    indexed.columnar();

    // ~1/10 of the input's accounted footprint (three-int rows come out
    // around 70 bytes in the budget's own accounting).
    let budget = (N as usize) * 7;

    let workloads: Vec<(&str, Plan, Plan)> = vec![
        (
            "sort",
            Plan::scan("T").sort(vec![1]),
            Plan::scan("T4").sort(vec![1]),
        ),
        (
            "distinct",
            Plan::scan("T").distinct(),
            Plan::scan("T4").distinct(),
        ),
        (
            "aggregate",
            Plan::Aggregate {
                input: Box::new(Plan::scan("T")),
                group_by: vec![1],
                aggs: vec![Agg::Count, Agg::Max(2)],
            },
            Plan::Aggregate {
                input: Box::new(Plan::scan("T4")),
                group_by: vec![1],
                aggs: vec![Agg::Count, Agg::Max(2)],
            },
        ),
        (
            "join",
            Plan::scan("T").join(Plan::scan("B"), vec![(0, 0)]),
            Plan::scan("T4").join(Plan::scan("B"), vec![(0, 0)]),
        ),
        // The adaptive index-nested-loop path: its left-row buffer must
        // also be capped by the budget (past the share it falls back to
        // the grace hash join).
        (
            "join_indexed",
            Plan::scan("T").join(Plan::scan("BI"), vec![(0, 0)]),
            Plan::scan("T4").join(Plan::scan("BI"), vec![(0, 0)]),
        ),
    ];

    for (name, plan, plan4) in &workloads {
        let (rows_mem, peak_mem) = peak_of(|| drain(&db, plan, None, &dir));
        let (rows_spill, peak_spill) = peak_of(|| drain(&db, plan, Some(budget), &dir));
        assert_eq!(rows_mem, rows_spill, "{name}: row counts diverged");
        // O(budget), not O(input): the spilling run must stay well below
        // the in-memory materialization (3x headroom keeps the assertion
        // robust to allocator layout).
        assert!(
            peak_spill * 3 < peak_mem,
            "{name}: spilling peak {peak_spill}B is not \u{226a} in-memory peak {peak_mem}B"
        );
        // The sharper claim: at a fixed budget, quadrupling the input
        // must not scale the peak (merge fan-in, partition buffers, and
        // the in-memory share are all budget-bound).
        let (_, peak_spill4) = peak_of(|| drain(&db, plan4, Some(budget), &dir));
        assert!(
            peak_spill4 < peak_spill * 2 + (budget << 1),
            "{name}: peak scales with input at fixed budget: {peak_spill4}B vs {peak_spill}B"
        );
    }

    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "spill files left behind"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
