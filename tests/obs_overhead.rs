//! Overhead guard for the observability layer: with obs **disabled**
//! (no `EXPLAIN ANALYZE`, slowlog off), the hot paths must cost
//! essentially nothing.
//!
//! Three claims, checked with a counting global allocator (same
//! technique as `tests/spill_allocation.rs`; one `#[test]` per binary
//! so no other thread skews the counters):
//!
//! 1. The always-on primitives are allocation-free: metric increments,
//!    latency recording, disabled-`Recorder` spans, the slowlog's
//!    armed check, the statement-tracking gate, and the disabled plan
//!    verifier allocate **zero** bytes.
//! 2. Query execution with obs disabled allocates **identically** run
//!    to run — the disabled profile path adds no per-run allocations
//!    (a `NodeObs::disabled()` is a `None`, not a node tree), and the
//!    same holds through the session with statement tracking off (the
//!    fingerprint path is never reached).
//! 3. (Release builds only) a disabled run is not slower than a fully
//!    profiled run — i.e. the disabled path cannot be accidentally
//!    paying the profiling cost. Profiling does strictly more work
//!    (a timestamp pair per `next()`), so disabled ≤ 2× profiled on
//!    medians is a generous, noise-proof bound.

use beliefdb::storage::obs::{
    clear_statements, set_statements_enabled, statements_enabled, statements_snapshot,
};
use beliefdb::storage::sema;
use beliefdb::storage::{
    metrics, row, CmpOp, Database, Executor, Expr, Metric, Plan, Recorder, SlowLog, TableSchema,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

struct Counting;

/// Bytes ever allocated (monotonic; realloc counts only growth).
static TOTAL: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            TOTAL.fetch_add(layout.size(), Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            TOTAL.fetch_add(new_size.saturating_sub(layout.size()), Ordering::Relaxed);
        }
        q
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
    }
}

#[global_allocator]
static ALLOCATOR: Counting = Counting;

/// Run `f` and return (result, bytes allocated while it ran).
fn allocated_by<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = TOTAL.load(Ordering::Relaxed);
    let out = f();
    (out, TOTAL.load(Ordering::Relaxed) - before)
}

fn database() -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::keyless("T", &["k", "a", "b"]))
        .unwrap();
    for i in 0..4_000i64 {
        t.insert(row![i % 97, i, (i * 31) % 613]).unwrap();
    }
    let b = db
        .create_table(TableSchema::keyless("B", &["k", "tag"]))
        .unwrap();
    for i in 0..400i64 {
        b.insert(row![i % 97, i]).unwrap();
    }
    db
}

/// A representative pipeline: scan → filter → join → distinct → sort.
fn workload() -> Plan {
    Plan::scan("T")
        .select(Expr::cmp(CmpOp::Gt, Expr::Col(1), Expr::lit(100i64)))
        .join(Plan::scan("B"), vec![(0, 0)])
        .distinct()
        .sort(vec![1])
}

/// Drain the plan with obs disabled; returns the produced row count.
fn drain(db: &Database, plan: &Plan) -> usize {
    let exec = Executor::new(db);
    let mut out = 0usize;
    for chunk in exec.open_chunks(plan).unwrap() {
        out += chunk.unwrap().len();
    }
    out
}

/// Drain the plan with per-operator profiling on.
fn drain_profiled(db: &Database, plan: &Plan) -> usize {
    let exec = Executor::new(db);
    let (stream, profile) = exec.open_chunks_profiled(plan).unwrap();
    let mut out = 0usize;
    for chunk in stream {
        out += chunk.unwrap().len();
    }
    assert_eq!(profile.rows_out() as usize, out);
    out
}

fn median_nanos(mut f: impl FnMut(), runs: usize) -> u64 {
    let mut samples: Vec<u64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[runs / 2]
}

#[test]
fn disabled_observability_is_free() {
    let db = database();
    let plan = workload();

    // Warm up everything lazily initialized: thread-locals (metric
    // shard index, chunk pools), the slowlog env read, and both
    // executor paths.
    metrics().incr(Metric::RowsScanned);
    metrics().record_latency(1);
    let slowlog = SlowLog::new();
    let expect = drain(&db, &plan);
    assert!(expect > 0, "workload must produce rows");
    assert_eq!(drain_profiled(&db, &plan), expect);
    drain(&db, &plan);

    // 1a. Metric increments never allocate.
    let ((), bytes) = allocated_by(|| {
        for _ in 0..10_000 {
            metrics().incr(Metric::RowsScanned);
            metrics().add(Metric::RowsEmitted, 7);
        }
    });
    assert_eq!(bytes, 0, "metric increments allocated {bytes}B");

    // 1b. Latency recording never allocates.
    let ((), bytes) = allocated_by(|| {
        for n in 0..10_000u64 {
            metrics().record_latency(n * 131);
        }
    });
    assert_eq!(bytes, 0, "latency recording allocated {bytes}B");

    // 1c. A disabled recorder costs nothing: creation, spans (the
    // closure still runs), and finish are all allocation-free.
    let (acc, bytes) = allocated_by(|| {
        let mut acc = 0u64;
        for i in 0..10_000u64 {
            let mut rec = Recorder::disabled();
            acc += rec.span("parse", || i + 1);
            acc += rec.span("execute", || i * 2);
            assert!(rec.finish().is_none());
        }
        acc
    });
    assert!(acc > 0);
    assert_eq!(bytes, 0, "disabled recorder allocated {bytes}B");

    // 1d. The slowlog's hot check (one relaxed load) never allocates.
    let (armed, bytes) = allocated_by(|| {
        let mut armed = 0u32;
        for _ in 0..10_000 {
            armed += slowlog.enabled() as u32;
        }
        armed
    });
    assert_eq!(armed, 0, "slowlog must be off by default");
    assert_eq!(bytes, 0, "slowlog armed-check allocated {bytes}B");

    // 1e. The statement-tracking gate (one relaxed load, checked on
    // every session statement) never allocates while tracking is off —
    // the fingerprint/normalize machinery must only run when enabled.
    set_statements_enabled(false);
    clear_statements();
    let (on, bytes) = allocated_by(|| {
        let mut on = 0u32;
        for _ in 0..10_000 {
            on += statements_enabled() as u32;
        }
        on
    });
    assert_eq!(on, 0, "statement tracking must be off here");
    assert_eq!(bytes, 0, "statement-tracking gate allocated {bytes}B");

    // 1f. The plan verifier's disabled path (one relaxed load, checked
    // after every optimizer pass and at executor open) never allocates:
    // neither the bare gate nor the full `verify_plan_if_enabled` call.
    sema::set_verify(false);
    let (armed, bytes) = allocated_by(|| {
        let mut armed = 0u32;
        for _ in 0..10_000 {
            armed += sema::verify_enabled() as u32;
        }
        armed
    });
    assert_eq!(armed, 0, "verifier must be forced off here");
    assert_eq!(bytes, 0, "verifier gate allocated {bytes}B");
    let (ok, bytes) = allocated_by(|| {
        let mut ok = 0u32;
        for _ in 0..1_000 {
            ok += sema::verify_plan_if_enabled(&db, &plan, "overhead_test").is_ok() as u32;
        }
        ok
    });
    assert_eq!(ok, 1_000);
    assert_eq!(
        bytes, 0,
        "disabled verify_plan_if_enabled allocated {bytes}B"
    );
    sema::reset_verify();

    // 2. With obs disabled, repeated identical runs allocate byte-for-
    // byte identically: the disabled profile path contributes no
    // allocations of its own (pools are warm, hash-map growth is
    // load-factor-driven and input-deterministic).
    let (rows_a, bytes_a) = allocated_by(|| drain(&db, &plan));
    let (rows_b, bytes_b) = allocated_by(|| drain(&db, &plan));
    assert_eq!(rows_a, expect);
    assert_eq!(rows_b, expect);
    assert_eq!(
        bytes_a, bytes_b,
        "disabled runs allocated differently: {bytes_a}B vs {bytes_b}B"
    );

    // 2b. Session hot path with statement tracking disabled: the
    // capture wrapper is a single gate check, so repeated identical
    // SELECTs allocate byte-for-byte identically and nothing lands in
    // sys.statements. (Tracking was switched off in 1e.)
    {
        use beliefdb::core::ExternalSchema;
        use beliefdb::sql::Session;
        assert!(!statements_enabled());
        let mut session =
            Session::new(ExternalSchema::new().with_relation("R", &["x", "y"])).unwrap();
        session.execute("insert into R values ('a','b')").unwrap();
        let run = |s: &Session| s.query("select S.x from R as S").unwrap().rows().len();
        run(&session); // warm the plan cache, pools, and thread-locals
        run(&session);
        let (rows_a, bytes_a) = allocated_by(|| run(&session));
        let (rows_b, bytes_b) = allocated_by(|| run(&session));
        assert_eq!(rows_a, 1);
        assert_eq!(rows_b, 1);
        assert_eq!(
            bytes_a, bytes_b,
            "disabled statement tracking changed per-run allocation: {bytes_a}B vs {bytes_b}B"
        );
        assert!(
            statements_snapshot().is_empty(),
            "disabled tracking must record no statements"
        );
    }
    set_statements_enabled(true);

    // 3. Timing (release only — debug timings are noise): the disabled
    // path must not be paying for profiling. Profiling does strictly
    // more work, so disabled ≤ 2× profiled on medians.
    if cfg!(debug_assertions) {
        eprintln!("debug build: skipping the release timing bound");
        return;
    }
    const RUNS: usize = 9;
    let disabled = median_nanos(
        || {
            drain(&db, &plan);
        },
        RUNS,
    );
    let profiled = median_nanos(
        || {
            drain_profiled(&db, &plan);
        },
        RUNS,
    );
    assert!(
        Duration::from_nanos(disabled) <= 2 * Duration::from_nanos(profiled),
        "disabled path ({disabled}ns median) slower than 2x the profiled path ({profiled}ns)"
    );
}
