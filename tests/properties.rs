//! Property-based tests (proptest) over the core invariants:
//!
//! * Γ1/Γ2 consistency is preserved by any accepted insert sequence
//!   (Prop. 5, Lemma 11);
//! * the overriding union is idempotent and its explicit part wins;
//! * the canonical Kripke structure is deterministic (exactly one successor
//!   per (state, user) with `u ≠ last(w)`) and satisfies Thm. 17;
//! * the store's structural invariants (`E(w,u) = dss(w·u)`,
//!   `S(w) = dss(w[2,d])`, `D` depths) hold after arbitrary updates;
//! * `|R*|` respects the size bound of Sect. 5.4.

use beliefdb::core::closure::Closure;
use beliefdb::core::{
    Bdms, BeliefDatabase, BeliefPath, BeliefStatement, CanonicalKripke, ExternalSchema,
    GroundTuple, RelId, Sign, UserId,
};
use beliefdb::storage::{row, Value};
use proptest::prelude::*;

const MAX_USERS: u32 = 4;

/// A randomly generated statement over a 2-column schema with small key and
/// value domains (to force conflicts and overrides).
fn arb_statement() -> impl Strategy<Value = BeliefStatement> {
    let path = proptest::collection::vec(1..=MAX_USERS, 0..=3).prop_filter_map(
        "adjacent-distinct paths",
        |raw| {
            let users: Vec<UserId> = raw.into_iter().map(UserId).collect();
            BeliefPath::new(users).ok()
        },
    );
    let key = 0..6u8;
    let val = 0..4u8;
    let sign = prop_oneof![Just(Sign::Pos), Just(Sign::Neg)];
    (path, key, val, sign).prop_map(|(path, key, val, sign)| {
        let tuple = GroundTuple::new(
            RelId(0),
            row![format!("k{key}").as_str(), format!("v{val}").as_str()],
        );
        // Root-world statements are positive (grammar of Fig. 1).
        let sign = if path.is_root() { Sign::Pos } else { sign };
        BeliefStatement::new(path, tuple, sign)
    })
}

fn schema() -> ExternalSchema {
    ExternalSchema::new().with_relation("S", &["sid", "species"])
}

fn fresh_bdms() -> Bdms {
    let mut bdms = Bdms::new(schema()).unwrap();
    for i in 1..=MAX_USERS {
        bdms.add_user(format!("u{i}")).unwrap();
    }
    bdms
}

fn fresh_logical() -> BeliefDatabase {
    let mut db = BeliefDatabase::new(schema());
    for i in 1..=MAX_USERS {
        db.add_user(format!("u{i}")).unwrap();
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every explicit world stays consistent no matter what sequence of
    /// inserts is attempted (rejected ones must not leak partial state),
    /// and the store matches the logical database closed over the same
    /// accepted statements.
    #[test]
    fn consistency_preserved_and_store_matches_spec(
        stmts in proptest::collection::vec(arb_statement(), 1..60)
    ) {
        let mut bdms = fresh_bdms();
        let mut logical = fresh_logical();
        for stmt in &stmts {
            let store_outcome = bdms.insert_statement(stmt).unwrap();
            let logical_outcome = logical.insert(stmt.clone());
            // Acceptance decisions agree between Algorithm 4 and Def. 8.
            match logical_outcome {
                Ok(_) => prop_assert!(store_outcome.accepted(), "store rejected {stmt}"),
                Err(_) => prop_assert!(!store_outcome.accepted(), "store accepted {stmt}"),
            }
        }
        prop_assert!(logical.is_consistent());
        // Differential: every state's world equals the closure's.
        let mut cl = Closure::new(&logical);
        for state in logical.states() {
            let lhs = bdms.world(&state).unwrap();
            let rhs = cl.entailed_world(&state).clone();
            prop_assert_eq!(lhs, rhs, "world mismatch at {}", state);
        }
    }

    /// The overriding union (Fig. 9) is idempotent and explicit-preserving.
    #[test]
    fn override_union_laws(stmts in proptest::collection::vec(arb_statement(), 1..40)) {
        let mut logical = fresh_logical();
        for stmt in &stmts {
            let _ = logical.insert(stmt.clone());
        }
        let mut cl = Closure::new(&logical);
        for state in logical.states() {
            let explicit = logical.explicit_world(&state);
            let parent = cl.entailed_world(&state.drop_first()).clone();
            let once = explicit.override_with(&parent);
            let twice = once.override_with(&parent);
            prop_assert_eq!(&once, &twice, "override must be idempotent at {}", state);
            // every explicit tuple survives
            for (t, sign) in explicit.signed_tuples() {
                prop_assert!(once.contains(&t, sign), "explicit tuple lost at {}", state);
            }
            prop_assert!(once.is_consistent());
        }
    }

    /// Canonical Kripke: deterministic edges, correct targets, Thm. 17.
    #[test]
    fn canonical_structure_invariants(
        stmts in proptest::collection::vec(arb_statement(), 1..40)
    ) {
        let mut logical = fresh_logical();
        for stmt in &stmts {
            let _ = logical.insert(stmt.clone());
        }
        let k = CanonicalKripke::build(&logical);
        let users: Vec<UserId> = logical.users().collect();
        // Edge structure.
        let mut expected_edges = 0;
        for (sid, path, _) in k.states() {
            for &u in &users {
                if !path.can_push(u) {
                    continue;
                }
                expected_edges += 1;
                let target = k.successor(sid, u);
                // The target's path must be the deepest suffix state of w·u.
                let want = logical.dss(&path.push(u).unwrap());
                prop_assert_eq!(k.path_of(target), &want);
            }
        }
        prop_assert_eq!(k.edge_count(), expected_edges);
        // Thm. 17 on sampled statements.
        let mut cl = Closure::new(&logical);
        for stmt in stmts.iter().step_by(3) {
            prop_assert_eq!(cl.entails(stmt), k.entails(stmt), "on {}", stmt);
        }
    }

    /// Store structural invariants after arbitrary inserts AND deletes:
    /// every world's E edges and S backlink encode dss correctly, and D
    /// holds the right depths.
    #[test]
    fn store_structural_invariants(
        stmts in proptest::collection::vec(arb_statement(), 1..50),
        delete_every in 2..5usize,
    ) {
        let mut bdms = fresh_bdms();
        for stmt in &stmts {
            let _ = bdms.insert_statement(stmt).unwrap();
        }
        for stmt in stmts.iter().step_by(delete_every) {
            let _ = bdms.delete_statement(stmt).unwrap();
        }
        let store = bdms.internal();
        let dir = store.directory();
        let storage = store.database();
        let users: Vec<UserId> = bdms.users();

        // D: one row per world with the path depth.
        let d = storage.table("D").unwrap();
        prop_assert_eq!(d.len(), dir.len());
        for (wid, path) in dir.iter() {
            let row = d.get_by_key(&wid.value()).unwrap();
            prop_assert_eq!(row[1].as_int().unwrap() as usize, path.depth());
        }

        // E: exactly one edge per (world, pushable user), pointing at dss.
        let e = storage.table("E").unwrap();
        let mut edge_count = 0;
        for (wid, path) in dir.iter() {
            for &u in &users {
                let hits = e
                    .index_rows("by_src_user", &[wid.value(), u.value()])
                    .unwrap();
                if !path.can_push(u) {
                    prop_assert!(hits.is_empty(), "forbidden edge at {} user {}", path, u);
                    continue;
                }
                edge_count += 1;
                prop_assert_eq!(hits.len(), 1, "edge multiplicity at {} user {}", path, u);
                let target = beliefdb::core::Wid::from_value(&hits[0][2]).unwrap();
                prop_assert_eq!(dir.dss(&path.push(u).unwrap()), target);
            }
        }
        prop_assert_eq!(e.len(), edge_count);

        // S: backlink to dss(w[2,d]) for every non-root world.
        let s = storage.table("S").unwrap();
        prop_assert_eq!(s.len(), dir.len() - 1);
        for (wid, path) in dir.iter() {
            if path.is_root() {
                continue;
            }
            let row = s.get_by_key(&wid.value()).unwrap();
            let target = beliefdb::core::Wid::from_value(&row[1]).unwrap();
            prop_assert_eq!(dir.dss(&path.drop_first()), target);
        }
    }

    /// Size bound of Sect. 5.4: |V| = O(n·N) — concretely, each V table
    /// holds at most (explicit statements + inherited copies) ≤ n·N rows,
    /// and |E| ≤ m·N, |D| = N, |S| = N−1.
    #[test]
    fn size_bounds_hold(stmts in proptest::collection::vec(arb_statement(), 1..60)) {
        let mut bdms = fresh_bdms();
        let mut accepted = 0usize;
        for stmt in &stmts {
            if bdms.insert_statement(stmt).unwrap().changed() {
                accepted += 1;
            }
        }
        let stats = bdms.stats();
        let n_worlds = stats.worlds;
        let m = stats.users;
        let storage = bdms.storage();
        prop_assert!(storage.table("V__S").unwrap().len() <= accepted.max(1) * n_worlds);
        prop_assert!(storage.table("E").unwrap().len() <= m * n_worlds);
        prop_assert_eq!(storage.table("D").unwrap().len(), n_worlds);
        prop_assert_eq!(storage.table("S").unwrap().len(), n_worlds - 1);
        // Overall |R*| ≤ (n + m)·N + N + (N−1) + m + n  (V + E + D + S + U + R*)
        let bound = (accepted + m) * n_worlds + 2 * n_worlds + m + stmts.len();
        prop_assert!(
            stats.total_tuples <= bound,
            "total {} exceeds bound {}",
            stats.total_tuples,
            bound
        );
    }

    /// World-level entailment laws (Prop. 7): a world never entails both
    /// t+ and t− ... unless inconsistent, which accepted inserts prevent;
    /// and entails_neg is monotone over key-conflicts.
    #[test]
    fn entailment_laws(stmts in proptest::collection::vec(arb_statement(), 1..40)) {
        let mut logical = fresh_logical();
        for stmt in &stmts {
            let _ = logical.insert(stmt.clone());
        }
        let mut cl = Closure::new(&logical);
        for state in logical.states() {
            let world = cl.entailed_world(&state).clone();
            for (t, _) in world.signed_tuples() {
                prop_assert!(
                    !(world.entails_pos(&t) && world.entails_neg(&t)),
                    "world at {} entails {} both ways",
                    state,
                    t
                );
            }
        }
    }

    /// Lexer/parser round trip: any generated statement can be printed as a
    /// BeliefSQL insert and parsed back to the same effect.
    #[test]
    fn sql_insert_round_trip(stmt in arb_statement()) {
        let mut direct = fresh_bdms();
        let outcome_direct = direct.insert_statement(&stmt).unwrap();

        let mut session = beliefdb::sql::Session::new(schema()).unwrap();
        for i in 1..=MAX_USERS {
            session.add_user(format!("u{i}")).unwrap();
        }
        let mut sql = String::from("insert into ");
        for u in stmt.path.users() {
            sql.push_str(&format!("BELIEF 'u{u}' "));
        }
        if stmt.sign == Sign::Neg {
            sql.push_str("not ");
        }
        sql.push_str("S values (");
        let vals: Vec<String> = stmt
            .tuple
            .row
            .values()
            .iter()
            .map(|v| format!("'{v}'"))
            .collect();
        sql.push_str(&vals.join(","));
        sql.push(')');

        let result = session.execute(&sql).unwrap();
        prop_assert_eq!(
            result,
            beliefdb::sql::ExecResult::Inserted(outcome_direct)
        );
        prop_assert_eq!(
            session.bdms().to_belief_database().unwrap().statements(),
            direct.to_belief_database().unwrap().statements()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary interleavings of inserts and deletes: after the dust
    /// settles, every world in the store equals the closure of the explicit
    /// statements that remain — the strongest end-to-end invariant.
    #[test]
    fn random_insert_delete_interleavings_match_reclosure(
        ops in proptest::collection::vec((arb_statement(), proptest::bool::ANY), 1..50)
    ) {
        let mut bdms = fresh_bdms();
        let mut shadow: Vec<BeliefStatement> = Vec::new();
        for (stmt, is_delete) in &ops {
            if *is_delete {
                let _ = bdms.delete_statement(stmt).unwrap();
                shadow.retain(|s| s != stmt);
            } else if bdms.insert_statement(stmt).unwrap().accepted()
                && !shadow.contains(stmt)
            {
                shadow.push(stmt.clone());
            }
        }
        // Rebuild the logical database from the shadow and compare worlds.
        let mut logical = fresh_logical();
        for stmt in &shadow {
            logical.insert_unchecked(stmt.clone()).unwrap();
        }
        prop_assert!(logical.is_consistent(), "shadow went inconsistent");
        let mut cl = Closure::new(&logical);
        let dir_paths: Vec<BeliefPath> = bdms
            .internal()
            .directory()
            .iter()
            .map(|(_, p)| p.clone())
            .collect();
        for p in dir_paths {
            let store_world = bdms.world(&p).unwrap();
            let spec_world = cl.entailed_world(&p).clone();
            prop_assert_eq!(store_world, spec_world, "after {} ops, world {} diverged", ops.len(), p);
        }
        // And the explicit layer round-trips.
        let mut store_stmts = bdms.to_belief_database().unwrap().statements();
        let mut shadow_sorted = shadow.clone();
        store_stmts.sort();
        shadow_sorted.sort();
        prop_assert_eq!(store_stmts, shadow_sorted);
    }
}

/// Deterministic regression cases distilled from earlier failures and edge
/// cases worth pinning.
#[test]
fn pinned_edge_cases() {
    // Re-inserting after delete at a deep path.
    let mut bdms = fresh_bdms();
    let t = GroundTuple::new(RelId(0), row!["k0", "v0"]);
    let p = BeliefPath::new(vec![UserId(1), UserId(2), UserId(1)]).unwrap();
    assert!(bdms
        .insert_statement(&BeliefStatement::positive(p.clone(), t.clone()))
        .unwrap()
        .changed());
    assert!(bdms
        .delete_statement(&BeliefStatement::positive(p.clone(), t.clone()))
        .unwrap());
    assert!(bdms
        .insert_statement(&BeliefStatement::positive(p, t))
        .unwrap()
        .changed());

    // Value total order sanity for the slice index keys.
    assert!(Value::str("k1") < Value::str("k2"));
    assert_ne!(Value::Int(1), Value::str("1"));
}
