//! Randomized differential tests: the three implementations of the belief
//! semantics — logical closure (the executable spec, Def. 9–12), canonical
//! Kripke structure (Def. 16), and the materialized relational store
//! (Algorithms 2–4) — must agree on every world, every entailment, and
//! every query answer, on arbitrary generated workloads.

use beliefdb::core::bcq::dsl::*;
use beliefdb::core::bcq::{naive, Bcq};
use beliefdb::core::{
    closure::Closure, Bdms, BeliefPath, BeliefStatement, CanonicalKripke, Sign, UserId,
};
use beliefdb::gen::{generate_logical, DepthDist, GeneratorConfig, Participation};

/// Small-but-diverse workloads: every combination of user count, depth
/// distribution, and participation that keeps the naive evaluator fast.
fn workloads() -> Vec<GeneratorConfig> {
    let mut out = Vec::new();
    for (users, n) in [(2usize, 60usize), (3, 120), (5, 200)] {
        for depth in [
            DepthDist::uniform_012(),
            DepthDist::new(&[0.2, 0.4, 0.3, 0.1]),
        ] {
            for participation in [Participation::Uniform, Participation::paper_zipf()] {
                out.push(
                    GeneratorConfig::new(users, n)
                        .with_depth(depth.clone())
                        .with_participation(participation.clone())
                        .with_key_space(n / 6)
                        .with_negative_rate(0.3)
                        .with_seed(1234),
                );
            }
        }
    }
    out
}

#[test]
fn store_worlds_equal_closure_worlds() {
    for cfg in workloads() {
        let (db, _) = generate_logical(&cfg).unwrap();
        let bdms = Bdms::from_belief_database(&db).unwrap();
        let mut cl = Closure::new(&db);
        for state in db.states() {
            let materialized = bdms.world(&state).unwrap();
            let spec = cl.entailed_world(&state).clone();
            assert_eq!(
                materialized, spec,
                "world mismatch at {state} (m={}, n={})",
                cfg.users, cfg.annotations
            );
        }
    }
}

#[test]
fn kripke_walk_equals_closure_on_deep_paths() {
    for cfg in workloads().into_iter().take(6) {
        let (db, _) = generate_logical(&cfg).unwrap();
        let kripke = CanonicalKripke::build(&db);
        let mut cl = Closure::new(&db);
        let users: Vec<UserId> = db.users().collect();
        let tuples = db.mentioned_tuples();
        // All paths up to depth 3 (beyond any state depth, exercising the
        // back edges).
        let mut paths = vec![BeliefPath::root()];
        let mut frontier = vec![BeliefPath::root()];
        for _ in 0..3 {
            let mut next = Vec::new();
            for p in &frontier {
                for &u in &users {
                    if let Ok(q) = p.push(u) {
                        next.push(q);
                    }
                }
            }
            paths.extend(next.iter().cloned());
            frontier = next;
        }
        for p in &paths {
            for t in tuples.iter().step_by(7) {
                for sign in [Sign::Pos, Sign::Neg] {
                    let stmt = BeliefStatement::new(p.clone(), t.clone(), sign);
                    assert_eq!(
                        cl.entails(&stmt),
                        kripke.entails(&stmt),
                        "Thm. 17 violated on {stmt}"
                    );
                }
            }
        }
    }
}

#[test]
fn store_entailment_equals_closure_entailment() {
    for cfg in workloads().into_iter().take(6) {
        let (db, _) = generate_logical(&cfg).unwrap();
        let bdms = Bdms::from_belief_database(&db).unwrap();
        let mut cl = Closure::new(&db);
        let users: Vec<UserId> = db.users().collect();
        for t in db.mentioned_tuples().iter().step_by(5) {
            for &u in &users {
                for &v in &users {
                    if u == v {
                        continue;
                    }
                    let path = BeliefPath::new(vec![u, v]).unwrap();
                    for sign in [Sign::Pos, Sign::Neg] {
                        let stmt = BeliefStatement::new(path.clone(), t.clone(), sign);
                        assert_eq!(
                            bdms.entails(&stmt).unwrap(),
                            cl.entails(&stmt),
                            "store vs closure on {stmt}"
                        );
                    }
                }
            }
        }
    }
}

/// Query shapes covering the translation's branches: content (constant and
/// variable paths), conflicts (negative subgoal with variables), user
/// queries (variable only in a negative path), arithmetic predicates, and
/// catalog atoms.
fn query_shapes(schema: &beliefdb::core::ExternalSchema) -> Vec<Bcq> {
    let s = schema.relation_id("S").unwrap();
    let all = |p| -> Vec<beliefdb::core::bcq::QueryTerm> {
        let _ = &p;
        vec![qv("a"), qv("b"), qv("c"), qv("d"), qv("e")]
    };
    vec![
        // content at root
        Bcq::builder(vec![qv("a"), qv("c")])
            .positive(vec![], s, vec![qv("a"), qany(), qv("c"), qany(), qany()])
            .build(schema)
            .unwrap(),
        // content at depth 1, variable path
        Bcq::builder(vec![qv("x"), qv("a")])
            .positive(
                vec![pv("x")],
                s,
                vec![qv("a"), qany(), qany(), qany(), qany()],
            )
            .build(schema)
            .unwrap(),
        // depth-2 constant path
        Bcq::builder(vec![qv("a"), qv("c")])
            .positive(
                vec![pu(UserId(2)), pu(UserId(1))],
                s,
                vec![qv("a"), qany(), qv("c"), qany(), qany()],
            )
            .build(schema)
            .unwrap(),
        // conflict: same tuple believed at 2·1 and denied at 2
        Bcq::builder(vec![qv("a"), qv("c")])
            .positive(vec![pu(UserId(2)), pu(UserId(1))], s, all(0))
            .negative(vec![pu(UserId(2))], s, all(0))
            .build(schema)
            .unwrap(),
        // user query: who disagrees with user 1?
        Bcq::builder(vec![qv("x")])
            .negative(vec![pv("x")], s, all(0))
            .positive(vec![pu(UserId(1))], s, all(0))
            .build(schema)
            .unwrap(),
        // two variable paths + inequality predicate
        Bcq::builder(vec![qv("x"), qv("y"), qv("c"), qv("c2")])
            .positive(
                vec![pv("x")],
                s,
                vec![qv("a"), qany(), qv("c"), qany(), qany()],
            )
            .positive(
                vec![pv("y")],
                s,
                vec![qv("a"), qany(), qv("c2"), qany(), qany()],
            )
            .pred(qv("c"), beliefdb::storage::CmpOp::Ne, qv("c2"))
            .build(schema)
            .unwrap(),
        // catalog atom binding the path variable
        Bcq::builder(vec![qv("n"), qv("a")])
            .user(qv("x"), qv("n"))
            .positive(
                vec![pv("x")],
                s,
                vec![qv("a"), qany(), qany(), qany(), qany()],
            )
            .build(schema)
            .unwrap(),
    ]
}

#[test]
fn translated_queries_equal_naive_queries() {
    for cfg in workloads() {
        let (db, _) = generate_logical(&cfg).unwrap();
        let bdms = Bdms::from_belief_database(&db).unwrap();
        for (i, q) in query_shapes(db.schema()).iter().enumerate() {
            let translated = bdms.query(q).unwrap();
            let mut reference = naive::evaluate(&db, q).unwrap();
            reference.sort();
            assert_eq!(
                translated, reference,
                "query #{i} differs (m={}, n={}): {q}",
                cfg.users, cfg.annotations
            );
        }
    }
}

#[test]
fn deletes_agree_with_reclosure() {
    // Delete a third of the statements (every 3rd) from the store and from
    // the logical database; worlds must still agree — the incremental
    // delete path equals re-closing D \ {deleted}.
    for cfg in workloads().into_iter().take(4) {
        let (mut db, _) = generate_logical(&cfg).unwrap();
        let mut bdms = Bdms::from_belief_database(&db).unwrap();
        let stmts = db.statements();
        for stmt in stmts.iter().step_by(3) {
            assert!(
                bdms.delete_statement(stmt).unwrap(),
                "store delete of {stmt}"
            );
            assert!(db.remove(stmt), "logical delete of {stmt}");
        }
        let mut cl = Closure::new(&db);
        // Worlds the store still knows about are a superset of the states
        // of the shrunken D; check over the *store's* directory so stale
        // implicit content would be caught.
        let dir_paths: Vec<BeliefPath> = bdms
            .internal()
            .directory()
            .iter()
            .map(|(_, p)| p.clone())
            .collect();
        for p in dir_paths {
            assert_eq!(
                bdms.world(&p).unwrap(),
                cl.entailed_world(&p).clone(),
                "post-delete world mismatch at {p}"
            );
        }
    }
}

#[test]
fn reinserting_deleted_statements_restores_the_database() {
    let cfg = GeneratorConfig::new(4, 150).with_seed(77);
    let (db, _) = generate_logical(&cfg).unwrap();
    let mut bdms = Bdms::from_belief_database(&db).unwrap();
    let stmts = db.statements();
    // Delete half, then re-insert in reverse order.
    for stmt in stmts.iter().step_by(2) {
        assert!(bdms.delete_statement(stmt).unwrap());
    }
    for stmt in stmts
        .iter()
        .step_by(2)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
    {
        assert!(bdms.insert_statement(stmt).unwrap().accepted());
    }
    let roundtrip = bdms.to_belief_database().unwrap();
    assert_eq!(roundtrip.statements(), db.statements());
    // And the worlds match the spec again.
    let mut cl = Closure::new(&db);
    for p in db.states() {
        assert_eq!(bdms.world(&p).unwrap(), cl.entailed_world(&p).clone());
    }
}
