use beliefdb::storage::{row, Database, Expr, Plan, TableSchema};

#[test]
fn reorder_with_fallible_residual() {
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::keyless("T", &["a"]))
        .unwrap();
    t.insert(row![1]).unwrap();
    let u = db
        .create_table(TableSchema::keyless("U", &["b"]))
        .unwrap();
    u.insert(row![2]).unwrap();
    // Residual Expr::Col(0) is not boolean-shaped.
    let plan = Plan::scan("T").join_where(Plan::scan("U"), vec![], Expr::Col(0));
    let opts = beliefdb::storage::OptimizerOptions {
        fold: false,
        pushdown: false,
        simplify: false,
        reorder_joins: true,
        prune: false,
    };
    let _ = beliefdb::storage::optimize_with(&db, plan, &opts);
}
