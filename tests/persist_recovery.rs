//! Fault-injection suite for the durability subsystem.
//!
//! The contract under test: a durable BDMS reopened after a crash must
//! equal the pre-crash store **up to the last durable statement** —
//! compared via the canonical logical form (`to_belief_database`), the
//! paper's `SizeStats` (which see wids/tids/worlds, so side effects of
//! rejected inserts count too), and a query answer. Faults injected:
//!
//! * **torn tail** — the final WAL frame truncated at *every* byte
//!   offset (a crash mid-`write`);
//! * **bit flips** — one byte flipped per frame, in the payload and in
//!   the frame header (at-rest corruption; recovery keeps the valid
//!   prefix and discards the rest);
//! * **checkpoint interleaving** — a checkpoint taken mid-history with
//!   appends continuing after it, then crashes in the post-checkpoint
//!   segment; recovery must stitch snapshot + tail;
//! * **snapshot loss** — the only snapshot corrupted: open must fail
//!   cleanly, not panic or half-recover.

use beliefdb::core::prelude::*;
use beliefdb::storage::persist::{frame_spans, list_segments};
use beliefdb::storage::row;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "beliefdb-recovery-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Copy a flat durable directory (WAL segments + snapshots).
fn copy_dir(src: &Path, dst: &Path) {
    if dst.exists() {
        std::fs::remove_dir_all(dst).unwrap();
    }
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

fn schema() -> ExternalSchema {
    ExternalSchema::new()
        .with_relation("Sightings", &["sid", "species"])
        .with_relation("Comments", &["cid", "comment", "sid"])
}

/// One logical operation = exactly one WAL record, so the op at index
/// `k` lands at LSN `k` and "recovered up to frame k" means "ops[..k]
/// applied".
#[derive(Debug, Clone)]
enum Op {
    User(&'static str),
    Insert(BeliefStatement),
    Delete(BeliefStatement),
    Update(
        BeliefPath,
        RelId,
        beliefdb::storage::Row,
        beliefdb::storage::Row,
    ),
}

fn apply(bdms: &mut Bdms, op: &Op) {
    match op {
        Op::User(name) => {
            bdms.add_user(name.to_string()).unwrap();
        }
        Op::Insert(stmt) => {
            bdms.insert_statement(stmt).unwrap();
        }
        Op::Delete(stmt) => {
            bdms.delete_statement(stmt).unwrap();
        }
        Op::Update(path, rel, old, new) => {
            bdms.update(path.clone(), *rel, old.clone(), new.clone())
                .unwrap();
        }
    }
}

/// The reference history: users, positive/negative inserts at nested
/// paths, a **rejected** insert (whose world/tid side effects must
/// still be recovered), a delete, and an update.
fn history() -> Vec<Op> {
    let s = RelId(0);
    let c = RelId(1);
    let p = |users: &[u32]| {
        BeliefPath::new(users.iter().map(|&u| UserId(u)).collect::<Vec<_>>()).unwrap()
    };
    vec![
        Op::User("Alice"),
        Op::User("Bob"),
        Op::Insert(BeliefStatement::positive(
            p(&[1]),
            GroundTuple::new(s, row!["s1", "crow"]),
        )),
        Op::Insert(BeliefStatement::positive(
            p(&[2]),
            GroundTuple::new(s, row!["s1", "raven"]),
        )),
        Op::User("Carol"),
        Op::Insert(BeliefStatement::negative(
            p(&[3, 1]),
            GroundTuple::new(s, row!["s1", "crow"]),
        )),
        // Rejected: conflicts with Bob's explicit raven. Still allocates
        // the owl's R* row, which recovery must reproduce for SizeStats.
        Op::Insert(BeliefStatement::positive(
            p(&[2]),
            GroundTuple::new(s, row!["s1", "owl"]),
        )),
        Op::Insert(BeliefStatement::positive(
            BeliefPath::root(),
            GroundTuple::new(c, row!["c1", "found feathers", "s1"]),
        )),
        Op::Delete(BeliefStatement::positive(
            p(&[1]),
            GroundTuple::new(s, row!["s1", "crow"]),
        )),
        Op::Insert(BeliefStatement::positive(
            p(&[1, 2]),
            GroundTuple::new(s, row!["s2", "heron"]),
        )),
        Op::Update(p(&[1, 2]), s, row!["s2", "heron"], row!["s2", "egret"]),
        Op::Insert(BeliefStatement::negative(
            p(&[2, 1, 2]),
            GroundTuple::new(s, row!["s2", "egret"]),
        )),
    ]
}

/// The expected in-memory store after the first `k` ops.
fn expected_after(k: usize) -> Bdms {
    let mut bdms = Bdms::new(schema()).unwrap();
    for op in &history()[..k] {
        apply(&mut bdms, op);
    }
    bdms
}

/// Recovered state must match the reference exactly: canonical logical
/// form, `SizeStats` (worlds/tids included), and a query answer.
fn assert_same(recovered: &Bdms, expected: &Bdms, ctx: &str) {
    assert_eq!(
        recovered.stats(),
        expected.stats(),
        "SizeStats diverged: {ctx}"
    );
    let got = recovered.to_belief_database().unwrap();
    let want = expected.to_belief_database().unwrap();
    assert_eq!(
        got.statements(),
        want.statements(),
        "statements diverged: {ctx}"
    );
    assert_eq!(got.user_count(), want.user_count(), "users diverged: {ctx}");
    assert_eq!(
        recovered.internal().directory().iter().collect::<Vec<_>>(),
        expected.internal().directory().iter().collect::<Vec<_>>(),
        "world directory diverged: {ctx}"
    );
    if expected.users().len() >= 2 {
        use beliefdb::core::bcq::dsl::*;
        let s = expected.schema().relation_id("Sightings").unwrap();
        let q = Bcq::builder(vec![qv("sid"), qv("sp")])
            .positive(vec![pu(UserId(2))], s, vec![qv("sid"), qv("sp")])
            .build(expected.schema())
            .unwrap();
        assert_eq!(
            recovered.query(&q).unwrap(),
            expected.query(&q).unwrap(),
            "query answers diverged: {ctx}"
        );
    }
}

/// Build the full durable history in `dir` (no explicit checkpoint
/// unless `checkpoint_at` is given; the threshold is high enough that
/// no auto-checkpoint interferes).
fn build(dir: &Path, checkpoint_at: Option<usize>) -> Bdms {
    let mut bdms = Bdms::create(dir, schema()).unwrap();
    for (i, op) in history().iter().enumerate() {
        if checkpoint_at == Some(i) {
            bdms.checkpoint().unwrap();
        }
        apply(&mut bdms, op);
    }
    bdms
}

#[test]
fn clean_reopen_reproduces_everything() {
    let dir = temp_dir("clean");
    let built = build(&dir, None);
    let reopened = Bdms::open(&dir).unwrap();
    assert_same(&reopened, &built, "clean reopen");
    assert_same(
        &reopened,
        &expected_after(history().len()),
        "clean vs reference",
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_tail_truncated_at_every_byte_offset() {
    let dir = temp_dir("torn-src");
    build(&dir, None);
    let segments = list_segments(&dir).unwrap();
    assert_eq!(segments.len(), 1, "history fits one segment");
    let seg_name = segments[0].1.file_name().unwrap().to_owned();
    let spans = frame_spans(&segments[0].1).unwrap();
    assert_eq!(spans.len(), history().len());
    let full = std::fs::read(&segments[0].1).unwrap();
    let (last_off, last_len) = *spans.last().unwrap();

    let scratch = temp_dir("torn-cut");
    let expected = expected_after(history().len() - 1);
    for cut in last_off..last_off + last_len {
        copy_dir(&dir, &scratch);
        std::fs::write(scratch.join(&seg_name), &full[..cut as usize]).unwrap();
        let recovered = Bdms::open(&scratch).unwrap();
        assert_same(
            &recovered,
            &expected,
            &format!("torn tail cut at byte {cut}"),
        );
    }
    // A crash can also tear several frames off: cutting mid-frame k
    // must recover exactly ops[..k].
    for k in [4usize, 7, 9] {
        let (off, len) = spans[k];
        let cut = off + len / 2;
        copy_dir(&dir, &scratch);
        std::fs::write(scratch.join(&seg_name), &full[..cut as usize]).unwrap();
        let recovered = Bdms::open(&scratch).unwrap();
        assert_same(
            &recovered,
            &expected_after(k),
            &format!("tail torn mid-frame {k}"),
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn one_flipped_byte_per_frame_keeps_the_valid_prefix() {
    let dir = temp_dir("flip-src");
    build(&dir, None);
    let segments = list_segments(&dir).unwrap();
    let seg_name = segments[0].1.file_name().unwrap().to_owned();
    let spans = frame_spans(&segments[0].1).unwrap();
    let full = std::fs::read(&segments[0].1).unwrap();

    let scratch = temp_dir("flip-cut");
    for (k, &(off, len)) in spans.iter().enumerate() {
        // Flip one byte in the payload and, separately, in the header.
        for flip_at in [off + len - 1, off + 1] {
            let mut bytes = full.clone();
            bytes[flip_at as usize] ^= 0x20;
            copy_dir(&dir, &scratch);
            std::fs::write(scratch.join(&seg_name), &bytes).unwrap();
            let recovered = Bdms::open(&scratch).unwrap();
            assert_same(
                &recovered,
                &expected_after(k),
                &format!("byte {flip_at} flipped in frame {k}"),
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn checkpoint_with_concurrent_appends_recovers_snapshot_plus_tail() {
    let n = history().len();
    let mid = 6;
    let dir = temp_dir("ckpt-src");
    let built = build(&dir, Some(mid));

    // Clean reopen first: snapshot + whole tail.
    let reopened = Bdms::open(&dir).unwrap();
    assert_same(&reopened, &built, "checkpoint + clean tail");

    // The post-checkpoint appends live in the segment starting at the
    // high-water mark; crash inside each of its frames in turn.
    let hwm = built.wal_stats().unwrap().snapshot_hwm;
    assert_eq!(hwm, mid as u64);
    let segments = list_segments(&dir).unwrap();
    let (tail_lsn, tail_path) = segments.last().unwrap().clone();
    assert_eq!(tail_lsn, hwm);
    let seg_name = tail_path.file_name().unwrap().to_owned();
    let spans = frame_spans(&tail_path).unwrap();
    assert_eq!(spans.len(), n - mid);
    let full = std::fs::read(&tail_path).unwrap();

    let scratch = temp_dir("ckpt-cut");
    for (j, &(off, len)) in spans.iter().enumerate() {
        let k = mid + j; // ops[..k] durable once frame j is torn
        for cut in [off, off + 1, off + len - 1] {
            copy_dir(&dir, &scratch);
            std::fs::write(scratch.join(&seg_name), &full[..cut as usize]).unwrap();
            let recovered = Bdms::open(&scratch).unwrap();
            assert_same(
                &recovered,
                &expected_after(k),
                &format!("checkpoint at {mid}, tail cut at byte {cut} (frame {j})"),
            );
        }
    }
    // Checkpoint directly after reopening a truncated tail still works
    // and the next open sees the checkpointed state.
    copy_dir(&dir, &scratch);
    let (off, _) = spans[1];
    std::fs::write(scratch.join(&seg_name), &full[..(off + 2) as usize]).unwrap();
    let mut recovered = Bdms::open(&scratch).unwrap();
    recovered.checkpoint().unwrap();
    let after = Bdms::open(&scratch).unwrap();
    assert_same(
        &after,
        &expected_after(mid + 1),
        "checkpoint after torn recovery",
    );
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn corrupt_only_snapshot_fails_cleanly() {
    let dir = temp_dir("snaploss");
    let mut bdms = Bdms::create(&dir, schema()).unwrap();
    bdms.add_user("Alice").unwrap();
    bdms.checkpoint().unwrap();
    drop(bdms);
    // Only one snapshot remains (checkpoint pruned the initial one);
    // corrupt it: recovery must error, not panic or invent a schema.
    let snap = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "snap"))
        .unwrap();
    let mut bytes = std::fs::read(&snap).unwrap();
    let n = bytes.len();
    bytes[n - 1] ^= 1;
    std::fs::write(&snap, &bytes).unwrap();
    assert!(Bdms::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn sync_on_commit_group_commits_and_round_trips() {
    use beliefdb::core::PersistOptions;
    let dir = temp_dir("sync-commit");
    let opts = PersistOptions {
        segment_limit: 1 << 20,
        checkpoint_threshold: u64::MAX,
        sync_on_commit: true,
    };
    let mut bdms = Bdms::create_with_options(&dir, schema(), opts).unwrap();
    let alice = bdms.add_user("Alice").unwrap();
    let s = bdms.schema().relation_id("Sightings").unwrap();
    for i in 0..5i64 {
        bdms.insert(
            BeliefPath::user(alice),
            s,
            row![format!("s{i}").as_str(), "crow"],
            Sign::Pos,
        )
        .unwrap();
    }
    // Group commit: one fsync per mutation batch (6 mutations here);
    // the default path issues none outside checkpoints/rotations.
    let stats = bdms.wal_stats().unwrap();
    assert!(stats.syncs >= 6, "{stats:?}");
    let want = bdms.stats();
    drop(bdms);
    let reopened = Bdms::open_with_options(&dir, opts).unwrap();
    assert_eq!(reopened.stats(), want);
    drop(reopened);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn auto_checkpoint_kicks_in_and_bounds_the_log() {
    use beliefdb::core::PersistOptions;
    let dir = temp_dir("auto");
    let opts = PersistOptions {
        segment_limit: 512,
        checkpoint_threshold: 2048,
        sync_on_commit: false,
    };
    let mut bdms = Bdms::create_with_options(&dir, schema(), opts).unwrap();
    bdms.add_user("Alice").unwrap();
    let s = bdms.schema().relation_id("Sightings").unwrap();
    for i in 0..200 {
        bdms.insert(
            BeliefPath::user(UserId(1)),
            s,
            row![format!("s{i}").as_str(), "crow"],
            Sign::Pos,
        )
        .unwrap();
    }
    let stats = bdms.wal_stats().unwrap();
    assert!(stats.checkpoints > 0, "auto-checkpoint never fired");
    assert!(
        stats.wal_bytes <= 4096,
        "live log kept growing: {} bytes",
        stats.wal_bytes
    );
    // Old segments were deleted along the way.
    assert!(list_segments(&dir).unwrap().len() <= 2);
    let reopened = Bdms::open_with_options(&dir, opts).unwrap();
    assert_same(&reopened, &bdms, "auto-checkpointed history");
    std::fs::remove_dir_all(&dir).unwrap();
}
