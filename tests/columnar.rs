//! Differential and boundary coverage for the columnar executor path:
//! scans emit zero-copy windows over the table's column cache
//! (unboxed `i64`/`bool` vectors, dictionary-encoded strings, validity
//! bitmaps) and the compiled filter kernels run directly on those
//! columns through a selection vector. Every answer must be
//! byte-for-byte what the row-layout chunk executor and the
//! row-at-a-time executor produce — across fuzzed plans, spill
//! budgets, batch-boundary table sizes, all-NULL columns, dictionaries
//! past the u16 code range, and selection-vector/validity interaction.

mod common;

use beliefdb::storage::{
    execute_materialized, execute_rows, row, ChunkLayout, CmpOp, Database, Executor, Expr, Plan,
    Row, SpillOptions, TableSchema, Value,
};
use common::{contains_order_sensitive_limit, gen_plan, plan_db, sorted};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Collect a plan's rows through a specific chunk layout.
fn run_layout(db: &Database, plan: &Plan, layout: ChunkLayout) -> Vec<Row> {
    Executor::new(db)
        .layout(layout)
        .open_chunks(plan)
        .unwrap()
        .collect_rows()
        .unwrap()
}

/// Collect through the columnar executor under a spill budget.
fn run_budgeted(db: &Database, plan: &Plan, budget: usize, dir: &std::path::Path) -> Vec<Row> {
    Executor::with_spill(db, SpillOptions::with_budget(budget).in_dir(dir))
        .open_chunks(plan)
        .unwrap()
        .collect_rows()
        .unwrap()
}

// ---------------------------------------------------------------------------
// Fuzzed three-way differential, with and without spill budgets
// ---------------------------------------------------------------------------

#[test]
fn fuzzed_plans_agree_across_layouts_and_budgets() {
    // Arm the plan verifier: every optimized plan in this suite is
    // invariant-checked at every rewrite stage and at executor open.
    beliefdb::storage::sema::set_verify(true);
    let db = plan_db();
    let dir = std::env::temp_dir().join(format!("beliefdb-columnar-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut rng = StdRng::seed_from_u64(0xC01A);
    let mut nontrivial = 0usize;
    for case in 0..250 {
        let (plan, _) = gen_plan(&mut rng, 3);
        if contains_order_sensitive_limit(&plan) {
            continue;
        }
        let Ok(reference) = execute_materialized(&db, &plan) else {
            continue;
        };
        if !reference.is_empty() {
            nontrivial += 1;
        }
        let reference = sorted(reference);
        let columnar = run_layout(&db, &plan, ChunkLayout::Columnar);
        assert_eq!(
            reference,
            sorted(columnar),
            "case {case}: columnar layout diverged on {plan:?}"
        );
        let rows_layout = run_layout(&db, &plan, ChunkLayout::Rows);
        assert_eq!(
            reference,
            sorted(rows_layout),
            "case {case}: row layout diverged on {plan:?}"
        );
        let row_wise = execute_rows(&db, &plan).expect("row-at-a-time failed");
        assert_eq!(
            reference,
            sorted(row_wise),
            "case {case}: row-at-a-time diverged on {plan:?}"
        );
        // Under a tiny budget every materialization point spills: the
        // columnar run-file block encoding round-trips the same rows.
        let spilled = run_budgeted(&db, &plan, 4096, &dir);
        assert_eq!(
            reference,
            sorted(spilled),
            "case {case}: budgeted run diverged on {plan:?}"
        );
    }
    assert!(
        nontrivial > 40,
        "only {nontrivial} non-empty cases — generator too weak"
    );
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "spill files left behind"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Batch boundaries on real tables (Values literals never go columnar)
// ---------------------------------------------------------------------------

/// One short of a batch, exactly one, one past, two, and a single row.
const BOUNDARY_SIZES: [usize; 5] = [1, 1023, 1024, 1025, 2048];

/// A table mixing every column class the transpose distinguishes:
/// unboxed ints, dictionary strings, a nullable int (validity bitmap),
/// and a column of nothing but NULLs.
fn boundary_table(db: &mut Database, name: &str, n: usize) {
    let t = db
        .create_table(TableSchema::keyless(name, &["i", "s", "ni", "nul"]))
        .unwrap();
    for k in 0..n as i64 {
        let ni = if k % 3 == 0 {
            Value::Null
        } else {
            Value::int(k)
        };
        t.insert(Row::new(vec![
            Value::int(k % 700),
            Value::str(if k % 3 == 0 { "+" } else { "-" }),
            ni,
            Value::Null,
        ]))
        .unwrap();
    }
}

#[test]
fn batch_boundary_scans_agree_exactly_across_layouts() {
    let mut db = Database::new();
    for n in BOUNDARY_SIZES {
        boundary_table(&mut db, &format!("T{n}"), n);
    }
    for n in BOUNDARY_SIZES {
        let scan = Plan::scan(format!("T{n}"));
        let plans = vec![
            scan.clone(),
            // Compiled int-equality kernel over the unboxed column.
            scan.clone().select(Expr::col_eq_lit(0, 3i64)),
            // String kernels over the dictionary column.
            scan.clone().select(Expr::col_eq_lit(1, "+")),
            scan.clone()
                .select(Expr::cmp(CmpOp::Lt, Expr::Col(1), Expr::lit("-"))),
            // Range over the nullable int: NULL sorts below every int,
            // so invalid slots pass `<` and fail `>=` — both layouts
            // must agree on that.
            scan.clone()
                .select(Expr::cmp(CmpOp::Lt, Expr::Col(2), Expr::lit(500i64))),
            scan.clone()
                .select(Expr::cmp(CmpOp::Ge, Expr::Col(2), Expr::lit(500i64))),
            // All-NULL column: equality never matches, `<` always does.
            scan.clone().select(Expr::col_eq_lit(3, 1i64)),
            scan.clone()
                .select(Expr::cmp(CmpOp::Lt, Expr::Col(3), Expr::lit(1i64))),
            // Fused AND chain: the first pass narrows the selection
            // vector, the second tests validity through it.
            scan.clone().select(Expr::and(vec![
                Expr::col_eq_lit(1, "+"),
                Expr::cmp(CmpOp::Lt, Expr::Col(2), Expr::lit(900i64)),
            ])),
            // Projection gathers from the columns; limits straddle the
            // window edges.
            scan.clone().project_cols(&[2, 0]),
            scan.clone().limit(n.saturating_sub(1)),
            scan.clone().limit(n + 17),
            scan.clone().distinct(),
        ];
        for plan in &plans {
            let columnar = run_layout(&db, plan, ChunkLayout::Columnar);
            let rows_layout = run_layout(&db, plan, ChunkLayout::Rows);
            // Scans and filters preserve heap order in both layouts, so
            // the comparison is exact, not just multiset.
            assert_eq!(columnar, rows_layout, "n={n}: layouts diverged on {plan:?}");
            let materialized = execute_materialized(&db, plan).expect("materializing failed");
            assert_eq!(
                sorted(columnar),
                sorted(materialized),
                "n={n}: columnar vs materialized diverged on {plan:?}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Dictionary overflow: more distinct strings than u16 codes
// ---------------------------------------------------------------------------

#[test]
fn dictionary_past_u16_code_range_filters_correctly() {
    // 70 000 distinct strings force in-memory dictionary codes past
    // 65 535; the kernels binary-search the sorted dictionary, and the
    // spill block format stays safe because a block's private
    // dictionary never exceeds its 128 rows.
    const N: i64 = 70_000;
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::keyless("Big", &["s", "k"]))
        .unwrap();
    for i in 0..N {
        t.insert(row![format!("s{:06}", i).as_str(), i]).unwrap();
    }
    let probe = format!("s{:06}", 66_000);
    let eq = Plan::scan("Big").select(Expr::col_eq_lit(0, probe.as_str()));
    let lt = Plan::scan("Big").select(Expr::cmp(
        CmpOp::Lt,
        Expr::Col(0),
        Expr::lit(format!("s{:06}", 66_000).as_str()),
    ));
    for plan in [&eq, &lt] {
        let columnar = run_layout(&db, plan, ChunkLayout::Columnar);
        let rows_layout = run_layout(&db, plan, ChunkLayout::Rows);
        assert_eq!(columnar, rows_layout, "layouts diverged on {plan:?}");
    }
    assert_eq!(run_layout(&db, &eq, ChunkLayout::Columnar).len(), 1);
    assert_eq!(
        run_layout(&db, &lt, ChunkLayout::Columnar).len(),
        66_000,
        "lt over the wide dictionary miscounted"
    );

    // And through the spill path: sorting the wide-dictionary table
    // under a small budget round-trips every string through the
    // columnar run-file blocks.
    let dir = std::env::temp_dir().join(format!("beliefdb-dict-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sort = Plan::scan("Big").sort(vec![1]);
    let spilled = run_budgeted(&db, &sort, 64 * 1024, &dir);
    let unspilled = run_layout(&db, &sort, ChunkLayout::Columnar);
    assert_eq!(spilled, unspilled, "spilled sort changed the answer");
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "spill files left behind"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Selection vector × validity interaction, pinned small
// ---------------------------------------------------------------------------

#[test]
fn selection_vector_respects_validity_under_and_chains() {
    // Hand-built rows where the surviving selection after pass 1 lands
    // exactly on a mix of valid and NULL slots for pass 2.
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::keyless("M", &["a", "b"]))
        .unwrap();
    let rows = [
        (1i64, Value::int(10)),
        (1, Value::Null),
        (2, Value::int(10)),
        (1, Value::int(99)),
        (1, Value::Null),
        (1, Value::int(10)),
    ];
    for (a, b) in rows {
        t.insert(Row::new(vec![Value::int(a), b])).unwrap();
    }
    // a = 1 AND b = 10: NULL b slots survive pass 1 but must fail the
    // equality pass.
    let eq = Plan::scan("M").select(Expr::and(vec![
        Expr::col_eq_lit(0, 1i64),
        Expr::col_eq_lit(1, 10i64),
    ]));
    assert_eq!(run_layout(&db, &eq, ChunkLayout::Columnar).len(), 2);
    // a = 1 AND b < 50: NULL sorts below every int, so the NULL slots
    // *pass* the range check.
    let lt = Plan::scan("M").select(Expr::and(vec![
        Expr::col_eq_lit(0, 1i64),
        Expr::cmp(CmpOp::Lt, Expr::Col(1), Expr::lit(50i64)),
    ]));
    assert_eq!(run_layout(&db, &lt, ChunkLayout::Columnar).len(), 4);
    for plan in [&eq, &lt] {
        assert_eq!(
            run_layout(&db, plan, ChunkLayout::Columnar),
            run_layout(&db, plan, ChunkLayout::Rows),
            "layouts diverged on {plan:?}"
        );
        assert_eq!(
            sorted(run_layout(&db, plan, ChunkLayout::Columnar)),
            sorted(execute_materialized(&db, plan).unwrap()),
        );
    }
}
