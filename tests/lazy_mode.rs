//! Differential tests for the lazy default-rule mode (the Sect. 6.3
//! extension): `LazyBdms` must answer exactly like the eager `Bdms` on
//! entailments and queries, while storing asymptotically less.

use beliefdb::core::bcq::dsl::*;
use beliefdb::core::bcq::Bcq;
use beliefdb::core::{Bdms, BeliefPath, BeliefStatement, LazyBdms, Sign, UserId};
use beliefdb::gen::{generate_logical, CandidateStream, DepthDist, GeneratorConfig};

fn configs() -> Vec<GeneratorConfig> {
    vec![
        GeneratorConfig::new(3, 120).with_seed(21),
        GeneratorConfig::new(5, 200)
            .with_depth(DepthDist::new(&[0.1, 0.5, 0.3, 0.1]))
            .with_negative_rate(0.35)
            .with_seed(22),
        GeneratorConfig::new(8, 150)
            .with_participation(beliefdb::gen::Participation::paper_zipf())
            .with_seed(23),
    ]
}

#[test]
fn lazy_and_eager_agree_on_entailments() {
    for cfg in configs() {
        let (db, _) = generate_logical(&cfg).unwrap();
        let eager = Bdms::from_belief_database(&db).unwrap();
        let mut lazy = LazyBdms::from_belief_database(db.clone());
        let users: Vec<UserId> = db.users().collect();
        for t in db.mentioned_tuples().iter().step_by(4) {
            for &u in &users {
                for &v in &users {
                    if u == v {
                        continue;
                    }
                    for sign in [Sign::Pos, Sign::Neg] {
                        let stmt = BeliefStatement::new(
                            BeliefPath::new(vec![u, v]).unwrap(),
                            t.clone(),
                            sign,
                        );
                        assert_eq!(
                            lazy.entails(&stmt),
                            eager.entails(&stmt).unwrap(),
                            "lazy vs eager on {stmt}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn lazy_and_eager_agree_on_queries() {
    for cfg in configs() {
        let (db, _) = generate_logical(&cfg).unwrap();
        let eager = Bdms::from_belief_database(&db).unwrap();
        let lazy = LazyBdms::from_belief_database(db.clone());
        let s = db.schema().relation_id("S").unwrap();
        let all = vec![qv("a"), qv("b"), qv("c"), qv("d"), qv("e")];
        let queries = [
            Bcq::builder(vec![qv("x"), qv("a")])
                .positive(
                    vec![pv("x")],
                    s,
                    vec![qv("a"), qany(), qany(), qany(), qany()],
                )
                .build(db.schema())
                .unwrap(),
            Bcq::builder(vec![qv("x")])
                .negative(vec![pv("x")], s, all.clone())
                .positive(vec![pu(UserId(1))], s, all.clone())
                .build(db.schema())
                .unwrap(),
            Bcq::builder(vec![qv("a"), qv("c")])
                .positive(vec![pu(UserId(2)), pu(UserId(1))], s, all)
                .build(db.schema())
                .unwrap(),
        ];
        for q in &queries {
            assert_eq!(lazy.query(q).unwrap(), eager.query(q).unwrap(), "on {q}");
        }
    }
}

#[test]
fn lazy_and_eager_accept_the_same_statements() {
    // Feed the identical raw candidate stream (including inconsistent
    // candidates) to both; every outcome must match.
    let cfg = GeneratorConfig::new(4, 200)
        .with_seed(31)
        .with_negative_rate(0.4);
    let mut stream = CandidateStream::new(&cfg);
    let mut eager = Bdms::new(beliefdb::gen::experiment_schema()).unwrap();
    let mut lazy = LazyBdms::new(beliefdb::gen::experiment_schema());
    for i in 1..=cfg.users {
        eager.add_user(format!("u{i}")).unwrap();
        lazy.add_user(format!("u{i}")).unwrap();
    }
    for _ in 0..500 {
        let stmt = stream.next_candidate();
        let a = eager.insert_statement(&stmt).unwrap();
        let b = lazy.insert_statement(&stmt).unwrap();
        // The eager store distinguishes MadeExplicit (implicit tuple
        // promoted); the lazy store has no implicit layer, so the same
        // statement is a plain insert there. Everything else must match.
        use beliefdb::core::internal::InsertOutcome::*;
        match (a, b) {
            (MadeExplicit, Inserted) => {}
            (x, y) => assert_eq!(x, y, "outcome mismatch on {stmt}"),
        }
    }
    // Same explicit statements afterwards.
    assert_eq!(
        eager.to_belief_database().unwrap().statements(),
        lazy.database().statements()
    );
}

#[test]
fn lazy_storage_is_smaller_and_updates_do_not_fan_out() {
    let cfg = GeneratorConfig::new(10, 400).with_seed(41);
    let (db, _) = generate_logical(&cfg).unwrap();
    let eager = Bdms::from_belief_database(&db).unwrap();
    let lazy = LazyBdms::from_belief_database(db);
    let eager_size = eager.stats().total_tuples;
    let lazy_size = lazy.stored_tuples();
    assert!(
        lazy_size < eager_size,
        "lazy {lazy_size} should undercut eager {eager_size}"
    );
}

#[test]
fn lazy_deletes_match_eager_deletes() {
    let cfg = GeneratorConfig::new(4, 150).with_seed(51);
    let (db, _) = generate_logical(&cfg).unwrap();
    let mut eager = Bdms::from_belief_database(&db).unwrap();
    let mut lazy = LazyBdms::from_belief_database(db.clone());
    for stmt in db.statements().iter().step_by(3) {
        assert_eq!(
            eager.delete_statement(stmt).unwrap(),
            lazy.delete_statement(stmt).unwrap(),
            "delete outcome on {stmt}"
        );
    }
    let users: Vec<UserId> = db.users().collect();
    for t in db.mentioned_tuples().iter().step_by(6) {
        for &u in &users {
            for sign in [Sign::Pos, Sign::Neg] {
                let stmt = BeliefStatement::new(BeliefPath::user(u), t.clone(), sign);
                assert_eq!(
                    lazy.entails(&stmt),
                    eager.entails(&stmt).unwrap(),
                    "post-delete on {stmt}"
                );
            }
        }
    }
}
