//! Fidelity tests: the paper's algorithms expressed *relationally* — as
//! non-recursive Datalog over the materialized internal schema — agree with
//! the engine's in-memory implementations.
//!
//! The store keeps a world directory in memory as a cache of what `E` and
//! `D` encode (see `internal::worlds`); these tests demonstrate that the
//! relational encoding alone carries the same information by re-running
//! Algorithm 3 (`dss`) and the world-content walk (`E*` ⋈ `V` ⋈ `R*`, the
//! core of Algorithm 1) purely through the storage layer.

use beliefdb::core::internal::{D_TABLE, E_TABLE};
use beliefdb::core::{Bdms, BeliefPath, UserId, Wid};
use beliefdb::gen::{generate_bdms, DepthDist, GeneratorConfig};
use beliefdb::storage::datalog::{dsl, Evaluator};
use beliefdb::storage::{Row, Value};

/// Algorithm 3 in its relational form: for `p = 1 .. d+1`, run
/// `T(z, y) :− E*(0, w[p,d], z), D(z, y)` and return the `z` with maximum
/// depth `y` (the paper's max-operator step).
fn relational_dss(bdms: &Bdms, path: &BeliefPath) -> Wid {
    let ev = Evaluator::new(bdms.storage());
    let mut best: Option<(i64, i64)> = None; // (depth, wid)
    let d = path.depth();
    for p in 1..=d + 1 {
        let suffix = path.suffix_from(p);
        // Build E*(0, suffix, z): a chain of E atoms.
        let mut body = Vec::new();
        let mut prev = dsl::c(0i64);
        for (j, u) in suffix.users().iter().enumerate() {
            let next = dsl::v(&format!("z{j}"));
            body.push(dsl::pos(
                E_TABLE,
                vec![prev.clone(), dsl::c(u.value()), next.clone()],
            ));
            prev = next;
        }
        body.push(dsl::pos(D_TABLE, vec![prev.clone(), dsl::v("y")]));
        let rule = dsl::rule("T", vec![prev, dsl::v("y")], body);
        let rows = ev.eval_rule(&rule).expect("algorithm 3 query");
        // The walk is deterministic: at most one row. But faithfully apply
        // the max over whatever came back.
        for row in rows {
            let wid = row[0].as_int().expect("wid");
            let depth = row[1].as_int().expect("depth");
            // A suffix only counts if the walk actually reached the world
            // whose path *is* that suffix — verified below via depth: the
            // walk can fall back through dss edges, in which case the
            // reached depth is shorter than the suffix length. Algorithm 3
            // relies on exactly this: the first (longest) suffix whose walk
            // depth equals its length is the deepest suffix state.
            if depth as usize == suffix.depth() && best.is_none_or(|(bd, _)| depth > bd) {
                best = Some((depth, wid));
            }
        }
    }
    let (_, wid) = best.expect("the root always matches");
    Wid(wid as u32)
}

fn test_bdms() -> Bdms {
    let cfg = GeneratorConfig::new(4, 150)
        .with_depth(DepthDist::new(&[0.2, 0.4, 0.3, 0.1]))
        .with_seed(63);
    let (bdms, _) = generate_bdms(&cfg).unwrap();
    bdms
}

#[test]
fn algorithm3_relational_form_agrees_with_directory() {
    let bdms = test_bdms();
    let users: Vec<UserId> = bdms.users();
    // Every path up to depth 3 (states and non-states alike).
    let mut paths = vec![BeliefPath::root()];
    let mut frontier = vec![BeliefPath::root()];
    for _ in 0..3 {
        let mut next = Vec::new();
        for p in &frontier {
            for &u in &users {
                if let Ok(q) = p.push(u) {
                    next.push(q);
                }
            }
        }
        paths.extend(next.iter().cloned());
        frontier = next;
    }
    let dir = bdms.internal().directory();
    for p in &paths {
        assert_eq!(
            relational_dss(&bdms, p),
            dir.dss(p),
            "Algorithm 3 disagrees with the directory at {p}"
        );
    }
}

/// The world-content walk of Algorithm 1's temp tables, run directly as a
/// Datalog rule over the internal schema:
/// `W(sid, species, s) :− E*(0, w, z), V__S(z, t, _, s, _), S__star(t, sid, _, species, _, _)`.
#[test]
fn world_contents_via_pure_relational_walk() {
    let bdms = test_bdms();
    let ev = Evaluator::new(bdms.storage());
    let users: Vec<UserId> = bdms.users();

    for &u in &users {
        for &v in users.iter().filter(|&&v| v != u) {
            let path = BeliefPath::new(vec![u, v]).unwrap();
            // Relational walk.
            let rule = dsl::rule(
                "W",
                vec![dsl::v("sid"), dsl::v("species"), dsl::v("s")],
                vec![
                    dsl::pos(E_TABLE, vec![dsl::c(0i64), dsl::c(u.value()), dsl::v("z1")]),
                    dsl::pos(E_TABLE, vec![dsl::v("z1"), dsl::c(v.value()), dsl::v("z2")]),
                    dsl::pos(
                        "V__S",
                        vec![
                            dsl::v("z2"),
                            dsl::v("t"),
                            dsl::any(),
                            dsl::v("s"),
                            dsl::any(),
                        ],
                    ),
                    dsl::pos(
                        "S__star",
                        vec![
                            dsl::v("t"),
                            dsl::v("sid"),
                            dsl::any(),
                            dsl::v("species"),
                            dsl::any(),
                            dsl::any(),
                        ],
                    ),
                ],
            );
            let mut relational = ev.eval_rule(&rule).unwrap();
            relational.sort();

            // In-memory world.
            let world = bdms.world(&path).unwrap();
            let mut expected: Vec<Row> = world
                .signed_tuples()
                .map(|(t, sign)| Row::new(vec![t.row[0].clone(), t.row[2].clone(), sign.value()]))
                .collect();
            expected.sort();
            expected.dedup();
            assert_eq!(relational, expected, "world walk mismatch at {path}");
        }
    }
}

/// The E relation is exactly Def. 16's edge set: `|E| = Σ_w |{u : u ≠
/// last(w)}|` and every row points at a deepest suffix state.
#[test]
fn edge_relation_matches_def16() {
    let bdms = test_bdms();
    let dir = bdms.internal().directory();
    let e = bdms.storage().table(E_TABLE).unwrap();
    let m = bdms.users().len();
    let mut expected_rows = 0;
    for (_, path) in dir.iter() {
        expected_rows += if path.is_root() { m } else { m - 1 };
    }
    assert_eq!(e.len(), expected_rows);
    for (_, row) in e.iter() {
        let src = Wid::from_value(&row[0]).unwrap();
        let user = UserId::from_value(&row[1]).unwrap();
        let dst = Wid::from_value(&row[2]).unwrap();
        let extended = dir.path(src).push(user).expect("edge implies u ≠ last");
        assert_eq!(dir.dss(&extended), dst, "edge target is not the dss");
    }
}

/// `D` and `S` are exactly the depth and suffix-backlink relations.
#[test]
fn depth_and_suffix_relations_match() {
    let bdms = test_bdms();
    let dir = bdms.internal().directory();
    let d = bdms.storage().table(D_TABLE).unwrap();
    let s = bdms.storage().table("S").unwrap();
    assert_eq!(d.len(), dir.len());
    assert_eq!(s.len(), dir.len() - 1);
    for (wid, path) in dir.iter() {
        let drow = d.get_by_key(&wid.value()).unwrap();
        assert_eq!(drow[1], Value::Int(path.depth() as i64));
        if !path.is_root() {
            let srow = s.get_by_key(&wid.value()).unwrap();
            let parent = Wid::from_value(&srow[1]).unwrap();
            assert_eq!(parent, dir.dss(&path.drop_first()), "S backlink at {path}");
        }
    }
}
