//! Differential suite for the query optimizer: optimized and unoptimized
//! execution must return identical row multisets.
//!
//! Three layers:
//!
//! 1. **fuzzed relational plans** — arity-correct random plans (joins,
//!    anti-joins, unions, selections, projections, distinct, sort, limit,
//!    literal relations) over a mixed-size database, `execute` vs
//!    `execute_optimized`;
//! 2. **fuzzed belief conjunctive queries** — random BCQs over a
//!    generated annotation workload, `Bdms::query` (optimizer on) vs
//!    `Bdms::query_unoptimized`;
//! 3. **EXPLAIN determinism** — the rendered plan tree is stable across
//!    runs.

use beliefdb::core::bcq::{Bcq, CmpPred, PathElem, QueryTerm, Subgoal};
use beliefdb::core::{Bdms, RelId, Sign, UserId};
use beliefdb::gen::{generate_logical, DepthDist, GeneratorConfig};
use beliefdb::storage::{
    execute, execute_optimized, row, CmpOp, Database, Expr, Plan, Row, TableSchema, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Layer 1: fuzzed relational plans
// ---------------------------------------------------------------------------

fn plan_db() -> Database {
    let mut db = Database::new();
    let users = db
        .create_table(TableSchema::with_key("Users", &["uid", "name"]))
        .unwrap();
    for i in 1..=40i64 {
        users
            .insert(row![i, format!("user{}", i % 7).as_str()])
            .unwrap();
    }
    let e = db
        .create_table(TableSchema::keyless("E", &["w1", "u", "w2"]))
        .unwrap();
    e.create_index("by_w1_u", &["w1", "u"]).unwrap();
    for w in 0..30i64 {
        for u in 1..=5i64 {
            e.insert(row![w, u, (w * u + u) % 30]).unwrap();
        }
    }
    let v = db
        .create_table(TableSchema::keyless("V", &["wid", "tid", "s"]))
        .unwrap();
    v.create_index("by_wid", &["wid"]).unwrap();
    for i in 0..300i64 {
        v.insert(row![i % 30, i % 60, if i % 3 == 0 { "+" } else { "-" }])
            .unwrap();
    }
    db
}

/// A random predicate over `arity` columns.
fn gen_pred(rng: &mut StdRng, arity: usize, depth: usize) -> Expr {
    let leaf = |rng: &mut StdRng| -> Expr {
        let c = rng.gen_range(0..arity);
        let op = match rng.gen_range(0..4u32) {
            0 => CmpOp::Eq,
            1 => CmpOp::Ne,
            2 => CmpOp::Lt,
            _ => CmpOp::Ge,
        };
        if rng.gen_bool(0.5) {
            let lit: Value = match rng.gen_range(0..3u32) {
                0 => Value::int(rng.gen_range(0..30u32) as i64),
                1 => Value::str(if rng.gen_bool(0.5) { "+" } else { "-" }),
                _ => Value::str(format!("user{}", rng.gen_range(0..7u32))),
            };
            Expr::cmp(op, Expr::Col(c), Expr::Lit(lit))
        } else {
            Expr::cmp(op, Expr::Col(c), Expr::Col(rng.gen_range(0..arity)))
        }
    };
    if depth == 0 || rng.gen_bool(0.4) {
        return leaf(rng);
    }
    match rng.gen_range(0..3u32) {
        0 => Expr::and(
            (0..rng.gen_range(1..4usize))
                .map(|_| gen_pred(rng, arity, depth - 1))
                .collect(),
        ),
        1 => Expr::or(
            (0..rng.gen_range(1..4usize))
                .map(|_| gen_pred(rng, arity, depth - 1))
                .collect(),
        ),
        _ => Expr::Not(Box::new(gen_pred(rng, arity, depth - 1))),
    }
}

/// A random arity-correct plan. Returns the plan and its arity.
fn gen_plan(rng: &mut StdRng, depth: usize) -> (Plan, usize) {
    if depth == 0 || rng.gen_bool(0.25) {
        return match rng.gen_range(0..4u32) {
            0 => (Plan::scan("Users"), 2),
            1 => (Plan::scan("E"), 3),
            2 => (Plan::scan("V"), 3),
            _ => {
                let arity = rng.gen_range(1..4usize);
                let n = rng.gen_range(0..6usize);
                let rows: Vec<Row> = (0..n)
                    .map(|_| {
                        Row::new(
                            (0..arity)
                                .map(|_| Value::int(rng.gen_range(0..20u32) as i64))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect();
                (Plan::Values { arity, rows }, arity)
            }
        };
    }
    match rng.gen_range(0..8u32) {
        0 => {
            let (p, a) = gen_plan(rng, depth - 1);
            (p.select(gen_pred(rng, a, 2)), a)
        }
        1 => {
            let (p, a) = gen_plan(rng, depth - 1);
            let out = rng.gen_range(1..4usize);
            let cols: Vec<usize> = (0..out).map(|_| rng.gen_range(0..a)).collect();
            (p.project_cols(&cols), out)
        }
        2 => {
            let (l, la) = gen_plan(rng, depth - 1);
            let (r, ra) = gen_plan(rng, depth - 1);
            let keys = rng.gen_range(0..3usize);
            let on: Vec<(usize, usize)> = (0..keys)
                .map(|_| (rng.gen_range(0..la), rng.gen_range(0..ra)))
                .collect();
            let joined = if rng.gen_bool(0.3) {
                let residual = gen_pred(rng, la + ra, 1);
                l.join_where(r, on, residual)
            } else {
                l.join(r, on)
            };
            (joined, la + ra)
        }
        3 => {
            let (l, la) = gen_plan(rng, depth - 1);
            let (r, ra) = gen_plan(rng, depth - 1);
            let keys = rng.gen_range(0..3usize);
            let on: Vec<(usize, usize)> = (0..keys)
                .map(|_| (rng.gen_range(0..la), rng.gen_range(0..ra)))
                .collect();
            (l.anti_join(r, on), la)
        }
        4 => {
            let (l, la) = gen_plan(rng, depth - 1);
            let (r, ra) = gen_plan(rng, depth - 1);
            // Align arities with projections for a valid union.
            let a = la.min(ra);
            let cols: Vec<usize> = (0..a).collect();
            (
                Plan::Union {
                    inputs: vec![l.project_cols(&cols), r.project_cols(&cols)],
                },
                a,
            )
        }
        5 => {
            let (p, a) = gen_plan(rng, depth - 1);
            (p.distinct(), a)
        }
        6 => {
            let (p, a) = gen_plan(rng, depth - 1);
            let by: Vec<usize> = (0..a.min(2)).map(|_| rng.gen_range(0..a)).collect();
            (p.sort(by), a)
        }
        _ => {
            let (p, a) = gen_plan(rng, depth - 1);
            (p.limit(rng.gen_range(0..50usize)), a)
        }
    }
}

/// Multiset comparison via sort.
fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

#[test]
fn fuzzed_plans_agree_with_and_without_optimizer() {
    let db = plan_db();
    let mut rng = StdRng::seed_from_u64(0xBE11EF);
    let mut nontrivial = 0usize;
    for case in 0..300 {
        let (plan, _) = gen_plan(&mut rng, 3);
        // Limit-of-unsorted input is inherently nondeterministic under
        // reordering; only compare when the limit keeps everything or the
        // plan contains no limit over unsorted joins. We sidestep by
        // skipping plans containing Limit (kept rows depend on physical
        // order, which the optimizer legitimately changes).
        if contains_order_sensitive_limit(&plan) {
            continue;
        }
        let base = execute(&db, &plan).expect("unoptimized execution failed");
        let optimized = execute_optimized(&db, &plan).expect("optimized execution failed");
        if !base.is_empty() {
            nontrivial += 1;
        }
        assert_eq!(
            sorted(base),
            sorted(optimized),
            "case {case}: optimizer changed the result multiset of {plan:?}"
        );
    }
    assert!(
        nontrivial > 40,
        "only {nontrivial} non-empty cases — generator too weak"
    );
}

/// `Limit` over anything whose order the optimizer may change picks
/// different rows; that is allowed behaviour, so those plans are skipped.
fn contains_order_sensitive_limit(p: &Plan) -> bool {
    match p {
        Plan::Limit { input, .. } => !matches!(input.as_ref(), Plan::Sort { .. }),
        Plan::Scan { .. } | Plan::Values { .. } => false,
        Plan::Selection { input, .. }
        | Plan::Projection { input, .. }
        | Plan::Distinct { input }
        | Plan::Sort { input, .. } => contains_order_sensitive_limit(input),
        Plan::Join { left, right, .. } | Plan::AntiJoin { left, right, .. } => {
            contains_order_sensitive_limit(left) || contains_order_sensitive_limit(right)
        }
        Plan::Union { inputs } => inputs.iter().any(contains_order_sensitive_limit),
        Plan::Aggregate { input, .. } => contains_order_sensitive_limit(input),
    }
}

// ---------------------------------------------------------------------------
// Layer 2: fuzzed belief conjunctive queries
// ---------------------------------------------------------------------------

const USERS: u32 = 3;
const ARITY: usize = 5;

fn workload() -> Bdms {
    let cfg = GeneratorConfig::new(USERS as usize, 120)
        .with_depth(DepthDist::new(&[0.25, 0.45, 0.3]))
        .with_key_space(6)
        .with_negative_rate(0.3)
        .with_seed(1234);
    let (db, _) = generate_logical(&cfg).unwrap();
    Bdms::from_belief_database(&db).unwrap()
}

fn gen_term(rng: &mut StdRng, vars: &[&str], allow_any: bool) -> QueryTerm {
    match rng.gen_range(0..if allow_any { 4u32 } else { 3u32 }) {
        0 => QueryTerm::val(format!("s{}", rng.gen_range(0..6u32))),
        1 | 2 => QueryTerm::var(vars[rng.gen_range(0..vars.len())]),
        _ => QueryTerm::Any,
    }
}

fn gen_bcq(rng: &mut StdRng) -> Bcq {
    let vars = ["x", "y", "a", "b", "c"];
    let n_sub = rng.gen_range(1..4usize);
    let subgoals: Vec<Subgoal> = (0..n_sub)
        .map(|_| {
            let sign = if rng.gen_bool(0.3) {
                Sign::Neg
            } else {
                Sign::Pos
            };
            let path: Vec<PathElem> = (0..rng.gen_range(0..3usize))
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        PathElem::User(UserId(rng.gen_range(0..USERS) + 1))
                    } else {
                        PathElem::var(vars[rng.gen_range(0..2usize)])
                    }
                })
                .collect();
            let args: Vec<QueryTerm> = (0..ARITY)
                .map(|_| gen_term(rng, &vars, sign == Sign::Pos))
                .collect();
            Subgoal {
                path,
                sign,
                rel: RelId(0),
                args,
            }
        })
        .collect();
    let predicates = if rng.gen_bool(0.3) {
        vec![CmpPred {
            left: QueryTerm::var(vars[rng.gen_range(0..vars.len())]),
            op: CmpOp::Ne,
            right: QueryTerm::var(vars[rng.gen_range(0..vars.len())]),
        }]
    } else {
        Vec::new()
    };
    let head: Vec<QueryTerm> = (0..rng.gen_range(0..3usize))
        .map(|_| QueryTerm::var(vars[rng.gen_range(0..vars.len())]))
        .collect();
    Bcq {
        head,
        subgoals,
        predicates,
        user_atoms: Vec::new(),
    }
}

#[test]
fn fuzzed_bcqs_agree_with_and_without_optimizer() {
    let bdms = workload();
    let mut rng = StdRng::seed_from_u64(0xBC0);
    let mut evaluated = 0usize;
    let mut attempts = 0usize;
    while evaluated < 120 && attempts < 3000 {
        attempts += 1;
        let q = gen_bcq(&mut rng);
        if q.validate(bdms.schema()).is_err() {
            continue;
        }
        evaluated += 1;
        let optimized = bdms.query(&q).expect("optimized BCQ evaluation failed");
        let plain = bdms
            .query_unoptimized(&q)
            .expect("unoptimized BCQ evaluation failed");
        assert_eq!(optimized, plain, "optimizer changed the answer of {q}");
    }
    assert!(evaluated >= 100, "only {evaluated} safe queries generated");
}

// ---------------------------------------------------------------------------
// Layer 3: EXPLAIN determinism
// ---------------------------------------------------------------------------

#[test]
fn explain_output_is_deterministic_across_runs() {
    let bdms = workload();
    let mut rng = StdRng::seed_from_u64(0xE4);
    let mut checked = 0usize;
    let mut attempts = 0usize;
    while checked < 20 && attempts < 500 {
        attempts += 1;
        let q = gen_bcq(&mut rng);
        if q.validate(bdms.schema()).is_err() {
            continue;
        }
        checked += 1;
        let a = bdms.explain_query(&q).expect("explain failed");
        let b = bdms.explain_query(&q).expect("explain failed");
        assert_eq!(a, b, "EXPLAIN unstable for {q}");
        assert!(
            a.contains("Scan") || a.contains("Values"),
            "implausible plan: {a}"
        );
    }
    assert!(checked >= 10, "only {checked} queries explained");
}
