//! Differential suite for the query optimizer: optimized and unoptimized
//! execution must return identical row multisets.
//!
//! Three layers:
//!
//! 1. **fuzzed relational plans** — arity-correct random plans (joins,
//!    anti-joins, unions, selections, projections, distinct, sort, limit,
//!    literal relations) over a mixed-size database, `execute` vs
//!    `execute_optimized`;
//! 2. **fuzzed belief conjunctive queries** — random BCQs over a
//!    generated annotation workload, `Bdms::query` (optimizer on) vs
//!    `Bdms::query_unoptimized`;
//! 3. **EXPLAIN determinism** — the rendered plan tree is stable across
//!    runs.

mod common;

use beliefdb::core::bcq::{Bcq, CmpPred, PathElem, QueryTerm, Subgoal};
use beliefdb::core::{Bdms, RelId, Sign, UserId};
use beliefdb::gen::{generate_logical, DepthDist, GeneratorConfig};
use beliefdb::storage::{
    execute, execute_optimized, row, CmpOp, Database, Expr, Plan, TableSchema,
};
use common::{contains_order_sensitive_limit, gen_plan, plan_db, sorted};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Layer 1: fuzzed relational plans (generator shared via tests/common)
// ---------------------------------------------------------------------------

#[test]
fn fuzzed_plans_agree_with_and_without_optimizer() {
    // Arm the plan verifier: every rewrite pass of every fuzzed case is
    // invariant-checked (a violation fails the optimized run loudly).
    beliefdb::storage::sema::set_verify(true);
    let db = plan_db();
    let mut rng = StdRng::seed_from_u64(0xBE11EF);
    let mut nontrivial = 0usize;
    for case in 0..300 {
        let (plan, _) = gen_plan(&mut rng, 3);
        // Limit-of-unsorted input is inherently nondeterministic under
        // reordering; only compare when the limit keeps everything or the
        // plan contains no limit over unsorted joins. We sidestep by
        // skipping plans containing Limit (kept rows depend on physical
        // order, which the optimizer legitimately changes).
        if contains_order_sensitive_limit(&plan) {
            continue;
        }
        let base = execute(&db, &plan).expect("unoptimized execution failed");
        let optimized = execute_optimized(&db, &plan).expect("optimized execution failed");
        if !base.is_empty() {
            nontrivial += 1;
        }
        assert_eq!(
            sorted(base),
            sorted(optimized),
            "case {case}: optimizer changed the result multiset of {plan:?}"
        );
    }
    assert!(
        nontrivial > 40,
        "only {nontrivial} non-empty cases — generator too weak"
    );
}

/// Regression (formerly `tests/tmp_repro.rs`): a join whose residual is
/// not boolean-shaped (`Expr::Col(0)` can raise a TypeError at eval time)
/// must survive the reorder pass without panicking, and the optimized
/// plan must fail or succeed exactly like the original.
#[test]
fn reorder_keeps_fallible_residuals_intact() {
    let mut db = Database::new();
    let t = db.create_table(TableSchema::keyless("T", &["a"])).unwrap();
    t.insert(row![1]).unwrap();
    let u = db.create_table(TableSchema::keyless("U", &["b"])).unwrap();
    u.insert(row![2]).unwrap();
    let plan = Plan::scan("T").join_where(Plan::scan("U"), vec![], Expr::Col(0));
    let opts = beliefdb::storage::OptimizerOptions {
        fold: false,
        pushdown: false,
        simplify: false,
        reorder_joins: true,
        prune: false,
    };
    let optimized = beliefdb::storage::optimize_with(&db, plan.clone(), &opts)
        .expect("reorder must not reject a fallible residual");
    // Both plans evaluate the residual over a real row pair, so both must
    // surface the same TypeError instead of silently dropping rows.
    assert!(execute(&db, &plan).is_err());
    assert!(execute(&db, &optimized).is_err());
}

/// The provably-empty fold (`sema::expr_contradictory`): a selection
/// whose predicate is statically unsatisfiable collapses to an empty
/// `Values`, and the collapsed plan agrees with brute-force execution —
/// including when the contradictory selection sits under joins and
/// projections, where the fold can erase whole subtrees.
#[test]
fn contradictory_conjunctions_fold_to_empty_and_agree() {
    let db = plan_db();
    let contradiction = Expr::and(vec![Expr::col_eq_lit(0, 1i64), Expr::col_eq_lit(0, 2i64)]);
    let cases = vec![
        Plan::scan("V").select(contradiction.clone()),
        // Under a join: one empty side empties the join.
        Plan::scan("V")
            .select(contradiction.clone())
            .join(Plan::scan("Users"), vec![(1, 0)])
            .project_cols(&[0, 3]),
        // Inside a union: the other branch must survive untouched.
        Plan::Union {
            inputs: vec![
                Plan::scan("Users").select(contradiction.clone()),
                Plan::scan("Users"),
            ],
        },
    ];
    for plan in cases {
        let base = execute(&db, &plan).expect("unoptimized execution failed");
        let optimized = execute_optimized(&db, &plan).expect("optimized execution failed");
        assert_eq!(
            sorted(base),
            sorted(optimized),
            "fold changed the result multiset of {plan:?}"
        );
    }
    // The single-selection case really does collapse to a literal empty
    // relation (not merely an equivalent plan).
    let folded = beliefdb::storage::optimize(&db, Plan::scan("V").select(contradiction)).unwrap();
    assert!(
        matches!(&folded, Plan::Values { rows, .. } if rows.is_empty()),
        "expected empty Values, got {folded:?}"
    );
}

// ---------------------------------------------------------------------------
// Layer 2: fuzzed belief conjunctive queries
// ---------------------------------------------------------------------------

const USERS: u32 = 3;
const ARITY: usize = 5;

fn workload() -> Bdms {
    let cfg = GeneratorConfig::new(USERS as usize, 120)
        .with_depth(DepthDist::new(&[0.25, 0.45, 0.3]))
        .with_key_space(6)
        .with_negative_rate(0.3)
        .with_seed(1234);
    let (db, _) = generate_logical(&cfg).unwrap();
    Bdms::from_belief_database(&db).unwrap()
}

fn gen_term(rng: &mut StdRng, vars: &[&str], allow_any: bool) -> QueryTerm {
    match rng.gen_range(0..if allow_any { 4u32 } else { 3u32 }) {
        0 => QueryTerm::val(format!("s{}", rng.gen_range(0..6u32))),
        1 | 2 => QueryTerm::var(vars[rng.gen_range(0..vars.len())]),
        _ => QueryTerm::Any,
    }
}

fn gen_bcq(rng: &mut StdRng) -> Bcq {
    let vars = ["x", "y", "a", "b", "c"];
    let n_sub = rng.gen_range(1..4usize);
    let subgoals: Vec<Subgoal> = (0..n_sub)
        .map(|_| {
            let sign = if rng.gen_bool(0.3) {
                Sign::Neg
            } else {
                Sign::Pos
            };
            let path: Vec<PathElem> = (0..rng.gen_range(0..3usize))
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        PathElem::User(UserId(rng.gen_range(0..USERS) + 1))
                    } else {
                        PathElem::var(vars[rng.gen_range(0..2usize)])
                    }
                })
                .collect();
            let args: Vec<QueryTerm> = (0..ARITY)
                .map(|_| gen_term(rng, &vars, sign == Sign::Pos))
                .collect();
            Subgoal {
                path,
                sign,
                rel: RelId(0),
                args,
            }
        })
        .collect();
    let predicates = if rng.gen_bool(0.3) {
        vec![CmpPred {
            left: QueryTerm::var(vars[rng.gen_range(0..vars.len())]),
            op: CmpOp::Ne,
            right: QueryTerm::var(vars[rng.gen_range(0..vars.len())]),
        }]
    } else {
        Vec::new()
    };
    let head: Vec<QueryTerm> = (0..rng.gen_range(0..3usize))
        .map(|_| QueryTerm::var(vars[rng.gen_range(0..vars.len())]))
        .collect();
    Bcq {
        head,
        subgoals,
        predicates,
        user_atoms: Vec::new(),
    }
}

#[test]
fn fuzzed_bcqs_agree_with_and_without_optimizer() {
    beliefdb::storage::sema::set_verify(true);
    let bdms = workload();
    let mut rng = StdRng::seed_from_u64(0xBC0);
    let mut evaluated = 0usize;
    let mut attempts = 0usize;
    while evaluated < 120 && attempts < 3000 {
        attempts += 1;
        let q = gen_bcq(&mut rng);
        if q.validate(bdms.schema()).is_err() {
            continue;
        }
        evaluated += 1;
        let optimized = bdms.query(&q).expect("optimized BCQ evaluation failed");
        let plain = bdms
            .query_unoptimized(&q)
            .expect("unoptimized BCQ evaluation failed");
        assert_eq!(optimized, plain, "optimizer changed the answer of {q}");
    }
    assert!(evaluated >= 100, "only {evaluated} safe queries generated");
}

// ---------------------------------------------------------------------------
// Layer 3: EXPLAIN determinism
// ---------------------------------------------------------------------------

#[test]
fn explain_output_is_deterministic_across_runs() {
    let bdms = workload();
    let mut rng = StdRng::seed_from_u64(0xE4);
    let mut checked = 0usize;
    let mut attempts = 0usize;
    while checked < 20 && attempts < 500 {
        attempts += 1;
        let q = gen_bcq(&mut rng);
        if q.validate(bdms.schema()).is_err() {
            continue;
        }
        checked += 1;
        let a = bdms.explain_query(&q).expect("explain failed");
        let b = bdms.explain_query(&q).expect("explain failed");
        assert_eq!(a, b, "EXPLAIN unstable for {q}");
        assert!(
            a.contains("Scan") || a.contains("Values"),
            "implausible plan: {a}"
        );
    }
    assert!(checked >= 10, "only {checked} queries explained");
}
