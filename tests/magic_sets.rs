//! Fuzzed differential coverage for the magic-sets / SIP rewrite
//! (`beliefdb_storage::opt::magic`): the rewritten program must derive
//! exactly the same answer multiset as the unrewritten Algorithm 1 rule
//! stack for every query — bound, unbound, and partially bound — across
//! both chunk layouts {Columnar, Rows} and both budget regimes
//! {unlimited, tight}, and must reject exactly the same invalid queries
//! with the same errors. The rewrite only prunes *irrelevant* derivations;
//! any answer-row difference is a soundness bug.

use beliefdb::core::bcq::translate::{self, EvalOptions, TranslatedQuery};
use beliefdb::core::bcq::{Bcq, CmpPred, PathElem, QueryTerm, Subgoal};
use beliefdb::core::{Bdms, RelId, Sign, UserId};
use beliefdb::gen::{generate_logical, DepthDist, GeneratorConfig};
use beliefdb::storage::datalog::{Atom, BodyLit, Evaluator, Program, Rule, Term};
use beliefdb::storage::opt::magic;
use beliefdb::storage::{ChunkLayout, CmpOp, Row};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const USERS: u32 = 3;
const ARITY: usize = 5;
const VARS: [&str; 5] = ["x", "y", "a", "b", "c"];

/// A tight budget forces every materialization point through the spill
/// path; unlimited is the plain in-memory executor.
const BUDGETS: [Option<usize>; 2] = [None, Some(4096)];

fn workload() -> Bdms {
    let cfg = GeneratorConfig::new(USERS as usize, 120)
        .with_depth(DepthDist::new(&[0.25, 0.45, 0.3]))
        .with_key_space(6)
        .with_negative_rate(0.3)
        .with_seed(0xA71C);
    let (db, _) = generate_logical(&cfg).unwrap();
    Bdms::from_belief_database(&db).unwrap()
}

/// How strongly the generated query's arguments are pinned to constants.
#[derive(Clone, Copy, PartialEq)]
enum Boundness {
    /// Key argument and every path element concrete — the demand-driven
    /// sweet spot.
    Bound,
    /// Variables and wildcards only — the rewrite must be a no-op in
    /// effect (and the off-path byte-identical in plan).
    Unbound,
    /// A mix: some subgoals pinned, some free, shared variables carrying
    /// bindings sideways.
    Partial,
}

fn gen_path(rng: &mut StdRng, bound: Boundness) -> Vec<PathElem> {
    let len = rng.gen_range(0..3usize);
    (0..len)
        .map(|_| {
            let concrete = match bound {
                Boundness::Bound => true,
                Boundness::Unbound => false,
                Boundness::Partial => rng.gen_bool(0.5),
            };
            if concrete {
                PathElem::User(UserId(rng.gen_range(1..USERS + 1)))
            } else {
                PathElem::var(VARS[rng.gen_range(0..2)])
            }
        })
        .collect()
}

fn gen_const(rng: &mut StdRng) -> QueryTerm {
    if rng.gen_bool(0.5) {
        QueryTerm::val(format!("s{}", rng.gen_range(0..6u8)))
    } else {
        QueryTerm::val(format!("species{}", rng.gen_range(0..4u8)))
    }
}

fn gen_args(rng: &mut StdRng, sign: Sign, bound: Boundness) -> Vec<QueryTerm> {
    (0..ARITY)
        .map(|pos| {
            let pin = match bound {
                // Pin the key column (and sometimes more) to constants.
                Boundness::Bound => pos == 0 || rng.gen_bool(0.3),
                Boundness::Unbound => false,
                Boundness::Partial => rng.gen_bool(0.25),
            };
            if pin {
                gen_const(rng)
            } else if sign == Sign::Pos && rng.gen_bool(0.25) {
                QueryTerm::Any
            } else {
                QueryTerm::var(VARS[rng.gen_range(0..VARS.len())])
            }
        })
        .collect()
}

fn gen_query(rng: &mut StdRng, bound: Boundness) -> Bcq {
    let n = rng.gen_range(1..4usize);
    let subgoals = (0..n)
        .map(|_| {
            let sign = if rng.gen_bool(0.3) {
                Sign::Neg
            } else {
                Sign::Pos
            };
            Subgoal {
                path: gen_path(rng, bound),
                sign,
                rel: RelId(0),
                args: gen_args(rng, sign, bound),
            }
        })
        .collect();
    let predicates = if rng.gen_bool(0.3) {
        vec![CmpPred {
            left: QueryTerm::var(VARS[rng.gen_range(0..VARS.len())]),
            op: CmpOp::Ne,
            right: QueryTerm::var(VARS[rng.gen_range(0..VARS.len())]),
        }]
    } else {
        Vec::new()
    };
    let head = (0..rng.gen_range(0..3usize))
        .map(|_| QueryTerm::var(VARS[rng.gen_range(0..VARS.len())]))
        .collect();
    Bcq {
        head,
        subgoals,
        predicates,
        user_atoms: Vec::new(),
    }
}

/// Evaluate a program at the storage layer and collect the answer
/// relation as a sorted multiset.
fn run_program(
    bdms: &Bdms,
    program: &Program,
    answer: &str,
    layout: ChunkLayout,
    budget: Option<usize>,
) -> Vec<Row> {
    let mut ev = Evaluator::new(bdms.internal().database())
        .with_layout(layout)
        .with_memory_budget(budget);
    ev.run(program).unwrap();
    let mut rows: Vec<Row> = ev.relation(answer).map(|r| r.to_vec()).unwrap_or_default();
    rows.sort();
    rows
}

// ---------------------------------------------------------------------------
// The main fuzz: rewritten vs unrewritten × layouts × budgets
// ---------------------------------------------------------------------------

#[test]
fn rewritten_matches_unrewritten_across_layouts_and_budgets() {
    // Arm the verifier: every rewritten program passes the magic-guard
    // check and every compiled plan is invariant-checked per pass.
    beliefdb::storage::sema::set_verify(true);
    let bdms = workload();
    let mut rng = StdRng::seed_from_u64(0x5117_BCDE);
    let mut valid = 0usize;
    let mut rewritten_differs = 0usize;
    for case in 0..240 {
        let bound = match case % 3 {
            0 => Boundness::Bound,
            1 => Boundness::Unbound,
            _ => Boundness::Partial,
        };
        let q = gen_query(&mut rng, bound);
        let Ok(TranslatedQuery { program, answer }) = translate::translate(bdms.internal(), &q)
        else {
            // Invalid queries must fail identically with the rewrite on
            // and off: validation runs before the rewrite ever sees the
            // program.
            let on = translate::evaluate_with_options(bdms.internal(), &q, &EvalOptions::default())
                .expect_err("translate rejected but evaluate(magic=on) accepted");
            let off = translate::evaluate_with_options(
                bdms.internal(),
                &q,
                &EvalOptions {
                    magic: false,
                    ..EvalOptions::default()
                },
            )
            .expect_err("translate rejected but evaluate(magic=off) accepted");
            assert_eq!(
                on.to_string(),
                off.to_string(),
                "case {case}: errors diverged"
            );
            continue;
        };
        valid += 1;
        let magicked = magic::rewrite(&program);
        if magicked.to_string() != program.to_string() {
            rewritten_differs += 1;
        }
        // Idempotence: rewriting an already-rewritten program is a no-op.
        assert_eq!(
            magic::rewrite(&magicked).to_string(),
            magicked.to_string(),
            "case {case}: rewrite not idempotent on {q}"
        );
        let reference = run_program(&bdms, &program, &answer, ChunkLayout::Columnar, None);
        for layout in [ChunkLayout::Columnar, ChunkLayout::Rows] {
            for budget in BUDGETS {
                let plain = run_program(&bdms, &program, &answer, layout, budget);
                assert_eq!(
                    reference, plain,
                    "case {case}: unrewritten diverged at {layout:?}/{budget:?} on {q}"
                );
                let demand = run_program(&bdms, &magicked, &answer, layout, budget);
                assert_eq!(
                    reference, demand,
                    "case {case}: magic rewrite changed the answer at \
                     {layout:?}/{budget:?} on {q}"
                );
            }
        }
    }
    assert!(valid > 80, "only {valid} valid cases — generator too weak");
    assert!(
        rewritten_differs > 20,
        "only {rewritten_differs} cases actually rewritten — fuzz not \
         exercising the magic pass"
    );
}

// ---------------------------------------------------------------------------
// Surface parity: the Bdms toggle takes the same two paths
// ---------------------------------------------------------------------------

#[test]
fn bdms_toggle_agrees_on_fuzzed_queries() {
    let mut bdms = workload();
    let mut rng = StdRng::seed_from_u64(0xB0B5);
    let mut checked = 0usize;
    for case in 0..120 {
        let bound = match case % 3 {
            0 => Boundness::Bound,
            1 => Boundness::Unbound,
            _ => Boundness::Partial,
        };
        let q = gen_query(&mut rng, bound);
        if q.validate(bdms.schema()).is_err() {
            continue;
        }
        checked += 1;
        bdms.set_magic(true);
        let on = bdms.query(&q).unwrap();
        let mut on_streamed = Vec::new();
        bdms.query_streaming(&q, |row| on_streamed.push(row))
            .unwrap();
        on_streamed.sort();
        bdms.set_magic(false);
        let off = bdms.query(&q).unwrap();
        assert_eq!(on, off, "case {case}: magic toggle changed answers on {q}");
        assert_eq!(
            on, on_streamed,
            "case {case}: streaming path diverged with magic on for {q}"
        );
        bdms.set_magic(true);
    }
    assert!(checked > 20, "only {checked} valid cases");
}

// ---------------------------------------------------------------------------
// Recursion: semi-naive fixpoint × layouts, rewritten and not
// ---------------------------------------------------------------------------

#[test]
fn recursive_reachability_matches_under_rewrite_and_layouts() {
    // Transitive closure over the belief graph's E edges, demanded from
    // the root world only. The rewrite turns the full closure into a
    // forward frontier seeded at world 0; both must agree on the
    // demanded slice.
    let bdms = workload();
    let pos = |rel: &str, terms: Vec<Term>| BodyLit::Pos(Atom::new(rel, terms));
    let program = Program {
        rules: vec![
            // reach(x, y) :- E(x, u, y).
            Rule {
                head: Atom::new("reach", vec![Term::var("x"), Term::var("y")]),
                body: vec![pos(
                    "E",
                    vec![Term::var("x"), Term::var("u"), Term::var("y")],
                )],
            },
            // reach(x, y) :- reach(x, z), E(z, u, y).
            Rule {
                head: Atom::new("reach", vec![Term::var("x"), Term::var("y")]),
                body: vec![
                    pos("reach", vec![Term::var("x"), Term::var("z")]),
                    pos("E", vec![Term::var("z"), Term::var("u"), Term::var("y")]),
                ],
            },
            // ans(y) :- reach(0, y).
            Rule {
                head: Atom::new("ans", vec![Term::var("y")]),
                body: vec![pos("reach", vec![Term::val(0i64), Term::var("y")])],
            },
        ],
    };
    let magicked = magic::rewrite(&program);
    assert_ne!(
        magicked.to_string(),
        program.to_string(),
        "bound recursive closure should be rewritten"
    );
    let reference = run_program(&bdms, &program, "ans", ChunkLayout::Columnar, None);
    assert!(!reference.is_empty(), "workload has no reachable worlds");
    for layout in [ChunkLayout::Columnar, ChunkLayout::Rows] {
        for budget in BUDGETS {
            assert_eq!(
                reference,
                run_program(&bdms, &program, "ans", layout, budget),
                "plain recursion diverged at {layout:?}/{budget:?}"
            );
            assert_eq!(
                reference,
                run_program(&bdms, &magicked, "ans", layout, budget),
                "rewritten recursion diverged at {layout:?}/{budget:?}"
            );
        }
    }
}
