//! Query fuzzing: randomly generated belief conjunctive queries evaluated
//! both through the Algorithm 1 translation (relational) and the naive
//! Def. 14 evaluator (logical closure). Any disagreement is a bug in the
//! translation, the executor, or the closure — historically the richest
//! source of subtle defects in this kind of system.

use beliefdb::core::bcq::{Bcq, CmpPred, PathElem, QueryTerm, Subgoal};
use beliefdb::core::{bcq::naive, Bdms, Sign, UserId};
use beliefdb::gen::{generate_logical, DepthDist, GeneratorConfig};
use beliefdb::storage::{CmpOp, Value};
use proptest::prelude::*;

const USERS: u32 = 3;
const ARITY: usize = 5;

/// Variable pool: path variables and argument variables share a namespace
/// (as in the paper's q1, where `U.uid` is both).
fn var_pool() -> Vec<&'static str> {
    vec!["x", "y", "a", "b", "c"]
}

fn arb_path_elem() -> impl Strategy<Value = PathElem> {
    prop_oneof![
        (1..=USERS).prop_map(|u| PathElem::User(UserId(u))),
        (0..2usize).prop_map(|i| PathElem::var(var_pool()[i])),
    ]
}

fn arb_query_term(allow_any: bool) -> impl Strategy<Value = QueryTerm> {
    let consts = prop_oneof![
        (0..6u8).prop_map(|k| QueryTerm::val(format!("s{k}"))),
        (0..4u8).prop_map(|v| QueryTerm::val(format!("species{v}"))),
    ];
    let vars = (0..var_pool().len()).prop_map(|i| QueryTerm::var(var_pool()[i]));
    if allow_any {
        prop_oneof![2 => vars, 1 => consts, 1 => Just(QueryTerm::Any)].boxed()
    } else {
        prop_oneof![2 => vars, 1 => consts].boxed()
    }
}

fn arb_subgoal() -> impl Strategy<Value = Subgoal> {
    (
        proptest::collection::vec(arb_path_elem(), 0..=2),
        proptest::bool::ANY,
    )
        .prop_flat_map(|(path, negative)| {
            let sign = if negative { Sign::Neg } else { Sign::Pos };
            proptest::collection::vec(arb_query_term(sign == Sign::Pos), ARITY..=ARITY).prop_map(
                move |args| Subgoal {
                    path: path.clone(),
                    sign,
                    rel: beliefdb::core::RelId(0),
                    args,
                },
            )
        })
}

fn arb_query() -> impl Strategy<Value = Bcq> {
    (
        proptest::collection::vec(arb_subgoal(), 1..=3),
        proptest::collection::vec((0..var_pool().len(), 0..var_pool().len()), 0..=1),
        proptest::collection::vec(0..var_pool().len(), 0..=2),
    )
        .prop_map(|(subgoals, preds, head_vars)| {
            let predicates = preds
                .into_iter()
                .map(|(l, r)| CmpPred {
                    left: QueryTerm::var(var_pool()[l]),
                    op: CmpOp::Ne,
                    right: QueryTerm::var(var_pool()[r]),
                })
                .collect();
            let head = head_vars
                .into_iter()
                .map(|i| QueryTerm::var(var_pool()[i]))
                .collect();
            Bcq {
                head,
                subgoals,
                predicates,
                user_atoms: Vec::new(),
            }
        })
}

fn workload() -> Bdms {
    let cfg = GeneratorConfig::new(USERS as usize, 100)
        .with_depth(DepthDist::new(&[0.25, 0.45, 0.3]))
        .with_key_space(6)
        .with_negative_rate(0.3)
        .with_seed(99);
    let (db, _) = generate_logical(&cfg).unwrap();
    Bdms::from_belief_database(&db).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn translated_equals_naive_on_random_queries(q in arb_query()) {
        // Only evaluate queries that pass the Def. 13 safety check; the
        // generators above produce plenty of safe ones.
        let bdms = workload();
        prop_assume!(q.validate(bdms.schema()).is_ok());
        let translated = bdms.query(&q).unwrap();
        let logical = bdms.to_belief_database().unwrap();
        let mut reference = naive::evaluate(&logical, &q).unwrap();
        reference.sort();
        prop_assert_eq!(translated, reference, "divergence on query {}", q);
    }

    #[test]
    fn unsafe_queries_rejected_by_both(q in arb_query()) {
        let bdms = workload();
        prop_assume!(q.validate(bdms.schema()).is_err());
        let logical = bdms.to_belief_database().unwrap();
        prop_assert!(bdms.query(&q).is_err());
        prop_assert!(naive::evaluate(&logical, &q).is_err());
    }
}

/// Pinned adversarial queries distilled from the fuzz space: shapes that
/// stress specific translation branches.
#[test]
fn pinned_adversarial_queries() {
    let bdms = workload();
    let logical = bdms.to_belief_database().unwrap();
    let s = beliefdb::core::RelId(0);
    let v = |n: &str| QueryTerm::var(n);
    let c = |x: &str| QueryTerm::val(x);

    let cases: Vec<Bcq> = vec![
        // Same variable as path AND argument (uid-style self-join).
        Bcq {
            head: vec![v("x")],
            subgoals: vec![Subgoal {
                path: vec![PathElem::var("x")],
                sign: Sign::Pos,
                rel: s,
                args: vec![
                    v("a"),
                    v("x"),
                    QueryTerm::Any,
                    QueryTerm::Any,
                    QueryTerm::Any,
                ],
            }],
            predicates: vec![],
            user_atoms: vec![],
        },
        // Repeated variable inside one subgoal's arguments.
        Bcq {
            head: vec![v("a")],
            subgoals: vec![Subgoal {
                path: vec![],
                sign: Sign::Pos,
                rel: s,
                args: vec![
                    v("a"),
                    QueryTerm::Any,
                    v("a"),
                    QueryTerm::Any,
                    QueryTerm::Any,
                ],
            }],
            predicates: vec![],
            user_atoms: vec![],
        },
        // Two negative subgoals with interlocking path variables (the
        // "circular binding" case: each negative's args are bound by the
        // other's path).
        Bcq {
            head: vec![v("x"), v("y")],
            subgoals: vec![
                Subgoal {
                    path: vec![PathElem::var("x")],
                    sign: Sign::Neg,
                    rel: s,
                    args: vec![c("s0"), v("y"), c("species0"), c("6-14-08"), c("loc0")],
                },
                Subgoal {
                    path: vec![PathElem::var("y")],
                    sign: Sign::Neg,
                    rel: s,
                    args: vec![c("s1"), v("x"), c("species1"), c("6-14-08"), c("loc1")],
                },
            ],
            predicates: vec![],
            user_atoms: vec![],
        },
        // Constant-only negative subgoal alongside a positive anchor.
        Bcq {
            head: vec![v("x")],
            subgoals: vec![
                Subgoal {
                    path: vec![PathElem::var("x")],
                    sign: Sign::Pos,
                    rel: s,
                    args: vec![
                        v("a"),
                        QueryTerm::Any,
                        QueryTerm::Any,
                        QueryTerm::Any,
                        QueryTerm::Any,
                    ],
                },
                Subgoal {
                    path: vec![PathElem::var("x")],
                    sign: Sign::Neg,
                    rel: s,
                    args: vec![v("a"), c("u1"), c("species2"), c("6-14-08"), c("loc2")],
                },
            ],
            predicates: vec![],
            user_atoms: vec![],
        },
    ];

    for (i, q) in cases.iter().enumerate() {
        // All of these must validate against a 5-column schema...
        if let Err(e) = q.validate(bdms.schema()) {
            // ... except the interlocking-negatives case, which IS safe
            // (path occurrences are positive); any error here is a bug.
            panic!("case {i} failed validation: {e}");
        }
        let translated = bdms.query(q).unwrap();
        let mut reference = naive::evaluate(&logical, q).unwrap();
        reference.sort();
        assert_eq!(translated, reference, "case {i} diverged: {q}");
    }

    // A query whose head is a constant row only (boolean-style query).
    let boolean = Bcq {
        head: vec![QueryTerm::Const(Value::Int(1))],
        subgoals: vec![Subgoal {
            path: vec![],
            sign: Sign::Pos,
            rel: s,
            args: vec![QueryTerm::Any; ARITY],
        }],
        predicates: vec![],
        user_atoms: vec![],
    };
    let translated = bdms.query(&boolean).unwrap();
    let reference = naive::evaluate(&logical, &boolean).unwrap();
    assert_eq!(translated, reference);
}
