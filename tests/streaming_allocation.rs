//! Peak-allocation guard for the (now chunk-at-a-time) streaming
//! executor: a selective scan→filter→project pipeline must allocate
//! O(batch), not O(input) — the working set is one in-flight chunk plus
//! the (tiny) output, independent of table size — and a pipelined join
//! must not materialize its probe side. The chunk-recycling section
//! additionally proves the steady state allocates *rows*, not chunk
//! buffers: large (buffer-sized) allocations stay O(1) in the number of
//! chunks drained once the thread-local pool is warm.
//!
//! Measured with a counting global allocator tracking live bytes and
//! large-allocation counts (the whole binary holds exactly one
//! `#[test]` so no other thread skews the counters).

use beliefdb::storage::{execute, execute_materialized, row, stream, stream_chunks};
use beliefdb::storage::{CmpOp, Database, Expr, Plan, TableSchema};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

struct PeakTracking;

static CURRENT: AtomicIsize = AtomicIsize::new(0);
static PEAK: AtomicIsize = AtomicIsize::new(0);
static BIG_ALLOCS: AtomicUsize = AtomicUsize::new(0);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

/// Allocations at least this large count as "chunk-buffer sized": a
/// full 1024-row chunk buffer is 16 KiB, a selection vector 4 KiB,
/// while individual rows are tens of bytes.
const BIG: usize = 4096;

unsafe impl GlobalAlloc for PeakTracking {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size() as isize, Ordering::Relaxed)
                + layout.size() as isize;
            PEAK.fetch_max(cur, Ordering::Relaxed);
            if layout.size() >= BIG {
                BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        p
    }

    unsafe fn realloc(&self, p: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let q = System.realloc(p, layout, new_size);
        if !q.is_null() {
            let delta = new_size as isize - layout.size() as isize;
            let cur = CURRENT.fetch_add(delta, Ordering::Relaxed) + delta;
            PEAK.fetch_max(cur, Ordering::Relaxed);
            if new_size >= BIG {
                BIG_ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
        }
        q
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        CURRENT.fetch_sub(layout.size() as isize, Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOCATOR: PeakTracking = PeakTracking;

/// Run `f` and return (result, peak live bytes allocated above the
/// baseline while it ran).
fn peak_of<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    let peak = (PEAK.load(Ordering::Relaxed) - base).max(0) as usize;
    (out, peak)
}

/// Run `f` and return (result, number of allocations of at least
/// [`BIG`] bytes it performed).
fn big_allocs_of<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = BIG_ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, BIG_ALLOCS.load(Ordering::Relaxed) - before)
}

/// Run `f` and return (result, total number of heap allocations of any
/// size it performed).
fn allocs_of<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCS.load(Ordering::Relaxed) - before)
}

#[test]
fn selective_pipelines_do_not_materialize_their_input() {
    const N: i64 = 50_000;
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::keyless("T", &["a", "b", "c"]))
        .unwrap();
    for i in 0..N {
        t.insert(row![i, i % 977, i % 7]).unwrap();
    }
    // Build the version-cached columnar transpose up front: it is
    // table-resident acceleration state (like an index), not per-query
    // working memory, and would otherwise land in the first measured
    // query's peak.
    t.columnar();

    // --- selective scan → filter → project ------------------------------
    // ~51 of 50 000 rows survive; no index covers column 1, so both
    // executors walk the heap.
    let pipeline = Plan::scan("T")
        .select(Expr::col_eq_lit(1, 3i64))
        .project_cols(&[0]);

    let (materialized, peak_mat) = peak_of(|| execute_materialized(&db, &pipeline).unwrap());
    let (streamed, peak_stream) = peak_of(|| execute(&db, &pipeline).unwrap());
    let mut a = materialized.clone();
    let mut b = streamed;
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(materialized.len(), (N as usize).div_ceil(977));
    // The materializing executor clones the whole scan (O(input) live
    // rows); the streaming pipeline holds a constant number of rows plus
    // the (tiny) output. An order of magnitude of headroom keeps the
    // assertion robust across allocator/layout changes.
    assert!(
        peak_stream * 10 < peak_mat,
        "streaming peak {peak_stream}B is not ≪ materializing peak {peak_mat}B"
    );

    // --- pipelined hash join --------------------------------------------
    // T (50 000 rows) probes a small build side: only the build hash
    // table and the survivors may be live, never the probe input or the
    // full join output.
    let s = db
        .create_table(TableSchema::keyless("S", &["k", "tag"]))
        .unwrap();
    for i in 0..8i64 {
        s.insert(row![i, i * 10]).unwrap();
    }
    s.columnar();
    let join = Plan::scan("T")
        .join(Plan::scan("S"), vec![(2, 0)])
        .select(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(32i64)))
        .project_cols(&[0, 4]);
    let (join_mat, peak_join_mat) = peak_of(|| execute_materialized(&db, &join).unwrap());
    let (join_stream, peak_join_stream) = peak_of(|| execute(&db, &join).unwrap());
    let mut a = join_mat;
    let mut b = join_stream;
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(
        peak_join_stream * 10 < peak_join_mat,
        "join streaming peak {peak_join_stream}B is not ≪ materializing peak {peak_join_mat}B"
    );

    // --- early termination -----------------------------------------------
    // Pulling three rows from the pipeline costs one batch of work
    // (1024 rows of the 50 000-row scan), no matter how large the input
    // is — far below materializing anything.
    let wide = Plan::scan("T").project_cols(&[0, 1]);
    let ((), peak_take) = peak_of(|| {
        let mut rows = stream(&db, &wide).unwrap();
        for _ in 0..3 {
            rows.next().unwrap().unwrap();
        }
    });
    assert!(
        peak_take * 10 < peak_mat,
        "pulling 3 rows peaked at {peak_take}B — upstream was materialized"
    );

    // --- O(batch), not O(input) ------------------------------------------
    // Drain a 1/7-selective pipeline (output ≫ one batch) at the chunk
    // level without collecting: the working set is one in-flight chunk.
    // Quadrupling the table must leave that peak unmoved, while the
    // materializing peak scales with the input.
    let big = db
        .create_table(TableSchema::keyless("T4", &["a", "b", "c"]))
        .unwrap();
    for i in 0..4 * N {
        big.insert(row![i, i % 977, i % 7]).unwrap();
    }
    big.columnar();
    let drain = |plan: &Plan, want: usize| {
        let mut live = 0usize;
        for chunk in stream_chunks(&db, plan).unwrap() {
            live += chunk.unwrap().len();
        }
        assert_eq!(live, want);
    };
    let matching = |n: i64| (0..n).filter(|i| i % 7 == 3).count();
    let sevenths = Plan::scan("T").select(Expr::col_eq_lit(2, 3i64));
    let sevenths4 = Plan::scan("T4").select(Expr::col_eq_lit(2, 3i64));
    let ((), peak_drain) = peak_of(|| drain(&sevenths, matching(N)));
    let ((), peak_drain4) = peak_of(|| drain(&sevenths4, matching(4 * N)));
    let (rows4, peak_mat4) = peak_of(|| execute_materialized(&db, &sevenths4).unwrap());
    assert_eq!(rows4.len(), matching(4 * N));
    assert!(
        peak_mat4 > peak_mat * 3,
        "materializing peak must scale with input: {peak_mat4}B vs {peak_mat}B"
    );
    assert!(
        peak_drain4 < peak_drain * 2,
        "chunked peak scales with input, not batch: {peak_drain4}B vs {peak_drain}B on 4x rows"
    );
    assert!(
        peak_drain4 * 20 < peak_mat4,
        "chunk-level drain peaked at {peak_drain4}B — input was materialized"
    );

    // --- chunk recycling --------------------------------------------------
    // Steady-state drain with chunks handed back via `Chunk::recycle`:
    // after warm-up the batch buffers cycle through the executor's
    // thread-local pool, so the number of *large* (buffer-sized)
    // allocations is O(1) — not O(chunks) as a fresh `Vec<Row>` per
    // batch would make it. Rows themselves are still allocated (they
    // are the output), but they are far below the BIG threshold.
    let wide4 = Plan::scan("T4").project_cols(&[0, 1]);
    let drain_recycling = || {
        let mut chunks = 0usize;
        let mut rows = 0usize;
        for chunk in stream_chunks(&db, &wide4).unwrap() {
            let chunk = chunk.unwrap();
            chunks += 1;
            rows += chunk.len();
            chunk.recycle();
        }
        (chunks, rows)
    };
    drain_recycling(); // warm the pool
    let ((chunks, rows), big) = big_allocs_of(drain_recycling);
    assert_eq!(rows, 4 * N as usize);
    assert!(chunks > 150, "expected O(input/batch) chunks, got {chunks}");
    assert!(
        big <= 24,
        "steady-state drain of {chunks} chunks performed {big} large allocations — \
         chunk buffers are not being recycled"
    );

    // The row-at-a-time adapter and collectors recycle internally too:
    // draining through `stream()` must also keep large allocations flat
    // (the pulled rows are tiny; only buffers cross the BIG threshold).
    let (n_rows, big) = big_allocs_of(|| stream(&db, &wide4).unwrap().count());
    assert_eq!(n_rows, 4 * N as usize);
    assert!(
        big <= 24,
        "row-adapter drain performed {big} large allocations — buffers leak from the pool"
    );

    // --- zero-copy columnar scans -----------------------------------------
    // A bare scan drained at the chunk level hands out windows over the
    // table's column cache: no row is cloned, no buffer is filled. The
    // total allocation *count* must be O(chunks) — a row-cloning scan
    // would perform at least one allocation per row (200 000 here).
    let bare = Plan::scan("T4");
    let drain_windows = || {
        let mut live = 0usize;
        for chunk in stream_chunks(&db, &bare).unwrap() {
            live += chunk.unwrap().len();
        }
        live
    };
    drain_windows(); // warm any lazy state
    let (live, allocs) = allocs_of(drain_windows);
    assert_eq!(live, 4 * N as usize);
    assert!(
        allocs < 2_000,
        "bare columnar scan of {live} rows performed {allocs} allocations — \
         rows are being cloned instead of windowed"
    );
}
