//! Peak-allocation guard for the streaming executor: a selective
//! scan→filter→project pipeline must not allocate O(input) intermediate
//! rows, and a pipelined join must not materialize its probe side.
//!
//! Measured with a counting global allocator tracking live bytes (the
//! whole binary holds exactly one `#[test]` so no other thread skews the
//! counters).

use beliefdb::storage::{execute, execute_materialized, row, stream};
use beliefdb::storage::{CmpOp, Database, Expr, Plan, TableSchema};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

struct PeakTracking;

static CURRENT: AtomicIsize = AtomicIsize::new(0);
static PEAK: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for PeakTracking {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let cur = CURRENT.fetch_add(layout.size() as isize, Ordering::Relaxed)
                + layout.size() as isize;
            PEAK.fetch_max(cur, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        CURRENT.fetch_sub(layout.size() as isize, Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOCATOR: PeakTracking = PeakTracking;

/// Run `f` and return (result, peak live bytes allocated above the
/// baseline while it ran).
fn peak_of<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let base = CURRENT.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    let out = f();
    let peak = (PEAK.load(Ordering::Relaxed) - base).max(0) as usize;
    (out, peak)
}

#[test]
fn selective_pipelines_do_not_materialize_their_input() {
    const N: i64 = 50_000;
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::keyless("T", &["a", "b", "c"]))
        .unwrap();
    for i in 0..N {
        t.insert(row![i, i % 977, i % 7]).unwrap();
    }

    // --- selective scan → filter → project ------------------------------
    // ~51 of 50 000 rows survive; no index covers column 1, so both
    // executors walk the heap.
    let pipeline = Plan::scan("T")
        .select(Expr::col_eq_lit(1, 3i64))
        .project_cols(&[0]);

    let (materialized, peak_mat) = peak_of(|| execute_materialized(&db, &pipeline).unwrap());
    let (streamed, peak_stream) = peak_of(|| execute(&db, &pipeline).unwrap());
    let mut a = materialized.clone();
    let mut b = streamed;
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(materialized.len(), (N as usize).div_ceil(977));
    // The materializing executor clones the whole scan (O(input) live
    // rows); the streaming pipeline holds a constant number of rows plus
    // the (tiny) output. An order of magnitude of headroom keeps the
    // assertion robust across allocator/layout changes.
    assert!(
        peak_stream * 10 < peak_mat,
        "streaming peak {peak_stream}B is not ≪ materializing peak {peak_mat}B"
    );

    // --- pipelined hash join --------------------------------------------
    // T (50 000 rows) probes a small build side: only the build hash
    // table and the survivors may be live, never the probe input or the
    // full join output.
    let s = db
        .create_table(TableSchema::keyless("S", &["k", "tag"]))
        .unwrap();
    for i in 0..8i64 {
        s.insert(row![i, i * 10]).unwrap();
    }
    let join = Plan::scan("T")
        .join(Plan::scan("S"), vec![(2, 0)])
        .select(Expr::cmp(CmpOp::Lt, Expr::Col(0), Expr::lit(32i64)))
        .project_cols(&[0, 4]);
    let (join_mat, peak_join_mat) = peak_of(|| execute_materialized(&db, &join).unwrap());
    let (join_stream, peak_join_stream) = peak_of(|| execute(&db, &join).unwrap());
    let mut a = join_mat;
    let mut b = join_stream;
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert!(
        peak_join_stream * 10 < peak_join_mat,
        "join streaming peak {peak_join_stream}B is not ≪ materializing peak {peak_join_mat}B"
    );

    // --- early termination -----------------------------------------------
    // Pulling three rows from the pipeline costs a constant amount, no
    // matter how large the input is.
    let wide = Plan::scan("T").project_cols(&[0, 1]);
    let ((), peak_take) = peak_of(|| {
        let mut rows = stream(&db, &wide).unwrap();
        for _ in 0..3 {
            rows.next().unwrap().unwrap();
        }
    });
    assert!(
        peak_take * 100 < peak_mat,
        "pulling 3 rows peaked at {peak_take}B — upstream was materialized"
    );
}
