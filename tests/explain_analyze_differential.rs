//! `EXPLAIN ANALYZE` differential: across fuzzed plan shapes × memory
//! budgets, the profile's actual row counts must **exactly** equal the
//! materialized result sizes — profiling is an observer, never a
//! participant. Three angles:
//!
//! 1. Fuzzed plans (selects, projects, joins, anti-joins, distincts,
//!    sorts, limits, unions, aggregates over two tables and literal
//!    `Values`) run three times per budget: once plain, once profiled;
//!    the row counts and (limit-free) row multisets must agree, and the
//!    profile root's `rows_out` must equal the drained count.
//! 2. Budgets of `None`, `1` byte (everything spills — grace hash
//!    joins, external sorts), and 64 KiB must all produce the same
//!    answers, and at least some fuzzed case must actually report
//!    spill traffic in its rendered profile.
//! 3. A runtime error mid-stream (a non-boolean predicate discovered
//!    only when the first row is evaluated) leaves a **partial**
//!    profile that is still consistent: delivered rows match the root's
//!    `rows_out`, the operators that did run keep their counts, and the
//!    partial tree still renders.

use beliefdb::storage::opt::render_analyze;
use beliefdb::storage::{
    row, Agg, CmpOp, Database, Executor, Expr, Plan, Row, SpillOptions, StatsCatalog, TableSchema,
};

/// Small deterministic LCG so every run fuzzes the same plan space.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

fn database() -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::keyless("T", &["k", "a", "b"]))
        .unwrap();
    for i in 0..3_000i64 {
        t.insert(row![i % 61, i, (i * 31) % 409]).unwrap();
    }
    let b = db
        .create_table(TableSchema::keyless("B", &["k", "tag"]))
        .unwrap();
    for i in 0..500i64 {
        b.insert(row![i % 61, i % 7]).unwrap();
    }
    db
}

fn leaf(rng: &mut Rng) -> (Plan, usize) {
    match rng.below(3) {
        0 => (Plan::scan("T"), 3),
        1 => (Plan::scan("B"), 2),
        _ => {
            let n = rng.below(4) as i64;
            let rows = (0..n)
                .map(|i| Row::from(vec![i.into(), (i * 7).into()]))
                .collect();
            (Plan::Values { arity: 2, rows }, 2)
        }
    }
}

/// Generate a random plan of the given depth, tracking output arity so
/// every column reference stays in bounds (all columns are ints, so any
/// join/anti-join key pairing is type-compatible).
fn gen_plan(rng: &mut Rng, depth: usize) -> (Plan, usize) {
    if depth == 0 {
        return leaf(rng);
    }
    match rng.below(9) {
        0 => {
            let (p, a) = gen_plan(rng, depth - 1);
            let col = rng.below(a as u64) as usize;
            let lim = rng.below(400) as i64;
            (
                p.select(Expr::cmp(CmpOp::Gt, Expr::Col(col), Expr::lit(lim))),
                a,
            )
        }
        1 => {
            let (p, a) = gen_plan(rng, depth - 1);
            let keep = 1 + rng.below(a as u64) as usize;
            let cols: Vec<usize> = (0..keep).map(|_| rng.below(a as u64) as usize).collect();
            (p.project_cols(&cols), keep)
        }
        2 => {
            let (l, la) = gen_plan(rng, depth - 1);
            let (r, ra) = gen_plan(rng, depth - 1);
            let on = vec![(rng.below(la as u64) as usize, rng.below(ra as u64) as usize)];
            (l.join(r, on), la + ra)
        }
        3 => {
            let (l, la) = gen_plan(rng, depth - 1);
            let (r, ra) = gen_plan(rng, depth - 1);
            let on = vec![(rng.below(la as u64) as usize, rng.below(ra as u64) as usize)];
            (l.anti_join(r, on), la)
        }
        4 => {
            let (p, a) = gen_plan(rng, depth - 1);
            (p.distinct(), a)
        }
        5 => {
            let (p, a) = gen_plan(rng, depth - 1);
            let c = rng.below(a as u64) as usize;
            (p.sort(vec![c]), a)
        }
        6 => {
            let (p, a) = gen_plan(rng, depth - 1);
            (p.limit(rng.below(40) as usize), a)
        }
        7 => {
            let (p, a) = gen_plan(rng, depth - 1);
            (
                Plan::Union {
                    inputs: vec![p.clone(), p],
                },
                a,
            )
        }
        _ => {
            let (p, a) = gen_plan(rng, depth - 1);
            let g = rng.below(a as u64) as usize;
            let m = rng.below(a as u64) as usize;
            (
                Plan::Aggregate {
                    input: Box::new(p),
                    group_by: vec![g],
                    aggs: vec![Agg::Count, Agg::Max(m)],
                },
                3,
            )
        }
    }
}

/// `LIMIT` over unordered input picks arbitrary rows: counts stay
/// comparable across budgets, multisets do not.
fn contains_limit(plan: &Plan) -> bool {
    matches!(plan, Plan::Limit { .. }) || plan.children().iter().any(|c| contains_limit(c))
}

fn executor<'a>(db: &'a Database, budget: Option<usize>, dir: &std::path::Path) -> Executor<'a> {
    match budget {
        Some(b) => Executor::with_spill(db, SpillOptions::with_budget(b).in_dir(dir)),
        None => Executor::new(db),
    }
}

#[test]
fn profiles_match_materialized_results_across_fuzzed_plans_and_budgets() {
    let dir = std::env::temp_dir().join(format!("beliefdb-ea-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = database();
    let catalog = StatsCatalog::snapshot(&db);
    let budgets: [Option<usize>; 3] = [None, Some(1), Some(64 << 10)];
    let mut spilled_renders = 0usize;

    for seed in 0..80u64 {
        let mut rng = Rng(seed * 2 + 1);
        let (plan, _arity) = gen_plan(&mut rng, 1 + (seed % 3) as usize);
        let limit_free = !contains_limit(&plan);
        let mut per_budget: Vec<(usize, Vec<Row>)> = Vec::new();

        for budget in budgets {
            let exec = executor(&db, budget, &dir);
            // Plain (obs disabled) materialization.
            let mut plain: Vec<Row> = Vec::new();
            for chunk in exec.open_chunks(&plan).unwrap() {
                plain.extend(chunk.unwrap().into_rows());
            }
            // Profiled materialization of the same plan.
            let (stream, profile) = exec.open_chunks_profiled(&plan).unwrap();
            let mut profiled: Vec<Row> = Vec::new();
            for chunk in stream {
                profiled.extend(chunk.unwrap().into_rows());
            }
            assert_eq!(
                plain.len(),
                profiled.len(),
                "seed {seed} budget {budget:?}: profiling changed the row count"
            );
            if limit_free {
                let mut a = plain.clone();
                let mut b = profiled.clone();
                a.sort();
                b.sort();
                assert_eq!(a, b, "seed {seed} budget {budget:?}: multiset diverged");
            }
            // The headline invariant: actual rows in the profile ==
            // materialized result size, exactly.
            assert_eq!(
                profile.rows_out() as usize,
                profiled.len(),
                "seed {seed} budget {budget:?}: profile disagrees with result"
            );
            // The profile renders, and the root line carries actuals.
            let text = render_analyze(&db, &catalog, &plan, &profile, budget);
            assert!(
                text.lines().next().unwrap().contains("| actual "),
                "seed {seed} budget {budget:?}: no actuals in:\n{text}"
            );
            if text.contains("spill_bytes=") {
                spilled_renders += 1;
            }
            per_budget.push((
                profiled.len(),
                if limit_free { profiled } else { Vec::new() },
            ));
        }

        // All budgets agree with each other.
        let (count0, rows0) = &per_budget[0];
        let mut want = rows0.clone();
        want.sort();
        for (count, rows) in &per_budget[1..] {
            assert_eq!(count, count0, "seed {seed}: budgets disagree on count");
            let mut got = rows.clone();
            got.sort();
            assert_eq!(got, want, "seed {seed}: budgets disagree on rows");
        }
    }

    assert!(
        spilled_renders > 0,
        "fuzz space never exercised a spilling profile"
    );
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "spill files left behind"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn error_paths_leave_consistent_partial_profiles() {
    let db = database();
    let catalog = StatsCatalog::snapshot(&db);
    // `Col(0)` is an int, not a boolean — using it as a predicate is a
    // runtime type error discovered only once a row is evaluated, i.e.
    // after the distinct below has already produced output. (The
    // distinct keeps the selection from fusing into the scan, so the
    // partial profile has a real child operator to inspect.)
    let plan = Plan::scan("T").distinct().select(Expr::Col(0));
    let exec = Executor::new(&db);
    let (stream, profile) = exec.open_chunks_profiled(&plan).unwrap();
    let mut delivered = 0usize;
    let mut saw_err = false;
    for chunk in stream {
        match chunk {
            Ok(c) => delivered += c.len(),
            Err(_) => {
                saw_err = true;
                break;
            }
        }
    }
    assert!(saw_err, "non-boolean predicate must error at runtime");
    // Partial profile still balances: the root delivered exactly what
    // the consumer saw before the error...
    assert_eq!(profile.rows_out() as usize, delivered);
    // ...the distinct underneath keeps the rows it had already produced...
    let child = profile.root().child_at(0).expect("distinct was opened");
    assert!(child.rows_out.get() > 0, "distinct produced rows pre-error");
    // ...and the partial tree renders without panicking.
    let text = render_analyze(&db, &catalog, &plan, &profile, None);
    assert!(text.contains("| actual "), "{text}");
}
