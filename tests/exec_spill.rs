//! Differential suite for the spill-to-disk materialization points
//! (`beliefdb_storage::exec::spill`): the memory-budgeted executor must
//! produce exactly the in-memory executor's results at every budget —
//! identical multisets everywhere, identical *order* for `Sort` — split
//! mid-stream errors the same way, and leave no run files behind on
//! success, error, or early abandonment.
//!
//! Layers:
//!
//! 1. **fuzzed plans × budget ladder** — the shared `tests/common` plan
//!    generator, evaluated unlimited and at budgets {0, one row, well
//!    below input, far above input};
//! 2. **dedicated operator workloads** — sort (stability across runs),
//!    grace join (partition recursion), aggregate partial merging,
//!    hybrid distinct — at a just-below-input budget chosen from the
//!    actual input volume;
//! 3. **error-semantics parity** — fallible expressions error at open
//!    for eager points (sort/aggregate/build) and split lazily for the
//!    others: same Ok-row multiset, same error count, at every budget;
//! 4. **cleanup** — a dedicated spill directory is empty after success,
//!    after an error, and after dropping a half-consumed stream.

mod common;

use beliefdb::storage::{
    execute, row, Agg, Database, Executor, Expr, Plan, Row, SpillOptions, TableSchema,
};
use common::{contains_order_sensitive_limit, gen_plan, plan_db, sorted};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "beliefdb-exec-spill-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn budgeted<'a>(db: &'a Database, budget: usize, dir: &PathBuf) -> Executor<'a> {
    Executor::with_spill(db, SpillOptions::with_budget(budget).in_dir(dir))
}

/// Drain a plan under a budget into `(ok rows, error count)` — errors do
/// not stop the stream, mirroring how the differential suites pull the
/// in-memory executors past errors.
fn drain_items(
    db: &Database,
    plan: &Plan,
    budget: Option<usize>,
    dir: &PathBuf,
) -> (Vec<Row>, usize) {
    let exec = match budget {
        Some(b) => budgeted(db, b, dir),
        None => Executor::new(db),
    };
    let mut rows = Vec::new();
    let mut errors = 0;
    match exec.open(plan) {
        Err(_) => errors += 1,
        Ok(stream) => {
            for item in stream {
                match item {
                    Ok(row) => rows.push(row),
                    Err(_) => errors += 1,
                }
            }
        }
    }
    (rows, errors)
}

/// Budgets the fuzz layer sweeps: everything spills, a single-row
/// budget, clearly below the fuzz inputs, clearly above them.
const BUDGET_LADDER: [usize; 4] = [0, 48, 4 << 10, 64 << 20];

/// Whether spilling preserves this subtree's row *order* (multisets are
/// always preserved). Grace joins, partitioned aggregates, and spilled
/// distincts emit partition by partition, so a `Sort` above one of them
/// may break ties differently — its exact output order is only pinned
/// when everything below is order-stable.
fn spill_order_stable(p: &Plan) -> bool {
    match p {
        Plan::Distinct { .. } | Plan::Aggregate { .. } | Plan::Join { .. } => false,
        Plan::Scan { .. } | Plan::Values { .. } => true,
        Plan::Selection { input, .. }
        | Plan::Projection { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. } => spill_order_stable(input),
        // The anti-join build never spills and the left side only gets
        // filtered, so order stability follows the left input.
        Plan::AntiJoin { left, .. } => spill_order_stable(left),
        Plan::Union { inputs } => inputs.iter().all(spill_order_stable),
    }
}

#[test]
fn fuzzed_plans_agree_at_every_budget() {
    let db = plan_db();
    let dir = temp_dir("fuzz");
    let mut rng = StdRng::seed_from_u64(0x5B1117);
    let mut nontrivial = 0usize;
    for case in 0..250 {
        let (plan, _) = gen_plan(&mut rng, 3);
        if contains_order_sensitive_limit(&plan) {
            continue;
        }
        let reference = match execute(&db, &plan) {
            Ok(rows) => rows,
            Err(_) => continue, // error parity has its own layer below
        };
        if !reference.is_empty() {
            nontrivial += 1;
        }
        for budget in BUDGET_LADDER {
            let got = budgeted(&db, budget, &dir)
                .open_chunks(&plan)
                .expect("budgeted open failed")
                .collect_rows()
                .unwrap_or_else(|e| panic!("case {case} budget {budget}: {e}"));
            if matches!(plan, Plan::Sort { .. }) && spill_order_stable(&plan) {
                assert_eq!(
                    got, reference,
                    "case {case} budget {budget}: sort order diverged on {plan:?}"
                );
            } else {
                assert_eq!(
                    sorted(got),
                    sorted(reference.clone()),
                    "case {case} budget {budget}: multiset diverged on {plan:?}"
                );
            }
        }
    }
    assert!(
        nontrivial > 40,
        "fuzzer degenerated: {nontrivial} non-trivial"
    );
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "spill files left behind by the fuzz sweep"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A wide table whose in-memory footprint is easy to bound from below:
/// `n` three-int rows (~72 bytes each in the budget's accounting).
fn wide_db(n: i64) -> Database {
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::keyless("T", &["k", "a", "b"]))
        .unwrap();
    for i in 0..n {
        t.insert(row![i % 97, i, (i * 31) % 613]).unwrap();
    }
    let s = db
        .create_table(TableSchema::keyless("S", &["k", "tag"]))
        .unwrap();
    for i in 0..n / 2 {
        s.insert(row![i % 97, i]).unwrap();
    }
    db
}

#[test]
fn dedicated_workloads_spill_at_just_below_input_budgets() {
    let n = 6_000i64;
    let db = wide_db(n);
    let dir = temp_dir("dedicated");
    // Roughly 70 bytes/row in the accounting: half the input volume is
    // comfortably "just below input", forcing exactly the interesting
    // one-spill regime (some rows in memory, some on disk).
    let just_below = (n as usize) * 35;
    let plans = vec![
        Plan::scan("T").sort(vec![2, 1]),
        Plan::scan("T").distinct(),
        Plan::scan("T").join(Plan::scan("S"), vec![(0, 0)]),
        Plan::Aggregate {
            input: Box::new(Plan::scan("T")),
            group_by: vec![2],
            aggs: vec![Agg::Count, Agg::Min(1), Agg::Max(0)],
        },
    ];
    for plan in &plans {
        let reference = execute(&db, plan).unwrap();
        for budget in [just_below, just_below / 10] {
            let got = budgeted(&db, budget, &dir)
                .open_chunks(plan)
                .unwrap()
                .collect_rows()
                .unwrap();
            if matches!(plan, Plan::Sort { .. }) {
                assert_eq!(got, reference, "sort order diverged at budget {budget}");
            } else {
                assert_eq!(sorted(got), sorted(reference.clone()));
            }
        }
    }
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn external_sort_is_stable_across_run_boundaries() {
    // Duplicate sort keys with distinct payloads in a known input
    // order: the merge must preserve it (ties break toward the earlier
    // run), so the output sequence is identical at every budget. 20k
    // rows at budget 0 produce well over MAX_MERGE_FANIN (16) runs, so
    // the *multi-pass* merge is exercised too — a merged group must
    // re-enter the run list at the front (it holds the earliest-input
    // rows), or later-input runs would win ties.
    let mut db = Database::new();
    let t = db
        .create_table(TableSchema::keyless("T", &["k", "seq"]))
        .unwrap();
    for i in 0..20_000i64 {
        t.insert(row![i % 13, i]).unwrap();
    }
    let dir = temp_dir("stable");
    let plan = Plan::scan("T").sort(vec![0]);
    let reference = execute(&db, &plan).unwrap();
    // Stability visible in the reference itself: within a key, seq
    // ascends.
    for w in reference.windows(2) {
        if w[0][0] == w[1][0] {
            assert!(w[0][1] < w[1][1], "in-memory sort is not stable");
        }
    }
    for budget in [0usize, 1 << 10, 16 << 10, 1 << 20] {
        let got = budgeted(&db, budget, &dir)
            .open_chunks(&plan)
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(got, reference, "order diverged at budget {budget}");
    }
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn indexed_join_path_respects_the_budget_and_agrees() {
    // An equi-join whose right side is an indexed base table takes the
    // adaptive index-nested-loop path, which buffers left rows. Under a
    // budget that buffer is capped at the join's byte share; past it
    // the join must fall back to the (spillable) hash join and still
    // agree with the unlimited executor.
    let mut db = Database::new();
    let v = db
        .create_table(TableSchema::keyless("V", &["wid", "tid"]))
        .unwrap();
    v.create_index("by_wid", &["wid"]).unwrap();
    for i in 0..4_000i64 {
        v.insert(row![i % 50, i]).unwrap();
    }
    let probe = db.create_table(TableSchema::keyless("P", &["w"])).unwrap();
    for i in 0..600i64 {
        probe.insert(row![i % 50]).unwrap();
    }
    let dir = temp_dir("indexed");
    // 600 probe rows < |V|/4 = 1000: unlimited execution takes the
    // index path; a small budget must not buffer them all.
    let plan = Plan::scan("P").join(Plan::scan("V"), vec![(0, 0)]);
    let reference = execute(&db, &plan).unwrap();
    assert_eq!(reference.len(), 600 * 80);
    for budget in [0usize, 1 << 10, 1 << 20] {
        let got = budgeted(&db, budget, &dir)
            .open_chunks(&plan)
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(sorted(got), sorted(reference.clone()), "budget {budget}");
    }
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn skewed_join_keys_terminate_and_agree() {
    // Every build row shares one join key: hashing cannot split the
    // partition, so recursion must detect the skew and fall back to an
    // in-memory build of that partition instead of looping.
    let mut db = Database::new();
    let t = db.create_table(TableSchema::keyless("T", &["k"])).unwrap();
    for _ in 0..800i64 {
        t.insert(row![7]).unwrap();
    }
    let p = db
        .create_table(TableSchema::keyless("P", &["k", "x"]))
        .unwrap();
    for i in 0..40i64 {
        p.insert(row![7, i]).unwrap();
    }
    let dir = temp_dir("skew");
    let plan = Plan::scan("P").join(Plan::scan("T"), vec![(0, 0)]);
    let reference = execute(&db, &plan).unwrap();
    assert_eq!(reference.len(), 40 * 800);
    let got = budgeted(&db, 0, &dir)
        .open_chunks(&plan)
        .unwrap()
        .collect_rows()
        .unwrap();
    assert_eq!(sorted(got), sorted(reference));
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn error_semantics_match_at_every_budget() {
    let db = plan_db();
    let dir = temp_dir("errors");
    // A poisoned relation: selecting on a bare non-boolean column
    // errors only for the rows where it is demanded (value 1), so both
    // Ok rows and errors flow mid-stream.
    let poisoned = |n: i64| -> Plan {
        let rows: Vec<Row> = (0..n)
            .map(|i| {
                if i % 500 == 250 {
                    row![7, i]
                } else {
                    row![true, i]
                }
            })
            .collect();
        Plan::Values { arity: 2, rows }.select(Expr::Col(0))
    };
    let cases: Vec<Plan> = vec![
        // Eager materialization points: the whole query fails at open.
        poisoned(2_000).sort(vec![1]),
        Plan::Aggregate {
            input: Box::new(poisoned(2_000)),
            group_by: vec![1],
            aggs: vec![Agg::Count],
        },
        // Lazy operators: errors split the stream.
        poisoned(2_000).distinct(),
        poisoned(2_000).join(Plan::scan("E"), vec![(1, 0)]),
        // Residual errors inside the join's probe loop: the residual is
        // a bare column that is boolean for most rows, an int for a few.
        {
            let rows: Vec<Row> = (0..2_000i64)
                .map(|i| {
                    if i % 700 == 350 {
                        row![1, i % 30]
                    } else {
                        row![true, i % 30]
                    }
                })
                .collect();
            Plan::Values { arity: 2, rows }.join_where(Plan::scan("E"), vec![(1, 0)], Expr::Col(0))
        },
    ];
    for (i, plan) in cases.iter().enumerate() {
        let (want_rows, want_errors) = drain_items(&db, plan, None, &dir);
        for budget in BUDGET_LADDER {
            let (got_rows, got_errors) = drain_items(&db, plan, Some(budget), &dir);
            assert_eq!(
                sorted(got_rows),
                sorted(want_rows.clone()),
                "case {i} budget {budget}: Ok-row multiset diverged"
            );
            assert_eq!(
                got_errors, want_errors,
                "case {i} budget {budget}: error count diverged"
            );
        }
    }
    assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn spill_files_are_cleaned_up_on_abandonment_and_error() {
    let n = 8_000i64;
    let db = wide_db(n);
    let dir = temp_dir("cleanup");
    let budget = 2 << 10;

    // Success path: exercised (and asserted) by the other tests; here
    // the two non-happy paths. First: drop a stream after one chunk.
    let plan = Plan::scan("T").sort(vec![1]);
    {
        let mut stream = budgeted(&db, budget, &dir).open_chunks(&plan).unwrap();
        let first = stream.next().unwrap().unwrap();
        assert!(!first.is_empty());
        // `stream` dropped here with runs still queued.
    }
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "abandoned sort leaked run files"
    );

    // Error path: a poisoned row surfaces after spilling started.
    let rows: Vec<Row> = (0..4_000i64)
        .map(|i| if i == 3_500 { row![7] } else { row![true] })
        .collect();
    let plan = Plan::Values { arity: 1, rows }
        .select(Expr::Col(0))
        .distinct();
    let (ok_rows, errors) = drain_items(&db, &plan, Some(64), &dir);
    assert_eq!(errors, 1);
    assert_eq!(ok_rows, vec![row![true]]);
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        0,
        "errored distinct leaked run files"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
