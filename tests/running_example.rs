//! End-to-end integration test: the paper's running example (Sect. 2,
//! Figs. 2–5) replayed through the full stack — BeliefSQL text → parser →
//! BDMS → relational encoding → Algorithm 1 queries — with every
//! intermediate artefact checked against the paper.

use beliefdb::core::{
    closure, running_example, BeliefPath, BeliefStatement, CanonicalKripke, GroundTuple, Sign,
    UserId,
};
use beliefdb::sql::Session;
use beliefdb::storage::{row, Value};

fn sql_session() -> Session {
    let mut s = Session::new(beliefdb::core::naturemapping_schema()).unwrap();
    s.add_user("Alice").unwrap();
    s.add_user("Bob").unwrap();
    s.add_user("Carol").unwrap();
    for sql in [
        "insert into Sightings values ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
        "insert into BELIEF 'Bob' not Sightings values ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
        "insert into BELIEF 'Bob' not Sightings values ('s1','Carol','fish eagle','6-14-08','Lake Forest')",
        "insert into BELIEF 'Alice' Sightings values ('s2','Alice','crow','6-14-08','Lake Placid')",
        "insert into BELIEF 'Alice' Comments values ('c1','found feathers','s2')",
        "insert into BELIEF 'Bob' Sightings values ('s2','Alice','raven','6-14-08','Lake Placid')",
        "insert into BELIEF 'Bob' BELIEF 'Alice' Comments values ('c2','black feathers','s2')",
        "insert into BELIEF 'Bob' Comments values ('c2','purple-black feathers','s2')",
    ] {
        s.execute(sql).unwrap();
    }
    s
}

#[test]
fn fig5_internal_representation_shape() {
    let session = sql_session();
    let storage = session.bdms().storage();
    // Fig. 5's tables: Sightings* has 4 ground tuples, Comments* has 3.
    assert_eq!(storage.table("Sightings__star").unwrap().len(), 4);
    assert_eq!(storage.table("Comments__star").unwrap().len(), 3);
    // Users: 3 rows; D: 4 worlds (ε, Alice, Bob, Bob·Alice); S: 3 backlinks.
    assert_eq!(storage.table("U").unwrap().len(), 3);
    assert_eq!(storage.table("D").unwrap().len(), 4);
    assert_eq!(storage.table("S").unwrap().len(), 3);
    // E: 9 edges as drawn in Fig. 4 / listed in Fig. 5.
    assert_eq!(storage.table("E").unwrap().len(), 9);
    // V_Sightings in Fig. 5 has 8 rows; V_Comments has 4.
    assert_eq!(storage.table("V__Sightings").unwrap().len(), 8);
    assert_eq!(storage.table("V__Comments").unwrap().len(), 4);
}

#[test]
fn fig3_bobs_belief_world() {
    let session = sql_session();
    let bob = session.bdms().user_by_name("Bob").unwrap();
    let world = session.bdms().world(&BeliefPath::user(bob)).unwrap();
    let s = session.bdms().schema().relation_id("Sightings").unwrap();
    let c = session.bdms().schema().relation_id("Comments").unwrap();
    // Fig. 3: two negative sightings (s1), one positive (s2 raven), one
    // positive comment (purple-black).
    assert!(world.contains_neg(&GroundTuple::new(
        s,
        row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"]
    )));
    assert!(world.contains_neg(&GroundTuple::new(
        s,
        row!["s1", "Carol", "fish eagle", "6-14-08", "Lake Forest"]
    )));
    assert!(world.contains_pos(&GroundTuple::new(
        s,
        row!["s2", "Alice", "raven", "6-14-08", "Lake Placid"]
    )));
    assert!(world.contains_pos(&GroundTuple::new(
        c,
        row!["c2", "purple-black feathers", "s2"]
    )));
    assert_eq!(world.pos_len(), 2);
    assert_eq!(world.neg_len(), 2);
}

#[test]
fn sect_3_2_entailments_through_the_store() {
    let session = sql_session();
    let bdms = session.bdms();
    let s = bdms.schema().relation_id("Sightings").unwrap();
    let alice = bdms.user_by_name("Alice").unwrap();
    let bob = bdms.user_by_name("Bob").unwrap();
    let s11 = GroundTuple::new(
        s,
        row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
    );

    // D |= Alice s1+ (default), D |= Bob s1− (explicit),
    // D |= Bob·Alice s1+ (Bob believes Alice believes it).
    let cases = [
        (BeliefPath::user(alice), Sign::Pos, true),
        (BeliefPath::user(bob), Sign::Neg, true),
        (BeliefPath::user(bob), Sign::Pos, false),
        (BeliefPath::new(vec![bob, alice]).unwrap(), Sign::Pos, true),
        (BeliefPath::new(vec![alice, bob]).unwrap(), Sign::Neg, true),
    ];
    for (path, sign, expected) in cases {
        let stmt = BeliefStatement::new(path.clone(), s11.clone(), sign);
        assert_eq!(
            bdms.entails(&stmt).unwrap(),
            expected,
            "at {path} sign {sign}"
        );
    }
}

#[test]
fn store_and_logical_pipelines_agree_everywhere() {
    // Build the same database twice: via SQL/store and via the logical API;
    // compare worlds, Kripke structures, and entailments.
    let session = sql_session();
    let (logical, ..) = running_example();

    let from_store = session.bdms().to_belief_database().unwrap();
    assert_eq!(from_store.statements(), logical.statements());

    let kripke = CanonicalKripke::build(&logical);
    assert_eq!(kripke.state_count(), 4);

    for p in logical.states() {
        let store_world = session.bdms().world(&p).unwrap();
        let closure_world = closure::entailed_world(&logical, &p);
        let kripke_world = kripke.world_of(kripke.resolve(&p)).clone();
        assert_eq!(store_world, closure_world, "store vs closure at {p}");
        assert_eq!(kripke_world, closure_world, "kripke vs closure at {p}");
    }
}

#[test]
fn queries_q1_q2_sql_vs_bcq_vs_naive() {
    let session = sql_session();
    let q1 = session
        .query(
            "select S.sid, S.uid, S.species \
             from Users as U, BELIEF U.uid Sightings as S \
             where U.name = 'Bob' and S.location = 'Lake Placid'",
        )
        .unwrap();
    assert_eq!(q1.rows(), &[row!["s2", "Alice", "raven"]]);

    let q2 = session
        .query(
            "select U2.name, S1.species, S2.species \
             from Users as U1, Users as U2, \
                  BELIEF U1.uid Sightings as S1, BELIEF U2.uid Sightings as S2 \
             where U1.name = 'Alice' and S1.sid = S2.sid and S1.species <> S2.species",
        )
        .unwrap();
    assert_eq!(q2.rows(), &[row!["Bob", "crow", "raven"]]);
}

#[test]
fn dora_joins_late() {
    // Sect. 3.2: "the system needs to assume by default that Dora believes
    // everything that is stated explicitly in the database".
    let mut session = sql_session();
    session.add_user("Dora").unwrap();
    let bdms = session.bdms();
    let dora = bdms.user_by_name("Dora").unwrap();
    let bob = bdms.user_by_name("Bob").unwrap();
    let s = bdms.schema().relation_id("Sightings").unwrap();
    let s11 = GroundTuple::new(
        s,
        row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
    );

    // Dora believes the sighting, and believes Bob disbelieves it.
    assert!(bdms
        .entails(&BeliefStatement::positive(
            BeliefPath::user(dora),
            s11.clone()
        ))
        .unwrap());
    assert!(bdms
        .entails(&BeliefStatement::negative(
            BeliefPath::new(vec![dora, bob]).unwrap(),
            s11.clone()
        ))
        .unwrap());

    // Dora later explicitly disagrees: her default flips, but her view of
    // everyone else is untouched.
    session
        .execute(
            "insert into BELIEF 'Dora' not Sightings values \
             ('s1','Carol','bald eagle','6-14-08','Lake Forest')",
        )
        .unwrap();
    let bdms = session.bdms();
    assert!(!bdms
        .entails(&BeliefStatement::positive(
            BeliefPath::user(dora),
            s11.clone()
        ))
        .unwrap());
    assert!(bdms
        .entails(&BeliefStatement::negative(
            BeliefPath::user(dora),
            s11.clone()
        ))
        .unwrap());
    let alice = bdms.user_by_name("Alice").unwrap();
    assert!(bdms
        .entails(&BeliefStatement::positive(
            BeliefPath::new(vec![dora, alice]).unwrap(),
            s11
        ))
        .unwrap());
}

#[test]
fn i9_alice_offers_fish_eagle_alternative() {
    // Sect. 3.1's i9: Alice adds the fish eagle as an alternative reading of
    // Carol's entry — i1 and i9 are conflicting positive statements in
    // *different* worlds, and Bob disagrees with both.
    let mut session = sql_session();
    session
        .execute(
            "insert into BELIEF 'Alice' Sightings values \
             ('s1','Carol','fish eagle','6-14-08','Lake Forest')",
        )
        .unwrap();
    let bdms = session.bdms();
    let alice = bdms.user_by_name("Alice").unwrap();
    let bob = bdms.user_by_name("Bob").unwrap();
    let s = bdms.schema().relation_id("Sightings").unwrap();
    let bald = GroundTuple::new(
        s,
        row!["s1", "Carol", "bald eagle", "6-14-08", "Lake Forest"],
    );
    let fish = GroundTuple::new(
        s,
        row!["s1", "Carol", "fish eagle", "6-14-08", "Lake Forest"],
    );

    // Alice now believes the fish eagle; the bald eagle became an unstated
    // negative for her.
    assert!(bdms
        .entails(&BeliefStatement::positive(
            BeliefPath::user(alice),
            fish.clone()
        ))
        .unwrap());
    assert!(bdms
        .entails(&BeliefStatement::negative(
            BeliefPath::user(alice),
            bald.clone()
        ))
        .unwrap());
    // Bob still explicitly rejects both.
    assert!(bdms
        .entails(&BeliefStatement::negative(BeliefPath::user(bob), fish))
        .unwrap());
    assert!(bdms
        .entails(&BeliefStatement::negative(BeliefPath::user(bob), bald))
        .unwrap());
}

#[test]
fn world_ids_are_stable_and_root_is_zero() {
    let session = sql_session();
    let dir = session.bdms().internal().directory();
    assert_eq!(dir.get(&BeliefPath::root()), Some(beliefdb::core::Wid(0)));
    assert_eq!(dir.len(), 4);
    // uids follow registration order (U = {1, ..., m}).
    assert_eq!(session.bdms().user_by_name("Alice").unwrap(), UserId(1));
    assert_eq!(session.bdms().user_by_name("Carol").unwrap(), UserId(3));
}

#[test]
fn belief_world_values_render_like_the_paper() {
    let session = sql_session();
    let bob = session.bdms().user_by_name("Bob").unwrap();
    let world = session.bdms().world(&BeliefPath::user(bob)).unwrap();
    let shown = world.to_string();
    assert!(shown.contains("raven"));
    assert!(shown.contains("+"));
    assert!(shown.contains("-"));
    // Sign values match Fig. 5's s attribute.
    assert_eq!(Sign::Pos.value(), Value::str("+"));
    assert_eq!(Sign::Neg.value(), Value::str("-"));
}
