//! # beliefdb — belief-annotated databases
//!
//! Facade crate re-exporting the whole system:
//!
//! * [`storage`] — the embedded relational engine substrate,
//! * [`core`] — the belief-database model, canonical Kripke structure,
//!   relational encoding and BCQ evaluation (the paper's contribution),
//! * [`sql`] — the BeliefSQL surface syntax,
//! * [`gen`] — the synthetic annotation workload generator used by the
//!   experiment harness.
//!
//! This is a from-scratch Rust reproduction of *"Believe It or Not: Adding
//! Belief Annotations to Databases"* (Gatterbauer, Balazinska,
//! Khoussainova, Suciu; VLDB 2009). See `README.md` for a tour, `DESIGN.md`
//! for the system inventory, and `EXPERIMENTS.md` for the reproduced
//! evaluation (Table 1, Figure 6, Table 2).
//!
//! ## Quick start
//!
//! ```
//! use beliefdb::sql::Session;
//! use beliefdb::core::ExternalSchema;
//!
//! let schema = ExternalSchema::new()
//!     .with_relation("Sightings", &["sid", "uid", "species", "date", "location"]);
//! let mut session = Session::new(schema).unwrap();
//! session.add_user("Alice").unwrap();
//! session.add_user("Bob").unwrap();
//!
//! session.execute("insert into BELIEF 'Alice' Sightings values \
//!     ('s2','Alice','crow','6-14-08','Lake Placid')").unwrap();
//! session.execute("insert into BELIEF 'Bob' Sightings values \
//!     ('s2','Alice','raven','6-14-08','Lake Placid')").unwrap();
//!
//! let conflicts = session.query(
//!     "select U1.name, U2.name, S1.species, S2.species \
//!      from Users as U1, Users as U2, \
//!           BELIEF U1.uid Sightings as S1, BELIEF U2.uid Sightings as S2 \
//!      where S1.sid = S2.sid and S1.species <> S2.species").unwrap();
//! assert_eq!(conflicts.rows().len(), 2); // both directions of the dispute
//! ```

pub use beliefdb_core as core;
pub use beliefdb_gen as gen;
pub use beliefdb_sql as sql;
pub use beliefdb_storage as storage;

/// The crate version (workspace-wide).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_set() {
        assert!(!super::VERSION.is_empty());
    }
}
